"""Polling-vs-interrupts ablation (Sec. V/VI).

The paper's client "can poll on local memory for CQ events" because the
SISCI extension has no device-generated interrupts across the NTB — and
notes the stock driver's interrupt path as one reason the comparison is
not apples-to-apples.  This bench isolates the completion-notification
mechanism: the same local distributed driver with its polling loop vs
the stock driver's MSI-X + IRQ path, decomposed against a
zero-software-overhead floor measured with an interrupt-free,
zero-copy configuration.
"""

from __future__ import annotations

from conftest import run_experiment

from repro.analysis import format_table
from repro.config import SimulationConfig, replace
from repro.driver import SpdkLocalDriver
from repro.scenarios import local_linux, ours_local
from repro.scenarios.testbed import LocalTestbed
from repro.workloads import FioJob, run_fio

IOS = 1500


def test_polling_vs_interrupts(benchmark, results_writer):
    def experiment():
        out = {}
        # Stock: interrupt-driven kernel driver.
        s = local_linux(seed=950)
        out["stock (interrupts)"] = run_fio(
            s.device, FioJob(rw="randread", total_ios=IOS,
                             ramp_ios=50)).summary("read")
        # Ours local: polling, but naive path + bounce copy.
        s = ours_local(seed=951)
        out["ours (polling+bounce)"] = run_fio(
            s.device, FioJob(rw="randread", total_ios=IOS,
                             ramp_ios=50)).summary("read")
        # SPDK-style userspace polling driver: the real polling floor
        # (no interrupts, no bounce, minimal per-command software).
        bed = LocalTestbed(seed=952)
        spdk = SpdkLocalDriver(bed.sim, bed.fabric, bed.host,
                               bed.nvme.bars[0].base, bed.config)
        bed.sim.run(until=bed.sim.process(spdk.start()))
        out["spdk (polling floor)"] = run_fio(
            spdk, FioJob(rw="randread", total_ios=IOS,
                         ramp_ios=50)).summary("read")
        # Ours local with the naive software overheads zeroed: what a
        # *tuned* distributed polling driver could reach.
        config = SimulationConfig()
        config = replace(config, host=replace(
            config.host, dist_submit_ns=config.host.nvme_submit_ns,
            dist_complete_ns=200, iommu_map_ns=0, iommu_unmap_ns=0))
        s = ours_local(config=config, seed=953, data_path="iommu")
        out["ours (tuned polling floor)"] = run_fio(
            s.device, FioJob(rw="randread", total_ios=IOS,
                             ramp_ios=50)).summary("read")
        return out

    stats = run_experiment(benchmark, experiment)

    rows = [[name, f"{s.minimum / 1e3:.2f}", f"{s.median / 1e3:.2f}",
             f"{s.p99 / 1e3:.2f}"]
            for name, s in stats.items()]
    art = format_table(["configuration", "min (us)", "median (us)",
                        "p99 (us)"], rows,
                       title="Completion path: interrupts vs polling "
                             "(local 4 KiB randread, QD=1)")
    art += ("\n\nThe naive driver's higher baseline (paper Sec. VI) is "
            "software path + bounce copy, not the polling choice: with "
            "those overheads removed, polling beats the interrupt-driven "
            "stock driver by roughly the IRQ latency.")
    results_writer("polling_vs_interrupts", art)

    stock = stats["stock (interrupts)"].median
    naive = stats["ours (polling+bounce)"].median
    spdk = stats["spdk (polling floor)"].median
    tuned = stats["ours (tuned polling floor)"].median
    # The paper's observation: the naive driver has a higher baseline.
    assert naive > stock
    # But polling itself is the faster mechanism once tuned: both
    # polling floors beat the stock driver by most of the IRQ cost.
    assert spdk < stock - 800
    assert tuned < stock - 800
