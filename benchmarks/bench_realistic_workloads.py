"""Realistic workloads (paper Sec. VIII future work): "performing
experiments using our driver for more general use, such as measuring
performance when using a file system and realistic workloads, would
contribute to validating our solution."

Runs fio-style application profiles — OLTP (8 KiB 70/30 with zipfian
hot blocks), webserver (read-heavy mixed sizes), backup (128 KiB write
stream) — through the NTB driver and the NVMe-oF baseline.  The shape
to hold: the NTB advantage is largest for the latency-sensitive small-
block profiles and fades for the bandwidth-bound backup stream,
consistent with every other experiment.
"""

from __future__ import annotations

from conftest import run_experiment

from repro.analysis import format_table
from repro.scenarios import nvmeof_remote, ours_remote
from repro.workloads import PROFILES, ZipfianAccess, run_pattern

RUNS = (
    ("oltp", 500, ZipfianAccess(region_lbas=1 << 21, alpha=1.2)),
    ("webserver", 400, ZipfianAccess(region_lbas=1 << 22, alpha=1.1)),
    ("backup", 120, None),
)


def _run(builder, seed_base):
    out = {}
    for i, (name, ios, access) in enumerate(RUNS):
        scenario = builder(seed=seed_base + i, queue_depth=16)
        result = run_pattern(scenario.device, PROFILES[name],
                             total_ios=ios, access=access,
                             concurrency=8)
        assert result.errors == 0
        out[name] = result
    return out


def test_realistic_workloads(benchmark, results_writer):
    def experiment():
        return {"ours-remote": _run(ours_remote, 1100),
                "nvmeof-remote": _run(nvmeof_remote, 1120)}

    data = run_experiment(benchmark, experiment)

    rows = []
    for name, _ios, _access in RUNS:
        ours = data["ours-remote"][name]
        of = data["nvmeof-remote"][name]
        ours_med = ours.latencies.summary().median / 1e3
        of_med = of.latencies.summary().median / 1e3
        rows.append([name,
                     f"{ours.iops / 1e3:.1f}", f"{ours_med:.1f}",
                     f"{of.iops / 1e3:.1f}", f"{of_med:.1f}",
                     f"{of_med / ours_med:.2f}x"])
    art = format_table(
        ["profile", "ours kIOPS", "ours med (us)", "nvmeof kIOPS",
         "nvmeof med (us)", "latency ratio"],
        rows, title="Application profiles over the shared device "
                    "(8-way concurrency)")
    results_writer("realistic_workloads", art)

    def med(side, name):
        return data[side][name].latencies.summary().median

    # Small-block profiles: clear NTB latency win.
    for name in ("oltp", "webserver"):
        assert med("nvmeof-remote", name) > 1.15 * med("ours-remote",
                                                       name), name
    # Backup (128 KiB stream): bandwidth-bound; the gap narrows.
    oltp_ratio = med("nvmeof-remote", "oltp") / med("ours-remote", "oltp")
    backup_ratio = (med("nvmeof-remote", "backup")
                    / med("ours-remote", "backup"))
    assert backup_ratio < oltp_ratio
