"""Remote-interrupt extension ablation (paper Sec. V: "our SISCI API
extension does not currently support device-generated interrupts, the
client driver can poll on local memory for CQ events").

We implement the missing capability — the controller's MSI-X write is
steered through a device-side NTB window into a client-host mailbox —
and quantify the trade: polling wins on latency (no IRQ cost), remote
interrupts free the client CPU between completions.
"""

from __future__ import annotations

from conftest import run_experiment

from repro.analysis import format_table
from repro.driver import DistributedNvmeClient, NvmeManager
from repro.scenarios.testbed import PcieTestbed
from repro.workloads import FioJob, run_fio

IOS = 1200


def _run(completion_mode: str, op: str, seed: int):
    bed = PcieTestbed(n_hosts=2, with_nvme=True, seed=seed)
    manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                          bed.nvme_device_id, bed.config)
    bed.sim.run(until=bed.sim.process(manager.start()))
    client = DistributedNvmeClient(bed.sim, bed.smartio, bed.node(1),
                                   bed.nvme_device_id, bed.config,
                                   completion_mode=completion_mode)
    bed.sim.run(until=bed.sim.process(client.start()))
    rw = "randread" if op == "read" else "randwrite"
    result = run_fio(client, FioJob(rw=rw, bs=4096, iodepth=1,
                                    total_ios=IOS, ramp_ios=50))
    return result.summary(op)


def test_remote_interrupts(benchmark, results_writer):
    def experiment():
        out = {}
        for i, mode in enumerate(("poll", "interrupt")):
            for op in ("read", "write"):
                out[(mode, op)] = _run(mode, op, seed=990 + i)
        return out

    stats = run_experiment(benchmark, experiment)

    rows = []
    for mode in ("poll", "interrupt"):
        for op in ("read", "write"):
            s = stats[(mode, op)]
            rows.append([mode, op, f"{s.minimum / 1e3:.2f}",
                         f"{s.median / 1e3:.2f}", f"{s.p99 / 1e3:.2f}"])
    art = format_table(
        ["completion mode", "op", "min (us)", "median (us)", "p99 (us)"],
        rows,
        title="Remote completions: CQ polling (paper) vs NTB-forwarded "
              "MSI-X interrupts (extension)")
    art += ("\n\nPolling is faster by roughly the IRQ latency; the "
            "extension trades that\nfor a CPU that sleeps between "
            "completions — the paper's polling choice is\nthe right "
            "default for a latency evaluation.")
    results_writer("remote_interrupts", art)

    for op in ("read", "write"):
        gap = stats[("interrupt", op)].median - stats[("poll", op)].median
        assert 700 < gap < 3_500, (op, gap)
