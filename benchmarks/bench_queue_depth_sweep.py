"""Queue-depth sweep (Sec. VI context: "a queue depth of 1 to evaluate
the network latency rather than disk performance").

At QD=1, per-command network latency dominates the comparison; at higher
depths both transports pipeline and the device's media parallelism takes
over.  The shape to hold: the NVMe-oF latency *gap* stays roughly
constant per command while IOPS converge toward the device ceiling as
QD grows — which is exactly why the paper evaluates at QD=1.
"""

from __future__ import annotations

from conftest import run_experiment

from repro.analysis import format_table
from repro.scenarios import nvmeof_remote, ours_remote
from repro.workloads import FioJob, run_fio

DEPTHS = (1, 2, 4, 8, 16, 32)
IOS = 1600


def _sweep(builder, seed_base):
    out = {}
    for i, qd in enumerate(DEPTHS):
        scenario = builder(seed=seed_base + i, queue_depth=max(qd, 2))
        result = run_fio(scenario.device,
                         FioJob(rw="randread", bs=4096, iodepth=qd,
                                total_ios=IOS, ramp_ios=64,
                                region_lbas=1 << 20))
        out[qd] = (result.iops, result.summary("read").median)
    return out


def test_queue_depth_sweep(benchmark, results_writer):
    def experiment():
        return {"ours-remote": _sweep(ours_remote, 700),
                "nvmeof-remote": _sweep(nvmeof_remote, 720)}

    data = run_experiment(benchmark, experiment)

    rows = []
    for qd in DEPTHS:
        ours_iops, ours_med = data["ours-remote"][qd]
        of_iops, of_med = data["nvmeof-remote"][qd]
        rows.append([qd, f"{ours_iops / 1e3:.1f}", f"{ours_med / 1e3:.2f}",
                     f"{of_iops / 1e3:.1f}", f"{of_med / 1e3:.2f}"])
    art = format_table(
        ["QD", "ours kIOPS", "ours med (us)", "nvmeof kIOPS",
         "nvmeof med (us)"],
        rows, title="Queue-depth sweep (4 KiB randread)")
    results_writer("queue_depth_sweep", art)

    ours, of = data["ours-remote"], data["nvmeof-remote"]
    # At QD1 the latency gap is the whole story: ours is clearly faster.
    assert ours[1][1] < of[1][1] - 3_000
    # Both pipelines scale with depth (>=5x their QD1 throughput)...
    assert ours[16][0] > 5 * ours[1][0]
    assert of[16][0] > 5 * of[1][0]
    # ...until their respective ceilings: the device's media channels
    # for the PCIe driver (~650 kIOPS) and the software target's
    # per-core command rate for NVMe-oF (~350 kIOPS — the "software in
    # the path" the paper points at).
    assert ours[32][0] > 550_000
    assert 250_000 < of[32][0] < ours[32][0]
    # Latency stays flat while below the ceiling (QD=4 ~ QD=1 for both).
    assert ours[4][1] < ours[1][1] + 1_000
    assert of[4][1] < of[1][1] + 1_500
