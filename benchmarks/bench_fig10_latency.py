"""Figure 10: I/O command completion latency for the four scenarios.

Regenerates the paper's headline boxplots — local Linux driver,
NVMe-oF/RDMA remote, our driver local, our driver remote — for 4 KiB
random reads and writes at queue depth 1, and checks the qualitative
shape (who wins, by roughly what factor).
"""

from __future__ import annotations

from conftest import run_experiment

from repro.analysis import Fig10Report, render_boxplots
from repro.scenarios import FIG10_SCENARIOS, build_fig10_scenario
from repro.sim import BoxplotStats
from repro.workloads import FioJob, run_fio

IOS = 1500


def _collect(op: str, seed_base: int) -> dict[str, BoxplotStats]:
    stats = {}
    for i, name in enumerate(FIG10_SCENARIOS):
        scenario = build_fig10_scenario(name, seed=seed_base + i)
        rw = "randread" if op == "read" else "randwrite"
        result = run_fio(scenario.device,
                         FioJob(name=f"fig10-{op}", rw=rw, bs=4096,
                                iodepth=1, total_ios=IOS, ramp_ios=50))
        rec = (result.read_latencies if op == "read"
               else result.write_latencies)
        stats[name] = BoxplotStats.from_values(rec.values(), name=name)
    return stats


def test_fig10_latency(benchmark, results_writer):
    def experiment():
        reads = _collect("read", seed_base=1000)
        writes = _collect("write", seed_base=2000)
        return Fig10Report(reads, writes)

    report = run_experiment(benchmark, experiment)

    art = "\n\n".join([
        report.to_table(),
        "Random 4 KiB READ, QD=1 (whiskers: min..p99, as in the paper):",
        render_boxplots([report.read_stats[n] for n in FIG10_SCENARIOS]),
        "Random 4 KiB WRITE, QD=1:",
        render_boxplots([report.write_stats[n] for n in FIG10_SCENARIOS]),
        report.delta_table(),
    ])
    results_writer("fig10_latency", art)

    assert report.shape_ok(), report.deltas_us()
    checks = report.check_claims()
    assert all(checks.values()), (report.deltas_us(), checks)
