"""Figure 10: I/O command completion latency for the four scenarios.

Regenerates the paper's headline boxplots — local Linux driver,
NVMe-oF/RDMA remote, our driver local, our driver remote — for 4 KiB
random reads and writes at queue depth 1, and checks the qualitative
shape (who wins, by roughly what factor).
"""

from __future__ import annotations

import collections

import numpy as np
from conftest import run_experiment

from repro.analysis import Fig10Report, format_table, render_boxplots
from repro.scenarios import FIG10_SCENARIOS, build_fig10_scenario
from repro.sim import BoxplotStats
from repro.telemetry import STAGES
from repro.workloads import FioJob, run_fio

IOS = 1500


def _collect(op: str, seed_base: int) -> dict[str, BoxplotStats]:
    stats = {}
    for i, name in enumerate(FIG10_SCENARIOS):
        scenario = build_fig10_scenario(name, seed=seed_base + i)
        rw = "randread" if op == "read" else "randwrite"
        result = run_fio(scenario.device,
                         FioJob(name=f"fig10-{op}", rw=rw, bs=4096,
                                iodepth=1, total_ios=IOS, ramp_ios=50))
        rec = (result.read_latencies if op == "read"
               else result.write_latencies)
        stats[name] = BoxplotStats.from_values(rec.values(), name=name)
    return stats


def test_fig10_latency(benchmark, results_writer):
    def experiment():
        reads = _collect("read", seed_base=1000)
        writes = _collect("write", seed_base=2000)
        return Fig10Report(reads, writes)

    report = run_experiment(benchmark, experiment)

    art = "\n\n".join([
        report.to_table(),
        "Random 4 KiB READ, QD=1 (whiskers: min..p99, as in the paper):",
        render_boxplots([report.read_stats[n] for n in FIG10_SCENARIOS]),
        "Random 4 KiB WRITE, QD=1:",
        render_boxplots([report.write_stats[n] for n in FIG10_SCENARIOS]),
        report.delta_table(),
    ])
    results_writer("fig10_latency", art)

    assert report.shape_ok(), report.deltas_us()
    checks = report.check_claims()
    assert all(checks.values()), (report.deltas_us(), checks)


def test_fig10_stage_decomposition(benchmark, results_writer):
    """Span-derived stage breakdown for the distributed-driver scenarios.

    Cross-checks the telemetry spans against the fio latency recorder:
    every recorded end-to-end latency must appear verbatim among the
    span durations, and per span the seven stage durations must sum to
    that latency *exactly* (same timestamps, telescoping differences).
    """
    ios, ramp = 400, 50

    def experiment():
        out = {}
        for name in ("ours-local", "ours-remote"):
            scenario = build_fig10_scenario(name, seed=3000,
                                            telemetry=True)
            result = run_fio(scenario.device,
                             FioJob(name="decomp", rw="randread",
                                    bs=4096, iodepth=1, total_ios=ios,
                                    ramp_ios=ramp))
            out[name] = (result, scenario.telemetry.spans.clean_spans())
        return out

    out = run_experiment(benchmark, experiment)

    sections = []
    for name, (result, spans) in out.items():
        # Fault-free QD1 run: every I/O produced one clean span.
        assert len(spans) == ios
        durations = []
        for span in spans:
            stages = span.stage_durations()
            assert sum(stages.values()) == span.duration_ns
            durations.append(span.duration_ns)
        # The recorder holds the post-ramp latencies; each one must
        # match a span duration exactly (same clock, same boundaries).
        recorded = collections.Counter(
            result.read_latencies.values().tolist())
        assert len(result.read_latencies) == ios - ramp
        assert not recorded - collections.Counter(durations)

        total = float(np.median(durations))
        rows = []
        for stage in STAGES:
            med = float(np.median([s.stage_durations()[stage]
                                   for s in spans]))
            rows.append([stage, f"{med / 1000:.2f}",
                         f"{100 * med / total:.0f}%"])
        rows.append(["TOTAL", f"{total / 1000:.2f}", "100%"])
        sections.append(format_table(
            ["stage", "median (us)", "share"], rows,
            title=f"{name}: 4 KiB QD1 randread stage decomposition"))
    results_writer("fig10_stage_decomposition", "\n\n".join(sections))
