"""Section VI text claims: minimum-latency deltas.

"The difference in minimum read latency is 7.7 us for NVMe-oF vs. local,
while it is around 1 us for our implementation.  For write, the
difference in the minimum latency is 7.5 us for NVMe-oF vs. local and
around 2 us for our implementation."

This bench isolates exactly those four numbers with a larger sample so
the minima are stable, and verifies each against its acceptance band.
"""

from __future__ import annotations

from conftest import run_experiment

from repro.analysis import PAPER_CLAIMS, format_table
from repro.scenarios import (local_linux, nvmeof_remote, ours_local,
                             ours_remote)
from repro.units import ns_to_us
from repro.workloads import FioJob, run_fio

IOS = 2500


def _min_latency(builder, op: str, seed: int) -> float:
    scenario = builder(seed=seed)
    rw = "randread" if op == "read" else "randwrite"
    result = run_fio(scenario.device,
                     FioJob(rw=rw, bs=4096, iodepth=1, total_ios=IOS,
                            ramp_ios=100))
    return float(result.summary(op).minimum)


def test_min_latency_deltas(benchmark, results_writer):
    def experiment():
        mins = {}
        for op in ("read", "write"):
            mins[("local", op)] = _min_latency(local_linux, op, 300)
            mins[("nvmeof", op)] = _min_latency(nvmeof_remote, op, 301)
            mins[("ours-local", op)] = _min_latency(ours_local, op, 302)
            mins[("ours-remote", op)] = _min_latency(ours_remote, op, 303)
        return mins

    mins = run_experiment(benchmark, experiment)
    deltas = {
        "nvmeof-read-delta": ns_to_us(mins[("nvmeof", "read")]
                                      - mins[("local", "read")]),
        "nvmeof-write-delta": ns_to_us(mins[("nvmeof", "write")]
                                       - mins[("local", "write")]),
        "ours-read-delta": ns_to_us(mins[("ours-remote", "read")]
                                    - mins[("ours-local", "read")]),
        "ours-write-delta": ns_to_us(mins[("ours-remote", "write")]
                                     - mins[("ours-local", "write")]),
    }

    rows = []
    for key, value in deltas.items():
        claim = PAPER_CLAIMS[key]
        rows.append([claim.name, f"{claim.paper_value_us:.1f}",
                     f"{value:.2f}",
                     f"[{claim.lo_us:.1f}, {claim.hi_us:.1f}]",
                     "PASS" if claim.check(value) else "FAIL"])
    mins_rows = [[f"{scenario} {op}", f"{ns_to_us(v):.2f}"]
                 for (scenario, op), v in sorted(mins.items())]
    art = format_table(["claim", "paper (us)", "measured (us)",
                        "accept band", "verdict"], rows,
                       title="Minimum-latency deltas (Sec. VI text)")
    art += "\n\n" + format_table(["scenario", "min latency (us)"],
                                 mins_rows, title="Raw minima")
    results_writer("min_latency_deltas", art)

    for key, value in deltas.items():
        assert PAPER_CLAIMS[key].check(value), (key, value)
