"""Figure 8 ablation: SQ placement (device-side vs client-side memory).

The paper's key data-path decision: "Allocating the SQ in memory closer
to the controller reduces the distance it needs to read across to fetch
commands.  SQ memory is mapped for the local CPU over the NTB, allowing
it to write directly into device-side memory."

Device-side SQ: the CPU's command store crosses the NTB as a cheap
*posted* write and the controller's fetch is local.  Client-side SQ: the
fetch becomes a *non-posted read across the NTB* — a full round trip
through three switch chips on the critical path of every command.
We also ablate CQ placement (the paper polls client-local CQ memory).
"""

from __future__ import annotations

from conftest import run_experiment

from repro.analysis import format_table
from repro.scenarios import ours_remote
from repro.units import ns_to_us
from repro.workloads import FioJob, run_fio

IOS = 1200

PLACEMENTS = (
    ("SQ device-side, CQ client-side (paper)", "device", "client"),
    ("SQ client-side, CQ client-side", "client", "client"),
    ("SQ device-side, CQ device-side", "device", "device"),
)


def test_fig8_sq_placement(benchmark, results_writer):
    def experiment():
        out = {}
        for i, (label, sq, cq) in enumerate(PLACEMENTS):
            for op in ("read", "write"):
                scenario = ours_remote(seed=500 + i, sq_placement=sq,
                                       cq_placement=cq)
                rw = "randread" if op == "read" else "randwrite"
                result = run_fio(scenario.device,
                                 FioJob(rw=rw, bs=4096, iodepth=1,
                                        total_ios=IOS, ramp_ios=50))
                out[(label, op)] = result.summary(op)
        return out

    stats = run_experiment(benchmark, experiment)

    rows = []
    for label, _sq, _cq in PLACEMENTS:
        for op in ("read", "write"):
            s = stats[(label, op)]
            rows.append([label, op, f"{ns_to_us(s.minimum):.2f}",
                         f"{s.median / 1000:.2f}"])
    art = format_table(["placement", "op", "min (us)", "median (us)"],
                       rows,
                       title="Fig. 8 ablation: queue memory placement "
                             "(remote client, 4 KiB QD=1)")
    results_writer("fig8_sq_placement", art)

    paper_read = stats[(PLACEMENTS[0][0], "read")].median
    sq_client_read = stats[(PLACEMENTS[1][0], "read")].median
    cq_device_read = stats[(PLACEMENTS[2][0], "read")].median
    # Client-side SQ adds a cross-NTB fetch round trip (~0.6-1.2 us).
    assert sq_client_read > paper_read + 500
    # Device-side CQ forces remote polling — a non-posted read across
    # the NTB on every poll attempt.
    assert cq_device_read > paper_read + 500
    # Same orderings for writes.
    assert stats[(PLACEMENTS[1][0], "write")].median > \
        stats[(PLACEMENTS[0][0], "write")].median + 500
