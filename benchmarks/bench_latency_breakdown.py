"""Latency decomposition: where each microsecond goes (paper Figs. 2/3).

Instruments a QD1 remote read with the structured tracer and splits the
end-to-end latency into phases: client submission software, fabric
submission (SQE+doorbell flight), controller fetch+decode, media, data
return + completion notice, and client completion software.  The same
decomposition for NVMe-oF shows the two extra software stages.

This is the quantified version of the paper's Figure 3 ("accessing
remote storage using NVMe-oF vs. PCIe").
"""

from __future__ import annotations

import numpy as np
from conftest import run_experiment

from repro.analysis import format_table
from repro.driver import BlockRequest, DistributedNvmeClient, NvmeManager
from repro.scenarios.testbed import PcieTestbed
from repro.sim import Tracer

IOS = 200


def _traced_remote_reads():
    bed = PcieTestbed(n_hosts=2, with_nvme=True, seed=980)
    tracer = Tracer(bed.sim, categories={"nvme"})
    bed.nvme.tracer = tracer
    manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                          bed.nvme_device_id, bed.config)
    bed.sim.run(until=bed.sim.process(manager.start()))
    client = DistributedNvmeClient(bed.sim, bed.smartio, bed.node(1),
                                   bed.nvme_device_id, bed.config)
    bed.sim.run(until=bed.sim.process(client.start()))
    tracer.clear()

    spans = []

    def flow(sim):
        for i in range(IOS):
            submit_t = sim.now
            marker = len(tracer.records)
            req = yield client.submit(BlockRequest("read", lba=i * 8,
                                                   nblocks=8))
            assert req.ok

            def first(message, extra=None):
                for r in tracer.records[marker:]:
                    if r.message != message:
                        continue
                    if r.payload.get("qid") != client.qid:
                        continue
                    if extra and not extra(r):
                        continue
                    return r.time_ns
                return None

            spans.append({
                "submit": submit_t,
                # the SQ tail doorbell only (not the CQ-head ring)
                "doorbell": first("doorbell",
                                  lambda r: not r.payload["cq"]),
                "fetched": first("fetched"),
                "completed": first("completed"),
                "done": sim.now,
            })

    bed.sim.run(until=bed.sim.process(flow(bed.sim)))
    return spans


def test_latency_breakdown(benchmark, results_writer):
    spans = run_experiment(benchmark, _traced_remote_reads)

    def phase(name_from, name_to):
        vals = [s[name_to] - s[name_from] for s in spans
                if s[name_from] is not None and s[name_to] is not None]
        return float(np.median(vals))

    breakdown = [
        ("client software + SQE/doorbell flight", "submit", "doorbell"),
        ("doorbell -> SQE fetched+decoded", "doorbell", "fetched"),
        ("execute: media + data DMA + CQE", "fetched", "completed"),
        ("CQE -> polled, completion software", "completed", "done"),
    ]
    rows = []
    total = phase("submit", "done")
    for label, a, b in breakdown:
        us = phase(a, b) / 1000.0
        rows.append([label, f"{us:.2f}", f"{100 * us * 1000 / total:.0f}%"])
    rows.append(["TOTAL", f"{total / 1000:.2f}", "100%"])
    art = format_table(["phase", "median (us)", "share"], rows,
                       title="Remote 4 KiB QD1 read: latency breakdown "
                             "(paper Fig. 2/3, quantified)")
    results_writer("latency_breakdown", art)

    # Sanity: phases must sum to the total (within poll jitter).
    parts = sum(phase(a, b) for _l, a, b in breakdown)
    assert abs(parts - total) < 500
    # Media dominates; fabric+software are each a small share.
    assert phase("fetched", "completed") > 0.5 * total
    assert phase("submit", "doorbell") < 0.3 * total
