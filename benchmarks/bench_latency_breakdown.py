"""Latency decomposition: where each microsecond goes (paper Figs. 2/3).

Runs a QD1 remote read with the telemetry span system on and splits the
end-to-end latency into the seven canonical stages — client submission
software, SQE flight over the NTB, doorbell flight, controller
fetch+decode, media, CQE flight back, and client completion polling.
Per span, the stage durations telescope to the end-to-end latency
*exactly* (the boundaries are the same timestamps), so the table needs
no "unattributed remainder" row.

This is the quantified version of the paper's Figure 3 ("accessing
remote storage using NVMe-oF vs. PCIe").
"""

from __future__ import annotations

import numpy as np
from conftest import run_experiment

from repro.analysis import format_table
from repro.driver import BlockRequest
from repro.scenarios import ours_remote
from repro.telemetry import STAGES

IOS = 200

STAGE_LABELS = {
    "submit": "client submission software",
    "sq-ntb-write": "SQE posted write over the NTB",
    "doorbell": "doorbell posted write",
    "fetch": "controller SQE fetch + decode",
    "media": "flash media access",
    "cq-ntb-write": "data DMA + CQE posted write",
    "poll": "client CQ poll + completion software",
}


def _traced_remote_reads():
    scenario = ours_remote(seed=980, telemetry=True)
    tele = scenario.telemetry
    assert tele is not None

    def flow(sim):
        for i in range(IOS):
            req = yield scenario.device.submit(
                BlockRequest("read", lba=i * 8, nblocks=8))
            assert req.ok

    scenario.sim.run(until=scenario.sim.process(flow(scenario.sim)))
    return tele.spans.clean_spans()


def test_latency_breakdown(benchmark, results_writer):
    spans = run_experiment(benchmark, _traced_remote_reads)
    assert len(spans) == IOS

    # The tentpole invariant: per span, stages sum to the end-to-end
    # latency exactly — no rounding, no unattributed gap.
    for span in spans:
        stages = span.stage_durations()
        assert stages is not None
        assert sum(stages.values()) == span.duration_ns

    per_stage = {name: np.array([s.stage_durations()[name] for s in spans])
                 for name in STAGES}
    total = float(np.median([s.duration_ns for s in spans]))

    rows = []
    for name in STAGES:
        med = float(np.median(per_stage[name]))
        rows.append([name, STAGE_LABELS[name], f"{med / 1000:.2f}",
                     f"{100 * med / total:.0f}%"])
    rows.append(["TOTAL", "end-to-end", f"{total / 1000:.2f}", "100%"])
    art = format_table(["stage", "what", "median (us)", "share"], rows,
                       title="Remote 4 KiB QD1 read: latency breakdown "
                             "(paper Fig. 2/3, quantified)")
    results_writer("latency_breakdown", art)

    def med(name):
        return float(np.median(per_stage[name]))

    # Media + data/CQE return dominate; submission-side software and
    # fabric flight are each a small share (the paper's point: the
    # distributed driver adds almost no software to the data path).
    assert med("media") + med("cq-ntb-write") > 0.5 * total
    assert med("submit") + med("sq-ntb-write") + med("doorbell") \
        < 0.3 * total
