"""Latency under load: QD1 latency while a neighbour host saturates the
shared fabric and device.

The paper's evaluation isolates network latency with an idle cluster;
a production deployment shares the cluster switch, the device's PCIe
link and the media channels among hosts.  This bench measures how a
latency-sensitive client degrades as a bulk client (128 KiB, QD=16)
runs beside it, separating two effects:

* fabric/link contention (cut-through occupancy of shared links);
* media-channel contention at the drive (the dominant term).
"""

from __future__ import annotations

from conftest import run_experiment

from repro.analysis import format_table
from repro.driver import DistributedNvmeClient, NvmeManager
from repro.scenarios.testbed import PcieTestbed
from repro.sim import BoxplotStats
from repro.workloads import FioJob, fio_generator, run_fio

IOS = 800


def _measure(background: bool, seed: int) -> BoxplotStats:
    bed = PcieTestbed(n_hosts=3, with_nvme=True, seed=seed)
    manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                          bed.nvme_device_id, bed.config)
    bed.sim.run(until=bed.sim.process(manager.start()))
    latency_client = DistributedNvmeClient(
        bed.sim, bed.smartio, bed.node(1), bed.nvme_device_id,
        bed.config, slot_index=1, name="latency")
    bed.sim.run(until=bed.sim.process(latency_client.start()))

    if background:
        bulk_client = DistributedNvmeClient(
            bed.sim, bed.smartio, bed.node(2), bed.nvme_device_id,
            bed.config, slot_index=2, queue_depth=16, name="bulk")
        bed.sim.run(until=bed.sim.process(bulk_client.start()))
        # Endless bulk reader: runs until the simulation stops caring.
        bed.sim.process(fio_generator(
            bulk_client, FioJob(name="bulk", rw="read", bs=128 * 1024,
                                iodepth=16, total_ios=100_000,
                                region_lbas=1 << 21)))

    result = run_fio(latency_client,
                     FioJob(name="lat", rw="randread", bs=4096,
                            iodepth=1, total_ios=IOS, ramp_ios=50))
    return result.summary("read")


def test_latency_under_load(benchmark, results_writer):
    def experiment():
        return {
            "idle cluster": _measure(False, seed=1040),
            "with 128K QD16 bulk neighbour": _measure(True, seed=1041),
        }

    stats = run_experiment(benchmark, experiment)
    rows = [[label, f"{s.minimum / 1e3:.2f}", f"{s.median / 1e3:.2f}",
             f"{s.p99 / 1e3:.2f}"]
            for label, s in stats.items()]
    art = format_table(["condition", "min (us)", "median (us)",
                        "p99 (us)"], rows,
                       title="Remote QD1 4 KiB read latency under "
                             "neighbour load")
    results_writer("latency_under_load", art)

    idle = stats["idle cluster"]
    loaded = stats["with 128K QD16 bulk neighbour"]
    # Load hurts: media channels are busy with 128 KiB transfers.
    assert loaded.median > idle.median + 3_000
    # But the fabric does not collapse: p99 under load stays bounded
    # (no software queues to melt down — the device arbitrates).
    assert loaded.p99 < 25 * idle.p99
