#!/usr/bin/env python
"""Wall-clock speed of the simulation engine itself.

Unlike every other benchmark in this directory (which regenerate the
paper's *simulated* results), this one measures how fast the simulator
chews through events on the host machine.  It is the repo's perf
trajectory: ``BENCH_sim_speed.json`` records a ``before``/``after``
pair per optimisation PR, and CI replays the ``--quick`` variant to
catch wall-clock regressions early.

Scenarios timed (all fully seeded, so the *simulated* results are
bit-identical from run to run — only host wall-clock varies):

* ``fig10-ours-remote``   — single client, one NTB hop (paper Fig. 10);
* ``multihost-4``         — 4 clients sharing the controller (Sec. VI);
* ``chaos``               — 3 clients under a fixed fault plan with
  recovery enabled (retries, resyncs, lease reclaims).

Usage::

    python benchmarks/bench_sim_speed.py                 # full run
    python benchmarks/bench_sim_speed.py --quick         # CI smoke
    python benchmarks/bench_sim_speed.py --quick \
        --check BENCH_sim_speed.json --tolerance 0.30    # regression gate
    python benchmarks/bench_sim_speed.py --record after \
        --json BENCH_sim_speed.json                      # update trajectory
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.faults import FaultEvent, FaultPlan               # noqa: E402
from repro.scenarios import chaos_cluster, multihost, ours_remote  # noqa: E402
from repro.workloads import (FioJob, fio_generator, run_fio,  # noqa: E402
                             run_fio_many)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_JSON = REPO_ROOT / "BENCH_sim_speed.json"

#: fault plan for the chaos scenario — fixed, so every run replays the
#: same faults and the workload drains identically
CHAOS_PLAN = FaultPlan((
    FaultEvent(200_000, "link_down", "link:host2", duration_ns=500_000),
    FaultEvent(400_000, "tlp_drop", "link:host3", probability=0.1,
               duration_ns=800_000),
    FaultEvent(900_000, "ctrl_stall", "ctrl:nvme0", duration_ns=300_000),
))

#: (full, quick) I/O counts per scenario
SIZES = {
    "fig10-ours-remote": (2000, 400),
    "multihost-4": (1500, 300),       # per client
    "chaos": (400, 150),              # per client
}


def _events_of(sim) -> int | None:
    """Events processed, when the core exposes the counter (post-PR4)."""
    return getattr(sim, "events_processed", None)


def bench_fig10(ios: int) -> dict:
    scenario = ours_remote(seed=7)
    start = time.perf_counter()
    result = run_fio(scenario.device,
                     FioJob(rw="randread", bs=4096, iodepth=8,
                            total_ios=ios))
    wall = time.perf_counter() - start
    return {"wall_s": wall, "ios": ios, "sim_ns": scenario.sim.now,
            "events": _events_of(scenario.sim),
            "checksum": int(result.read_latencies.values().sum())}


def bench_multihost(ios_per_client: int) -> dict:
    scenario = multihost(4, seed=404, queue_depth=16)
    start = time.perf_counter()
    jobs = [(client, FioJob(name=f"mh{i}", rw="randread", bs=4096,
                            iodepth=8, total_ios=ios_per_client,
                            region_lbas=1 << 20))
            for i, client in enumerate(scenario.clients)]
    results = run_fio_many(jobs)
    wall = time.perf_counter() - start
    checksum = sum(int(r.read_latencies.values().sum()) for r in results)
    return {"wall_s": wall, "ios": 4 * ios_per_client,
            "sim_ns": scenario.sim.now,
            "events": _events_of(scenario.sim), "checksum": checksum}


def bench_chaos(ios_per_client: int) -> dict:
    sc = chaos_cluster(n_clients=3, plan=CHAOS_PLAN, seed=321)
    start = time.perf_counter()
    sc.injector.start()
    procs = [sc.sim.process(fio_generator(
        client, FioJob(name=f"j{i}", rw="randrw", iodepth=4,
                       total_ios=ios_per_client, seed_stream=f"fio{i}")))
        for i, client in enumerate(sc.clients)]
    sc.sim.run(until=sc.sim.timeout(400_000_000))
    wall = time.perf_counter() - start
    if not all(p.triggered for p in procs):
        raise RuntimeError("chaos workload did not drain")
    return {"wall_s": wall, "ios": 3 * ios_per_client,
            "sim_ns": sc.sim.now, "events": _events_of(sc.sim),
            "checksum": len(sc.trace_log())}


BENCHES = {
    "fig10-ours-remote": bench_fig10,
    "multihost-4": bench_multihost,
    "chaos": bench_chaos,
}


def run_suite(quick: bool, repeats: int) -> dict:
    out = {}
    for name, fn in BENCHES.items():
        full, small = SIZES[name]
        ios = small if quick else full
        best = None
        for _ in range(repeats):
            sample = fn(ios)
            if best is None or sample["wall_s"] < best["wall_s"]:
                best = sample
        assert best is not None
        if best["events"] is not None:
            best["events_per_sec"] = round(best["events"] / best["wall_s"])
        best["wall_s"] = round(best["wall_s"], 4)
        out[name] = best
        print(f"{name:24s} {best['wall_s']:8.3f}s  "
              f"{best['ios']:6d} ios  "
              f"{(best.get('events_per_sec') or 0):>9} ev/s")
    return out


def check_regression(current: dict, baseline_path: pathlib.Path,
                     tolerance: float) -> int:
    data = json.loads(baseline_path.read_text())
    baseline = data["runs"].get("after") or data["runs"]["before"]
    mode = "quick" if current["quick"] else "full"
    failures = []
    for name, sample in current["scenarios"].items():
        base = baseline.get(mode, {}).get(name)
        if base is None:
            print(f"{name}: no baseline for mode {mode!r}; skipping")
            continue
        ratio = sample["wall_s"] / base["wall_s"]
        verdict = "OK" if ratio <= 1.0 + tolerance else "REGRESSION"
        print(f"{name:24s} {base['wall_s']:8.3f}s -> "
              f"{sample['wall_s']:8.3f}s  ({ratio:5.2f}x)  {verdict}")
        if ratio > 1.0 + tolerance:
            failures.append(name)
    if failures:
        print(f"FAIL: wall-clock regression beyond {tolerance:.0%} "
              f"in: {', '.join(failures)}")
        return 1
    print(f"all scenarios within {tolerance:.0%} of baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small I/O counts (CI smoke)")
    ap.add_argument("--repeats", type=int, default=1,
                    help="take the best of N runs per scenario")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help="write results into this trajectory file")
    ap.add_argument("--record", choices=("before", "after"), default=None,
                    help="label under which to record in the trajectory")
    ap.add_argument("--check", type=pathlib.Path, default=None,
                    help="compare against a committed baseline and fail "
                         "on regression")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed wall-clock slowdown vs baseline")
    ap.add_argument("--out", type=pathlib.Path, default=None,
                    help="also dump this run's raw results as JSON")
    args = ap.parse_args(argv)

    scenarios = run_suite(args.quick, args.repeats)
    current = {"quick": args.quick, "scenarios": scenarios}

    if args.out is not None:
        args.out.write_text(json.dumps(current, indent=2) + "\n")

    if args.record is not None:
        path = args.json or DEFAULT_JSON
        data = (json.loads(path.read_text()) if path.exists()
                else {"benchmark": "bench_sim_speed",
                      "units": {"wall_s": "seconds of host wall-clock",
                                "events_per_sec": "simulator events/s"},
                      "runs": {}})
        mode = "quick" if args.quick else "full"
        data["runs"].setdefault(args.record, {})[mode] = scenarios
        path.write_text(json.dumps(data, indent=2) + "\n")
        print(f"recorded {mode!r} results as {args.record!r} in {path}")

    if args.check is not None:
        return check_regression(current, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
