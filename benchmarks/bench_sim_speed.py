#!/usr/bin/env python
"""Wall-clock speed of the simulation engine itself.

Unlike every other benchmark in this directory (which regenerate the
paper's *simulated* results), this one measures how fast the simulator
chews through events on the host machine.  It is the repo's perf
trajectory: ``BENCH_sim_speed.json`` records a ``before``/``after``
pair per optimisation PR, and CI replays the ``--quick`` variant to
catch wall-clock regressions early.

Scenarios timed (all fully seeded, so the *simulated* results are
bit-identical from run to run — only host wall-clock varies):

* ``fig10-ours-remote``   — single client, one NTB hop (paper Fig. 10);
* ``multihost-4``         — 4 clients sharing the controller (Sec. VI);
* ``chaos``               — 3 clients under a fixed fault plan with
  recovery enabled (retries, resyncs, lease reclaims).

Usage::

    python benchmarks/bench_sim_speed.py                 # full run
    python benchmarks/bench_sim_speed.py --quick         # CI smoke
    python benchmarks/bench_sim_speed.py --quick \
        --check BENCH_sim_speed.json --tolerance 0.30    # regression gate
    python benchmarks/bench_sim_speed.py --record after \
        --json BENCH_sim_speed.json                      # update trajectory
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.faults import FaultEvent, FaultPlan               # noqa: E402
from repro.scenarios import chaos_cluster, multihost, ours_remote  # noqa: E402
from repro.workloads import (FioJob, fio_generator, run_fio,  # noqa: E402
                             run_fio_many)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_JSON = REPO_ROOT / "BENCH_sim_speed.json"

#: fault plan for the chaos scenario — fixed, so every run replays the
#: same faults and the workload drains identically
CHAOS_PLAN = FaultPlan((
    FaultEvent(200_000, "link_down", "link:host2", duration_ns=500_000),
    FaultEvent(400_000, "tlp_drop", "link:host3", probability=0.1,
               duration_ns=800_000),
    FaultEvent(900_000, "ctrl_stall", "ctrl:nvme0", duration_ns=300_000),
))

#: (full, quick) I/O counts per scenario
SIZES = {
    "fig10-ours-remote": (2000, 400),
    "multihost-4": (1500, 300),       # per client
    "chaos": (400, 150),              # per client
}


def _events_of(sim) -> int:
    """Events processed.  The counter has been a core invariant since
    PR-4; failing loudly beats recording ``"events": null`` rows that
    silently disable the throughput gate (which is exactly what the
    old ``getattr(..., None)`` fallback did)."""
    return sim.events_processed


def bench_fig10(ios: int) -> dict:
    scenario = ours_remote(seed=7)
    start = time.perf_counter()
    result = run_fio(scenario.device,
                     FioJob(rw="randread", bs=4096, iodepth=8,
                            total_ios=ios))
    wall = time.perf_counter() - start
    return {"wall_s": wall, "ios": ios, "sim_ns": scenario.sim.now,
            "events": _events_of(scenario.sim),
            "checksum": int(result.read_latencies.values().sum())}


def bench_multihost(ios_per_client: int) -> dict:
    scenario = multihost(4, seed=404, queue_depth=16)
    start = time.perf_counter()
    jobs = [(client, FioJob(name=f"mh{i}", rw="randread", bs=4096,
                            iodepth=8, total_ios=ios_per_client,
                            region_lbas=1 << 20))
            for i, client in enumerate(scenario.clients)]
    results = run_fio_many(jobs)
    wall = time.perf_counter() - start
    checksum = sum(int(r.read_latencies.values().sum()) for r in results)
    return {"wall_s": wall, "ios": 4 * ios_per_client,
            "sim_ns": scenario.sim.now,
            "events": _events_of(scenario.sim), "checksum": checksum}


def bench_chaos(ios_per_client: int) -> dict:
    sc = chaos_cluster(n_clients=3, plan=CHAOS_PLAN, seed=321)
    start = time.perf_counter()
    sc.injector.start()
    procs = [sc.sim.process(fio_generator(
        client, FioJob(name=f"j{i}", rw="randrw", iodepth=4,
                       total_ios=ios_per_client, seed_stream=f"fio{i}")))
        for i, client in enumerate(sc.clients)]
    sc.sim.run(until=sc.sim.timeout(400_000_000))
    wall = time.perf_counter() - start
    if not all(p.triggered for p in procs):
        raise RuntimeError("chaos workload did not drain")
    return {"wall_s": wall, "ios": 3 * ios_per_client,
            "sim_ns": sc.sim.now, "events": _events_of(sc.sim),
            "checksum": len(sc.trace_log())}


def bench_sharded(ios_per_client: int, shards: int,
                  parallel: bool = True) -> dict:
    """Sharded multihost-4 against its own shards=1 reference.

    Both runs happen in this one sample so ``speedup`` compares like
    with like on the current machine.  ``checksum_equal`` is the
    determinism contract (fio accounting + namespace digests match the
    single-loop run bit for bit) and is gated unconditionally;
    ``speedup`` only means anything when the host actually has a core
    per shard, so ``check_regression`` reads the recorded ``cores``.
    """
    from repro.scenarios.sharded import (build_multihost,
                                         merge_program_results)
    from repro.sim import run_sharded

    build = build_multihost(ios_per_client=ios_per_client)
    start = time.perf_counter()
    ref = run_sharded(build, shards=1)
    ref_wall = time.perf_counter() - start
    start = time.perf_counter()
    run = run_sharded(build, shards=shards, parallel=parallel)
    wall = time.perf_counter() - start
    merged_ref = merge_program_results(ref.results)
    merged = merge_program_results(run.results)
    equal = (merged["fio"] == merged_ref["fio"]
             and merged["checksums"] == merged_ref["checksums"])
    return {"wall_s": wall, "ref_wall_s": round(ref_wall, 4),
            "speedup": round(ref_wall / wall, 3),
            "ios": 4 * ios_per_client, "sim_ns": run.sim_now,
            "events": run.events, "shards": shards,
            "parallel": parallel, "windows": run.windows,
            "messages": run.messages, "checksum_equal": equal,
            "checksum": sum(merged["checksums"].values())}


BENCHES = {
    "fig10-ours-remote": bench_fig10,
    "multihost-4": bench_multihost,
    "chaos": bench_chaos,
}


def run_suite(quick: bool, repeats: int, shards: int = 0) -> dict:
    out = {}
    for name, fn in BENCHES.items():
        full, small = SIZES[name]
        ios = small if quick else full
        best = None
        for _ in range(repeats):
            sample = fn(ios)
            if best is None or sample["wall_s"] < best["wall_s"]:
                best = sample
        assert best is not None
        best["events_per_sec"] = round(best["events"] / best["wall_s"])
        best["wall_s"] = round(best["wall_s"], 4)
        out[name] = best
        print(f"{name:24s} {best['wall_s']:8.3f}s  "
              f"{best['ios']:6d} ios  "
              f"{best['events_per_sec']:>9} ev/s")
    if shards > 1:
        full, small = SIZES["multihost-4"]
        ios = small if quick else full
        best = None
        for _ in range(repeats):
            sample = bench_sharded(ios, shards)
            if best is None or sample["wall_s"] < best["wall_s"]:
                best = sample
        assert best is not None
        best["events_per_sec"] = round(best["events"] / best["wall_s"])
        best["wall_s"] = round(best["wall_s"], 4)
        name = f"multihost-4-sharded{shards}"
        out[name] = best
        print(f"{name:24s} {best['wall_s']:8.3f}s  "
              f"{best['ios']:6d} ios  "
              f"{best['events_per_sec']:>9} ev/s  "
              f"speedup {best['speedup']:.2f}x "
              f"checksums {'OK' if best['checksum_equal'] else 'DIFFER'}")
    return out


def check_regression(current: dict, baseline_path: pathlib.Path,
                     tolerance: float,
                     speedup_floor: float = 1.5) -> int:
    data = json.loads(baseline_path.read_text())
    baseline = data["runs"].get("after") or data["runs"]["before"]
    mode = "quick" if current["quick"] else "full"
    cores = current.get("cores") or 1
    failures = []
    for name, sample in current["scenarios"].items():
        if "speedup" in sample:
            # Sharded entry: determinism is gated unconditionally; the
            # speedup floor only applies when the host has a core per
            # shard (on fewer cores, K processes time-slice one CPU
            # and the barrier overhead is all that is measured).
            if not sample["checksum_equal"]:
                print(f"{name}: sharded results DIVERGED from shards=1")
                failures.append(name)
                continue
            if cores >= sample["shards"]:
                verdict = ("OK" if sample["speedup"] >= speedup_floor
                           else "TOO SLOW")
                print(f"{name:24s} speedup {sample['speedup']:5.2f}x "
                      f"(floor {speedup_floor:.2f}x, {cores} cores)  "
                      f"{verdict}")
                if sample["speedup"] < speedup_floor:
                    failures.append(name)
            else:
                print(f"{name:24s} speedup {sample['speedup']:5.2f}x "
                      f"(not gated: {cores} cores < "
                      f"{sample['shards']} shards), checksums OK")
            continue
        base = baseline.get(mode, {}).get(name)
        if base is None:
            print(f"{name}: no baseline for mode {mode!r}; skipping")
            continue
        ratio = sample["wall_s"] / base["wall_s"]
        verdict = "OK" if ratio <= 1.0 + tolerance else "REGRESSION"
        print(f"{name:24s} {base['wall_s']:8.3f}s -> "
              f"{sample['wall_s']:8.3f}s  ({ratio:5.2f}x)  {verdict}")
        if ratio > 1.0 + tolerance:
            failures.append(name)
        # Same gate on the event-throughput axis: wall_s alone passes
        # when a change also shrinks the event count (doing less work
        # more slowly per event).
        base_eps = base.get("events_per_sec")
        if base_eps:
            eps_ratio = sample["events_per_sec"] / base_eps
            if eps_ratio < 1.0 / (1.0 + tolerance):
                print(f"{name:24s} {base_eps:>9} ev/s -> "
                      f"{sample['events_per_sec']:>9} ev/s  "
                      f"({eps_ratio:5.2f}x)  THROUGHPUT REGRESSION")
                failures.append(f"{name} (events/s)")
    if failures:
        print(f"FAIL: regression beyond {tolerance:.0%} "
              f"in: {', '.join(failures)}")
        return 1
    print(f"all scenarios within {tolerance:.0%} of baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small I/O counts (CI smoke)")
    ap.add_argument("--repeats", type=int, default=1,
                    help="take the best of N runs per scenario")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help="write results into this trajectory file")
    ap.add_argument("--record", choices=("before", "after"), default=None,
                    help="label under which to record in the trajectory")
    ap.add_argument("--check", type=pathlib.Path, default=None,
                    help="compare against a committed baseline and fail "
                         "on regression")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed wall-clock slowdown vs baseline")
    ap.add_argument("--shards", type=int, default=0,
                    help="also time a multiprocess sharded multihost-4 "
                         "run with this many shards vs its shards=1 "
                         "reference")
    ap.add_argument("--speedup-floor", type=float, default=1.5,
                    help="minimum sharded speedup when the host has a "
                         "core per shard (checksum equality is gated "
                         "regardless)")
    ap.add_argument("--out", type=pathlib.Path, default=None,
                    help="also dump this run's raw results as JSON")
    args = ap.parse_args(argv)

    scenarios = run_suite(args.quick, args.repeats, shards=args.shards)
    current = {"quick": args.quick, "cores": os.cpu_count(),
               "scenarios": scenarios}

    if args.out is not None:
        args.out.write_text(json.dumps(current, indent=2) + "\n")

    if args.record is not None:
        path = args.json or DEFAULT_JSON
        data = (json.loads(path.read_text()) if path.exists()
                else {"benchmark": "bench_sim_speed",
                      "units": {"wall_s": "seconds of host wall-clock",
                                "events_per_sec": "simulator events/s"},
                      "runs": {}})
        mode = "quick" if args.quick else "full"
        data["runs"].setdefault(args.record, {})[mode] = scenarios
        # Sharded speedups are only meaningful relative to the core
        # count they were measured on; record it alongside.
        data.setdefault("machine", {})["cores"] = os.cpu_count()
        path.write_text(json.dumps(data, indent=2) + "\n")
        print(f"recorded {mode!r} results as {args.record!r} in {path}")

    if args.check is not None:
        return check_regression(current, args.check, args.tolerance,
                                speedup_floor=args.speedup_floor)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
