#!/usr/bin/env python
"""Wall-clock overhead of the SLO telemetry stack on the multihost run.

The time-series sampler, the per-tenant latency histograms and the
burn-rate engine all live on the hot path of every completed command
(one ``record_io`` call) plus one sampling event per interval.  This
benchmark measures what that costs in *host* wall-clock on the
cluster/multihost scenario, by timing the identical seeded workload
twice:

* ``off`` — telemetry disabled entirely (the default for every run);
* ``on``  — telemetry hub + histograms + SLO engine + sampler at the
  ``repro slo`` default interval (200 us of simulated time).

The simulated results are bit-identical between the two (the sampler
only reads state — see ``tests/test_slo.py::TestZeroPerturbation``), so
the wall-clock delta is pure instrumentation overhead.  The gate is
**< 10 %** overhead; ``BENCH_slo_overhead.json`` records the
``before``/``after`` trajectory per PR, same shape as
``BENCH_sim_speed.json``.

Usage::

    python benchmarks/bench_slo_overhead.py                  # full run
    python benchmarks/bench_slo_overhead.py --quick          # CI smoke
    python benchmarks/bench_slo_overhead.py --quick --check  # gate
    python benchmarks/bench_slo_overhead.py --record after \
        --json BENCH_slo_overhead.json                       # trajectory
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.scenarios import cluster                           # noqa: E402
from repro.telemetry.runner import SLO_RELIABILITY, DEFAULT_SLO  # noqa: E402
from repro.workloads import FioJob, fio_generator             # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_JSON = REPO_ROOT / "BENCH_slo_overhead.json"

#: sampling interval matching the ``repro slo`` default
INTERVAL_NS = 200_000
#: simulated horizon; long enough for the full-size workload to drain
HORIZON_NS = 60_000_000

#: (full, quick) I/Os per client.  The quick variant still runs ~1 s
#: per sample — shorter runs drown the <10 % signal in scheduler noise.
SIZES = (3000, 1000)


def run_once(ios: int, instrument: bool, seed: int = 7) -> dict:
    """One seeded 4x2 cluster workload; returns wall time + checksums."""
    sc = cluster(n_clients=4, n_devices=2, seed=seed,
                 telemetry=instrument, reliability=SLO_RELIABILITY)
    if instrument:
        tele = sc.telemetry
        assert tele is not None
        tele.enable_histograms()
        tele.enable_slo(DEFAULT_SLO)
        sampler = tele.enable_sampler(interval_ns=INTERVAL_NS)
    start = time.perf_counter()
    procs = []
    for i, volume in enumerate(sc.volumes):
        job = FioJob(name=f"t{i}", rw="randrw", bs=4096, iodepth=4,
                     total_ios=ios, seed_stream=f"slo{i}")
        procs.append(sc.sim.process(fio_generator(volume, job)))
    sc.sim.run(until=sc.sim.timeout(HORIZON_NS))
    if instrument:
        sampler.stop()
        sc.telemetry.collect()
    wall = time.perf_counter() - start
    if not all(p.triggered for p in procs):
        raise RuntimeError("workload did not drain by the horizon")
    checksum = sum(int(p.value.read_latencies.values().sum()) for p in procs)
    return {"wall_s": wall, "ios": 4 * ios, "sim_ns": sc.sim.now,
            "checksum": checksum}


def run_suite(quick: bool, repeats: int) -> dict:
    ios = SIZES[1] if quick else SIZES[0]
    totals = {"off": 0.0, "on": 0.0}
    out: dict[str, dict] = {}
    # Interleave off/on repeats so thermal / scheduler drift hits both
    # variants equally, and compare *totals* across the repeats — the
    # ratio of two single best-of samples is far noisier than the
    # ratio of two sums.
    for _ in range(repeats):
        for variant, instrument in (("off", False), ("on", True)):
            sample = run_once(ios, instrument)
            totals[variant] += sample.pop("wall_s")
            out[variant] = sample
    if out["off"]["checksum"] != out["on"]["checksum"] or \
            out["off"]["sim_ns"] != out["on"]["sim_ns"]:
        raise RuntimeError(
            "instrumented run perturbed the modeled results "
            f"(checksum {out['off']['checksum']} vs "
            f"{out['on']['checksum']})")
    overhead = totals["on"] / totals["off"] - 1.0
    for variant in ("off", "on"):
        out[variant]["wall_s"] = round(totals[variant] / repeats, 4)
        print(f"telemetry {variant:3s} {out[variant]['wall_s']:8.3f}s  "
              f"{out[variant]['ios']:6d} ios  (mean of {repeats})")
    print(f"overhead: {overhead:+.1%}")
    return {"off": out["off"], "on": out["on"],
            "overhead": round(overhead, 4)}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small I/O counts (CI smoke)")
    ap.add_argument("--repeats", type=int, default=5,
                    help="take the best of N interleaved runs per variant")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help="write results into this trajectory file")
    ap.add_argument("--record", choices=("before", "after"), default=None,
                    help="label under which to record in the trajectory")
    ap.add_argument("--check", action="store_true",
                    help="fail when overhead exceeds the gate")
    ap.add_argument("--gate", type=float, default=0.10,
                    help="maximum allowed instrumentation overhead")
    ap.add_argument("--out", type=pathlib.Path, default=None,
                    help="also dump this run's raw results as JSON")
    args = ap.parse_args(argv)

    results = run_suite(args.quick, args.repeats)
    current = {"quick": args.quick, "results": results}

    if args.out is not None:
        args.out.write_text(json.dumps(current, indent=2) + "\n")

    if args.record is not None:
        path = args.json or DEFAULT_JSON
        data = (json.loads(path.read_text()) if path.exists()
                else {"benchmark": "bench_slo_overhead",
                      "units": {"wall_s": "seconds of host wall-clock",
                                "overhead": "on/off wall ratio minus 1"},
                      "runs": {}})
        mode = "quick" if args.quick else "full"
        data["runs"].setdefault(args.record, {})[mode] = results
        path.write_text(json.dumps(data, indent=2) + "\n")
        print(f"recorded {mode!r} results as {args.record!r} in {path}")

    if args.check:
        if results["overhead"] > args.gate:
            print(f"FAIL: SLO telemetry overhead {results['overhead']:+.1%} "
                  f"exceeds the {args.gate:.0%} gate")
            return 1
        print(f"overhead within the {args.gate:.0%} gate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
