#!/usr/bin/env python
"""Shared I/O queue pairs: does admission beyond 31 hosts cost IOPS?

The paper's P4800X supports 31 I/O queue pairs, one per host — the
hard cluster ceiling.  With manager-hosted shared SQs
(docs/queue_sharing.md) the ceiling becomes a *capacity* limit: extra
clients are admitted as tenants of shared queue pairs, submitting into
reserved slot windows and polling client-local completion mailboxes.

This bench compares, on one single-function controller:

* ``private-31`` — the paper's baseline: 31 clients, one private QP
  each, sharing disabled;
* ``shared-32``  — the first client past the old limit (default
  policy: mostly private QPs plus a few shared tenants);
* ``shared-64``  — a 64-client scale-out on the same 31 QPs.

The device, not the queueing model, should bound aggregate throughput:
the acceptance gate (``--check``) fails if the 64-client aggregate
falls more than 10% below the 31-client private baseline.

Usage::

    python benchmarks/bench_qp_sharing.py              # full run
    python benchmarks/bench_qp_sharing.py --quick      # CI smoke
    python benchmarks/bench_qp_sharing.py --quick --check   # gate
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.analysis import format_table                       # noqa: E402
from repro.config import SimulationConfig                     # noqa: E402
from repro.scenarios import multihost, scale_out_cluster      # noqa: E402
from repro.workloads import FioJob, run_fio_many              # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: ios per client, (full, quick)
SIZES = {"private-31": (300, 80), "shared-32": (300, 80),
         "shared-64": (150, 40)}
QD = 2


def no_sharing_config() -> SimulationConfig:
    cfg = SimulationConfig()
    return dataclasses.replace(
        cfg, sharing=dataclasses.replace(cfg.sharing, enabled=False))


def build(mode: str):
    if mode == "private-31":
        return multihost(31, config=no_sharing_config(), seed=431,
                         queue_depth=QD, sharing="never")
    if mode == "shared-32":
        return multihost(32, seed=432, queue_depth=QD)
    if mode == "shared-64":
        return scale_out_cluster(64, seed=464, queue_depth=QD)
    raise ValueError(mode)


def run_mode(mode: str, quick: bool) -> dict:
    ios = SIZES[mode][1 if quick else 0]
    scenario = build(mode)
    jobs = [(client, FioJob(name=f"qs{i}", rw="randread", bs=4096,
                            iodepth=QD, total_ios=ios,
                            region_lbas=1 << 20))
            for i, client in enumerate(scenario.clients)]
    results = run_fio_many(jobs)
    n = len(results)
    assert all(r.ios == ios and r.errors == 0 for r in results)
    assert sum(c.timeouts for c in scenario.clients) == 0
    agg_iops = sum(r.iops for r in results)
    med_lat = sum(r.summary("read").median for r in results) / n
    shared = sum(1 for c in scenario.clients if c._shared)
    return {"clients": n, "shared_tenants": shared,
            "agg_iops": agg_iops, "per_client_iops": agg_iops / n,
            "median_lat_ns": med_lat,
            "rejections": scenario.manager.admission_rejections,
            "orphans": scenario.manager.cqes_orphaned}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small I/O counts (CI smoke)")
    ap.add_argument("--check", action="store_true",
                    help="fail unless shared-64 aggregate IOPS is "
                         "within 10%% of the private-31 baseline")
    args = ap.parse_args(argv)

    rows = {mode: run_mode(mode, args.quick) for mode in SIZES}
    art = format_table(
        ["mode", "clients", "shared tenants", "aggregate kIOPS",
         "per-client kIOPS", "median lat (us)"],
        [[mode, s["clients"], s["shared_tenants"],
          f"{s['agg_iops'] / 1e3:.1f}",
          f"{s['per_client_iops'] / 1e3:.1f}",
          f"{s['median_lat_ns'] / 1e3:.2f}"]
         for mode, s in rows.items()],
        title="One P4800X, 31 I/O QPs: private-per-host vs shared "
              f"queue pairs (4 KiB randread, QD={QD} per client)")
    print(art)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "qp_sharing.txt").write_text(art + "\n")

    for mode, s in rows.items():
        if s["rejections"] or s["orphans"]:
            print(f"FAIL: {mode} saw {s['rejections']} rejections / "
                  f"{s['orphans']} orphaned CQEs")
            return 1
    if args.check:
        base = rows["private-31"]["agg_iops"]
        scaled = rows["shared-64"]["agg_iops"]
        ratio = scaled / base
        verdict = "OK" if ratio >= 0.9 else "REGRESSION"
        print(f"shared-64 / private-31 aggregate: {ratio:.3f}x  {verdict}")
        if ratio < 0.9:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
