#!/usr/bin/env python
"""Noisy-neighbour isolation: bystander tail latency per fetch policy.

One aggressor tenant offers far more open-loop load than its fair share
of the shared-SQ fetch loop while three bystanders offer a modest rate;
all four share ONE shared queue pair (``repro.scenarios.noisy_neighbor``).
For each arbitration policy and each aggressor load level the benchmark
records the worst bystander p99 (open-loop, from scheduled arrival) and
compares it against the *solo* baseline — the identical bystander
arrival streams with the aggressor idle:

* ``fifo``         — global arrival order; the aggressor's deep backlog
  queues in front of everyone (the baseline that fails to isolate);
* ``wfq``          — deficit-round-robin fetch arbitration;
* ``wfq+throttle`` — wfq plus burn-rate admission throttling clamping
  the alerting aggressor's submission window.

Gates (``--check``): at the highest load level the bystander p99 under
``wfq+throttle`` must stay within **1.5x** its solo-run p99 while
``fifo`` exceeds **5x** — i.e. the isolation is real and the baseline's
failure is non-vacuous.  Runs are fully seeded, so the gated numbers
are deterministic.

Usage::

    python benchmarks/bench_qos_isolation.py                 # full sweep
    python benchmarks/bench_qos_isolation.py --quick --check # CI gate
    python benchmarks/bench_qos_isolation.py --record after \
        --json BENCH_qos_isolation.json                      # trajectory
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.qos import run_qos                                 # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_JSON = REPO_ROOT / "BENCH_qos_isolation.json"

#: aggressor offered-load sweep (IOPS); the shared-SQ fetch loop
#: saturates around ~530 kIOPS, so the top level is ~2x overload
LOADS = (250_000.0, 500_000.0, 1_000_000.0)
QUICK_LOADS = (1_000_000.0,)

#: (full, quick) open-loop horizons in simulated ns
HORIZONS = (8_000_000, 4_000_000)

POLICIES = (("fifo", False), ("wfq", False), ("wfq", True))


def policy_label(policy: str, throttle: bool) -> str:
    return f"{policy}+throttle" if throttle else policy


def run_suite(quick: bool, seed: int) -> dict:
    horizon = HORIZONS[1] if quick else HORIZONS[0]
    loads = QUICK_LOADS if quick else LOADS

    solo = run_qos("off", aggressor_active=False, seed=seed,
                   horizon_ns=horizon)
    solo_p99 = solo.bystander_p99_ns()
    print(f"solo bystander p99: {solo_p99:,.0f} ns "
          f"(horizon {horizon / 1e6:.0f} ms)")

    sweep: dict[str, list[dict]] = {}
    for policy, throttle in POLICIES:
        label = policy_label(policy, throttle)
        rows = []
        for load in loads:
            run = run_qos(policy, throttle=throttle, seed=seed,
                          aggressor_iops=load, horizon_ns=horizon)
            p99 = run.bystander_p99_ns()
            agg = run.results[0]
            assert agg is not None
            rows.append({
                "aggressor_offered_iops": load,
                "aggressor_achieved_iops": round(agg.achieved_iops, 1),
                "bystander_p99_ns": round(p99, 1),
                "ratio_vs_solo": round(p99 / solo_p99, 3),
                "bystander_alerts": sum(
                    len(run.tenant_alerts(t)) for t in run.bystanders),
                "aggressor_alerts": len(
                    run.tenant_alerts(run.aggressor)),
            })
            print(f"  {label:13s} load={load / 1e3:6.0f}k  "
                  f"p99={p99:10,.0f} ns  ({p99 / solo_p99:5.2f}x solo)")
        sweep[label] = rows
    return {"solo_p99_ns": round(solo_p99, 1), "horizon_ns": horizon,
            "seed": seed, "loads": list(loads), "policies": sweep}


def check(results: dict, isolate_gate: float, leak_gate: float) -> int:
    """Gate on the highest-load point of each policy's sweep."""
    failures = []
    top_wt = results["policies"]["wfq+throttle"][-1]
    top_fifo = results["policies"]["fifo"][-1]
    if top_wt["ratio_vs_solo"] > isolate_gate:
        failures.append(
            f"wfq+throttle bystander p99 is {top_wt['ratio_vs_solo']}x "
            f"solo (gate: <= {isolate_gate}x)")
    if top_fifo["ratio_vs_solo"] <= leak_gate:
        failures.append(
            f"fifo bystander p99 is only {top_fifo['ratio_vs_solo']}x "
            f"solo (gate: > {leak_gate}x — the no-isolation baseline "
            f"must visibly fail, or the comparison is vacuous)")
    if top_wt["bystander_alerts"]:
        failures.append("wfq+throttle fired bystander alerts")
    if not top_wt["aggressor_alerts"]:
        failures.append("wfq+throttle fired no aggressor alert")
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print(f"isolation gates met: wfq+throttle "
              f"{top_wt['ratio_vs_solo']}x <= {isolate_gate}x, "
              f"fifo {top_fifo['ratio_vs_solo']}x > {leak_gate}x")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="single load level, short horizon (CI smoke)")
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help="write results into this trajectory file")
    ap.add_argument("--record", choices=("before", "after"), default=None,
                    help="label under which to record in the trajectory")
    ap.add_argument("--check", action="store_true",
                    help="fail when the isolation gates are missed")
    ap.add_argument("--isolate-gate", type=float, default=1.5,
                    help="max bystander p99 / solo p99 for wfq+throttle")
    ap.add_argument("--leak-gate", type=float, default=5.0,
                    help="min bystander p99 / solo p99 for fifo")
    ap.add_argument("--out", type=pathlib.Path, default=None,
                    help="also dump this run's raw results as JSON")
    args = ap.parse_args(argv)

    results = run_suite(args.quick, args.seed)
    current = {"quick": args.quick, "results": results}

    if args.out is not None:
        args.out.write_text(json.dumps(current, indent=2) + "\n")

    if args.record is not None:
        path = args.json or DEFAULT_JSON
        data = (json.loads(path.read_text()) if path.exists()
                else {"benchmark": "bench_qos_isolation",
                      "units": {"bystander_p99_ns":
                                "worst bystander open-loop p99, ns",
                                "ratio_vs_solo":
                                "bystander p99 / solo-run p99"},
                      "runs": {}})
        mode = "quick" if args.quick else "full"
        data["runs"].setdefault(args.record, {})[mode] = results
        path.write_text(json.dumps(data, indent=2) + "\n")
        print(f"recorded {mode!r} results as {args.record!r} in {path}")

    if args.check:
        return check(results, args.isolate_gate, args.leak_gate)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
