"""Bounce-buffer ablation (Sec. V).

"The driver uses this DMA buffer as a bounce buffer ... The downside of
this approach is that an extra memory copy is needed in either the
command submission path (writes) or the completion path (reads).  A
future extension ... is to use the IOMMU to dynamically map buffer
addresses for each request instead of using a bounce buffer."

Compares the paper's bounce-buffer data path against the proposed
per-request IOMMU mapping at several block sizes.  The crossover is the
interesting shape: for small I/O the copy is cheap and the constant
IOTLB map/unmap cost dominates; for large I/O the copy scales with size
and the IOMMU path wins.
"""

from __future__ import annotations

from conftest import run_experiment

from repro.analysis import format_table
from repro.scenarios import ours_remote
from repro.units import KiB
from repro.workloads import FioJob, run_fio

SIZES = (4 * KiB, 32 * KiB, 128 * KiB)
IOS = 800


def _measure(data_path: str, bs: int, op: str, seed: int) -> float:
    scenario = ours_remote(seed=seed, data_path=data_path)
    rw = "randread" if op == "read" else "randwrite"
    result = run_fio(scenario.device,
                     FioJob(rw=rw, bs=bs, iodepth=1,
                            total_ios=max(200, IOS // (bs // (4 * KiB))),
                            ramp_ios=20))
    return float(result.summary(op).median)


def test_bounce_vs_iommu(benchmark, results_writer):
    def experiment():
        out = {}
        seed = 900
        for bs in SIZES:
            for op in ("read", "write"):
                for path in ("bounce", "iommu"):
                    out[(bs, op, path)] = _measure(path, bs, op, seed)
                    seed += 1
        return out

    data = run_experiment(benchmark, experiment)

    rows = []
    for bs in SIZES:
        for op in ("read", "write"):
            bounce = data[(bs, op, "bounce")]
            iommu = data[(bs, op, "iommu")]
            rows.append([f"{bs // 1024}K", op, f"{bounce / 1e3:.2f}",
                         f"{iommu / 1e3:.2f}",
                         f"{(bounce - iommu) / 1e3:+.2f}"])
    art = format_table(
        ["bs", "op", "bounce med (us)", "iommu med (us)",
         "bounce-iommu (us)"],
        rows, title="Bounce buffer (paper) vs per-request IOMMU mapping "
                    "(future work), remote client QD=1")
    results_writer("bounce_buffer", art)

    # 4 KiB: copy ~0.8 us < map+unmap ~1.3 us -> bounce wins or ties.
    assert data[(4 * KiB, "read", "bounce")] <= \
        data[(4 * KiB, "read", "iommu")] + 300
    # 128 KiB: the ~21 us copy dwarfs the IOTLB cost -> IOMMU wins big.
    assert data[(128 * KiB, "read", "iommu")] < \
        data[(128 * KiB, "read", "bounce")] - 10_000
    assert data[(128 * KiB, "write", "iommu")] < \
        data[(128 * KiB, "write", "bounce")] - 10_000
