"""Degraded-link ablation: what a lossy or slow NTB cable costs.

The paper's testbed assumes healthy links; the fault-injection
subsystem lets us ask what happens short of failure.  Two sweeps over
the client's ``link:`` fault point:

* extra per-TLP forwarding delay (an overlong/retraining cable) — every
  submission leg (SQE store, doorbell) and the completion write pay it,
  so QD1 read latency should grow by a small multiple of the delay;
* TLP drop probability (a flaky connector) — dropped SQE/doorbell/CQE
  writes surface as client command timeouts, and the retry machinery
  must recover every I/O at a bounded throughput cost.
"""

from __future__ import annotations

from conftest import run_experiment

from repro.analysis import format_table
from repro.scenarios import CHAOS_RELIABILITY, chaos_cluster
from repro.units import ns_to_us
from repro.workloads import FioJob, fio_generator

EXTRA_DELAYS_NS = (0, 500, 1_000, 2_000, 4_000)
DROP_PROBABILITIES = (0.0, 0.01, 0.05)
IOS = 800
HORIZON_NS = 2_000_000_000


def _degraded_run(seed, *, delay_ns=0, drop=0.0, iodepth=1):
    sc = chaos_cluster(n_clients=1, seed=seed,
                       reliability=CHAOS_RELIABILITY)
    point = sc.link_points()[1]          # the client host's adapter
    sc.registry.set_delay(point, delay_ns)
    sc.registry.set_drop(point, drop)
    job = FioJob(rw="randread", bs=4096, iodepth=iodepth,
                 total_ios=IOS, ramp_ios=50)
    proc = sc.sim.process(fio_generator(sc.clients[0], job))
    sc.sim.run(until=sc.sim.timeout(HORIZON_NS))
    assert proc.triggered, "degraded-link workload wedged"
    return sc, proc.value


def test_degraded_link(benchmark, results_writer):
    def experiment():
        delay_rows = {}
        for delay in EXTRA_DELAYS_NS:
            _sc, res = _degraded_run(700, delay_ns=delay)
            delay_rows[delay] = res.summary("read")
        drop_rows = {}
        for drop in DROP_PROBABILITIES:
            sc, res = _degraded_run(701, drop=drop, iodepth=4)
            kiops = res.ios / (res.elapsed_ns / 1e9) / 1e3
            drop_rows[drop] = (kiops, res.errors,
                               sc.clients[0].timeouts,
                               sc.clients[0].retries)
        return delay_rows, drop_rows

    delay_rows, drop_rows = run_experiment(benchmark, experiment)

    rows = [[d, f"{ns_to_us(delay_rows[d].minimum):.2f}",
             f"{delay_rows[d].median / 1000:.2f}"]
            for d in EXTRA_DELAYS_NS]
    art = format_table(
        ["extra delay (ns/TLP)", "min (us)", "median (us)"], rows,
        title="Degraded link: per-TLP delay (4 KiB randread QD=1)")

    rows = [[f"{p:.0%}", f"{drop_rows[p][0]:.1f}", drop_rows[p][2],
             drop_rows[p][3], drop_rows[p][1]]
            for p in DROP_PROBABILITIES]
    art += "\n\n" + format_table(
        ["drop prob", "kIOPS", "timeouts", "retries", "lost I/Os"],
        rows,
        title="Degraded link: TLP loss (4 KiB randread QD=4, "
              "2 ms command timeout)")
    results_writer("degraded_link", art)

    meds = [float(delay_rows[d].median) for d in EXTRA_DELAYS_NS]
    assert all(a < b for a, b in zip(meds, meds[1:]))
    # Each QD1 read crosses the NTB ~twice (doorbell out, completion
    # back), so the median must grow about that fast (median rounding
    # can shave a few ns off the exact 2x).
    assert meds[-1] - meds[0] >= 1.9 * EXTRA_DELAYS_NS[-1]

    # Retries recover every dropped I/O: loss costs throughput, never
    # completions.
    for p in DROP_PROBABILITIES:
        assert drop_rows[p][1] == 0
    assert drop_rows[0.05][2] > 0                       # timeouts hit
    assert drop_rows[0.05][0] < drop_rows[0.0][0]       # and cost IOPS
