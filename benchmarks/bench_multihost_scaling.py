"""Section VI: "The P4800X used in our experiments supports up to 32
queue pairs (where one pair is reserved for the admin queues), and we
have confirmed that it can be shared by up to 31 hosts simultaneously."

This bench shares the single-function controller among 1..31 client
hosts running simultaneous random reads and reports per-client and
aggregate IOPS.  The shape to hold: aggregate throughput scales with
host count until the device's media channels saturate, then flattens —
the device, not the NTB fabric, is the bottleneck.
"""

from __future__ import annotations

from conftest import run_experiment

from repro.analysis import format_table
from repro.scenarios import multihost
from repro.workloads import FioJob, run_fio_many

HOST_COUNTS = (1, 2, 4, 8, 16, 31)
IOS_PER_CLIENT = 300
QD = 2


def test_multihost_scaling(benchmark, results_writer):
    def experiment():
        rows = []
        for n in HOST_COUNTS:
            scenario = multihost(n, seed=400 + n, queue_depth=QD)
            jobs = [(client, FioJob(name=f"mh{i}", rw="randread",
                                    bs=4096, iodepth=QD,
                                    total_ios=IOS_PER_CLIENT,
                                    region_lbas=1 << 20))
                    for i, client in enumerate(scenario.clients)]
            results = run_fio_many(jobs)
            agg_iops = sum(r.iops for r in results)
            med_lat = sum(r.summary("read").median
                          for r in results) / len(results)
            rows.append((n, agg_iops, agg_iops / n, med_lat / 1000.0))
        return rows

    rows = run_experiment(benchmark, experiment)

    art = format_table(
        ["clients", "aggregate kIOPS", "per-client kIOPS",
         "median lat (us)"],
        [[n, f"{agg / 1e3:.1f}", f"{per / 1e3:.1f}", f"{lat:.2f}"]
         for n, agg, per, lat in rows],
        title="Multi-host sharing of one single-function P4800X "
              "(4 KiB randread, QD=2 per client)")
    results_writer("multihost_scaling", art)

    agg = {n: a for n, a, _p, _l in rows}
    # Scaling region: 2 clients ~2x one client, 4 clients ~3.5x.
    assert agg[2] > 1.8 * agg[1]
    assert agg[4] > 3.0 * agg[1]
    # Saturation: the device caps out; 31 clients get no more than ~15%
    # over 16 clients, and far from 31x a single client.
    assert agg[31] < 1.3 * agg[16]
    assert agg[31] < 8 * agg[1]
    # The device-level ceiling: channels/media_latency ~ 600-700 kIOPS.
    assert 350_000 < agg[31] < 800_000
    # 31 clients actually ran (the paper's claim).
    assert rows[-1][0] == 31
