#!/usr/bin/env python
"""Cluster scale-out: does aggregate IOPS grow with added devices?

PR 5 pushed *clients* past the controller's 31-QP ceiling; this bench
opens the other axis — *devices*.  The same 64 clients run against a
cluster of 1, 2 and 4 single-function controllers (one per host,
placement spreading one volume per client across the least-loaded
backend).  One device forces the full shared-QP machinery (64 tenants
on 31 QPs); four devices give every backend a comfortable 16 private
QPs plus four times the media channels.

The acceptance gate (``--check``) requires the 4-device aggregate to
reach at least 3.5x the single-device baseline *and* match the numbers
recorded in ``BENCH_cluster_scaling.json`` (the run is deterministic,
so agreement is exact up to a small float tolerance).

Usage::

    python benchmarks/bench_cluster_scaling.py                # full run
    python benchmarks/bench_cluster_scaling.py --quick        # CI smoke
    python benchmarks/bench_cluster_scaling.py --quick --check    # gate
    python benchmarks/bench_cluster_scaling.py --record       # rebaseline
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.analysis import format_table                       # noqa: E402
from repro.scenarios import cluster_scale_out                 # noqa: E402
from repro.workloads import FioJob, run_fio_many              # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE = pathlib.Path(__file__).resolve().parents[1] \
    / "BENCH_cluster_scaling.json"

N_CLIENTS = 64
DEVICE_COUNTS = (1, 2, 4)
QD = 8
#: ios per client, (full, quick)
IOS = {"full": 100, "quick": 30}
MIN_SCALING = 3.5        # 4-device aggregate vs 1-device baseline
TOLERANCE = 0.02         # allowed drift vs the recorded baseline


def run_devices(n_devices: int, quick: bool) -> dict:
    ios = IOS["quick" if quick else "full"]
    scn = cluster_scale_out(N_CLIENTS, n_devices=n_devices, seed=11,
                            queue_depth=QD)
    jobs = [(vol, FioJob(name=f"v{i}", rw="randread", bs=4096,
                         iodepth=QD, total_ios=ios,
                         region_lbas=1 << 20, seed_stream=f"fio{i}"))
            for i, vol in enumerate(scn.volumes)]
    results = run_fio_many(jobs)
    assert all(r.ios == ios and r.errors == 0 for r in results)
    assert sum(c.timeouts for c in scn.subclients) == 0
    assert sum(m.admission_rejections for m in scn.managers.values()) == 0
    assert sum(m.cqes_orphaned for m in scn.managers.values()) == 0
    agg = sum(r.iops for r in results)
    med = sum(r.summary("read").median for r in results) / len(results)
    shared = sum(1 for c in scn.subclients if c._shared)
    return {"devices": n_devices, "clients": N_CLIENTS,
            "shared_tenants": shared, "agg_iops": agg,
            "per_client_iops": agg / N_CLIENTS, "median_lat_ns": med}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small I/O counts (CI smoke)")
    ap.add_argument("--check", action="store_true",
                    help="fail unless 4-device aggregate >= "
                         f"{MIN_SCALING}x the 1-device baseline and "
                         "matches BENCH_cluster_scaling.json")
    ap.add_argument("--record", action="store_true",
                    help="write the measured numbers as the new "
                         "baseline")
    args = ap.parse_args(argv)
    profile = "quick" if args.quick else "full"

    rows = [run_devices(n, args.quick) for n in DEVICE_COUNTS]
    art = format_table(
        ["devices", "clients", "shared tenants", "aggregate kIOPS",
         "per-client kIOPS", "median lat (us)", "scaling"],
        [[s["devices"], s["clients"], s["shared_tenants"],
          f"{s['agg_iops'] / 1e3:.1f}",
          f"{s['per_client_iops'] / 1e3:.1f}",
          f"{s['median_lat_ns'] / 1e3:.2f}",
          f"{s['agg_iops'] / rows[0]['agg_iops']:.2f}x"]
         for s in rows],
        title=f"{N_CLIENTS} clients across N shared NVMe devices "
              f"(4 KiB randread, QD={QD} per client)")
    print(art)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "cluster_scaling.txt").write_text(art + "\n")

    measured = {str(s["devices"]): round(s["agg_iops"], 3) for s in rows}
    scaling = rows[-1]["agg_iops"] / rows[0]["agg_iops"]

    if args.record:
        recorded = json.loads(BASELINE.read_text()) \
            if BASELINE.exists() else {}
        recorded[profile] = {
            "clients": N_CLIENTS, "queue_depth": QD,
            "ios_per_client": IOS[profile], "agg_iops": measured,
            "scaling_4_over_1": round(scaling, 4)}
        BASELINE.write_text(json.dumps(recorded, indent=2,
                                       sort_keys=True) + "\n")
        print(f"recorded {profile} baseline -> {BASELINE.name}")

    if args.check:
        verdict = "OK" if scaling >= MIN_SCALING else "REGRESSION"
        print(f"4-device / 1-device aggregate: {scaling:.2f}x "
              f"(gate {MIN_SCALING}x)  {verdict}")
        if scaling < MIN_SCALING:
            return 1
        if not BASELINE.exists():
            print(f"FAIL: no recorded baseline {BASELINE.name} "
                  f"(run with --record)")
            return 1
        recorded = json.loads(BASELINE.read_text()).get(profile)
        if recorded is None:
            print(f"FAIL: baseline has no {profile!r} profile")
            return 1
        for devices, iops in recorded["agg_iops"].items():
            got = measured[devices]
            drift = abs(got - iops) / iops
            if drift > TOLERANCE:
                print(f"FAIL: {devices}-device aggregate {got:.0f} "
                      f"drifted {drift:.1%} from recorded {iops:.0f}")
                return 1
        print(f"baseline match: all {len(recorded['agg_iops'])} device "
              f"counts within {TOLERANCE:.0%} of {BASELINE.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
