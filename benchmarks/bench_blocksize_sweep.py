"""Block-size sweep (Sec. VI context: "remote storage solutions like
NVMe-oF using RDMA can provide very high throughput, which is comparable
to that of local PCIe").

At large block sizes with deep queues, bandwidth — not per-command
latency — dominates, and NVMe-oF keeps up; that is exactly the regime
the paper concedes to RDMA before pivoting to the latency argument.
The shape to hold: both transports approach the device's bandwidth
ceiling at 64-128 KiB, while at 512 B-4 KiB the PCIe/NTB driver keeps a
visible IOPS edge from its lower per-command cost.
"""

from __future__ import annotations

from conftest import run_experiment

from repro.analysis import format_table
from repro.scenarios import nvmeof_remote, ours_remote
from repro.units import KiB
from repro.workloads import FioJob, run_fio

SIZES = (512, 4 * KiB, 16 * KiB, 64 * KiB, 128 * KiB)
QD = 16


def _sweep(builder, seed_base):
    out = {}
    for i, bs in enumerate(SIZES):
        # Fewer I/Os for bigger blocks: constant ~bytes per cell.
        ios = max(160, (24 << 20) // bs)
        scenario = builder(seed=seed_base + i, queue_depth=QD)
        result = run_fio(scenario.device,
                         FioJob(rw="randread", bs=bs, iodepth=QD,
                                total_ios=ios, ramp_ios=QD,
                                region_lbas=1 << 21))
        out[bs] = result.bandwidth_bytes_per_s
    return out


def test_blocksize_sweep(benchmark, results_writer):
    def experiment():
        return {"ours-remote": _sweep(ours_remote, 800),
                "nvmeof-remote": _sweep(nvmeof_remote, 820)}

    data = run_experiment(benchmark, experiment)

    rows = []
    for bs in SIZES:
        ours = data["ours-remote"][bs]
        of = data["nvmeof-remote"][bs]
        rows.append([f"{bs // 1024}K" if bs >= 1024 else f"{bs}B",
                     f"{ours / 1e9:.2f}", f"{of / 1e9:.2f}",
                     f"{ours / of:.2f}x"])
    art = format_table(
        ["bs", "ours GB/s", "nvmeof GB/s", "ratio"],
        rows, title=f"Block-size sweep (randread, QD={QD})")
    results_writer("blocksize_sweep", art)

    ours, of = data["ours-remote"], data["nvmeof-remote"]
    # Small blocks: per-command latency matters, ours wins clearly.
    assert ours[4 * KiB] > 1.15 * of[4 * KiB]
    # Large blocks: both bandwidth-bound; NVMe-oF is comparable
    # (within ~25%), the paper's concession.
    assert of[128 * KiB] > 0.75 * ours[128 * KiB]
    # Both approach the device read ceiling (~2.4 GB/s media).
    assert ours[128 * KiB] > 1.5e9
    assert of[128 * KiB] > 1.3e9
