"""Section VI: "each PCIe switch chip in the path adds between 100 and
150 nanoseconds delay (in one direction) for each PCIe transaction."

Sweeps the number of extra switch chips between the client's adapter
and the cluster switch and fits the per-chip latency cost from measured
minimum read latency.  Expectation: each added chip costs ~2x 100-150 ns
on the QD1 read path (the data/doorbell legs are posted one-way, the
completion path adds the rest).
"""

from __future__ import annotations

import numpy as np
from conftest import run_experiment

from repro.analysis import format_table
from repro.config import SimulationConfig
from repro.driver import DistributedNvmeClient, NvmeManager
from repro.scenarios.testbed import PcieTestbed
from repro.units import ns_to_us
from repro.workloads import FioJob, run_fio

CHIP_COUNTS = (0, 1, 2, 3, 4)
IOS = 1000


def _run_with_chips(extra: int, seed: int):
    bed = PcieTestbed(n_hosts=2, with_nvme=True,
                      extra_path_chips=extra, seed=seed)
    manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                          bed.nvme_device_id, bed.config)
    bed.sim.run(until=bed.sim.process(manager.start()))
    client = DistributedNvmeClient(bed.sim, bed.smartio, bed.node(1),
                                   bed.nvme_device_id, bed.config)
    bed.sim.run(until=bed.sim.process(client.start()))
    result = run_fio(client, FioJob(rw="randread", bs=4096, iodepth=1,
                                    total_ios=IOS, ramp_ios=50))
    return result.summary("read")


def test_switch_hop_sweep(benchmark, results_writer):
    def experiment():
        return {extra: _run_with_chips(extra, seed=600 + extra)
                for extra in CHIP_COUNTS}

    stats = run_experiment(benchmark, experiment)

    mins = np.array([stats[c].minimum for c in CHIP_COUNTS], dtype=float)
    meds = np.array([float(stats[c].median) for c in CHIP_COUNTS])
    # Least-squares slope: ns of added median latency per extra chip.
    slope = float(np.polyfit(np.array(CHIP_COUNTS, dtype=float),
                             meds, 1)[0])

    rows = [[c, f"{ns_to_us(stats[c].minimum):.2f}",
             f"{stats[c].median / 1000:.2f}"] for c in CHIP_COUNTS]
    art = format_table(
        ["extra chips", "min (us)", "median (us)"], rows,
        title="Switch-chip sweep (remote client, 4 KiB randread QD=1)")
    art += (f"\n\nfitted cost per extra chip: {slope:.0f} ns "
            f"(expected ~2x the paper's 100-150 ns/chip/direction: "
            f"posted submission leg + posted completion leg)")
    results_writer("switch_hop_sweep", art)

    # Monotonically increasing medians.
    assert all(meds[i] < meds[i + 1] for i in range(len(meds) - 1))
    # Per-chip QD1 read cost: two one-way posted legs -> ~200-300 ns/chip.
    assert 150 <= slope <= 400, slope
