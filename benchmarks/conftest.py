"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table/figure of the paper's evaluation
(see DESIGN.md's experiment index).  Results are printed (visible with
``pytest -s``) *and* written to ``benchmarks/results/<name>.txt`` so a
run leaves a reviewable artifact trail.  pytest-benchmark wraps each
experiment, so ``--benchmark-only`` runs exactly this suite and reports
the wall-clock cost of regenerating each figure.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def results_writer(request):
    """Write (and echo) the regenerated table/figure for one benchmark."""

    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        # echo for -s runs
        print(f"\n===== {name} =====\n{text}\n")

    return write


def run_experiment(benchmark, fn):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
