#!/usr/bin/env python3
"""A toy cluster application on the shared block device.

The paper motivates the block-device interface with shared-disk
filesystems (GFS/OCFS).  This example builds the smallest useful
stand-in: a fixed-slot key-value store laid out on the shared NVMe,
accessed concurrently by several hosts, with a block-granular
lease/version scheme for consistency (each record carries a version and
a checksum; readers retry on torn reads).

It demonstrates the property that makes shared-disk software possible
here: every host sees a single coherent block device, because all I/O
queues feed the same controller and medium.

Run:  python examples/cluster_kv_store.py
"""

from __future__ import annotations

import struct
import zlib

from repro import BlockRequest
from repro.scenarios import multihost

RECORD_BLOCKS = 8          # 4 KiB records
HEADER = struct.Struct("<IIQI")   # magic, version, key-hash, crc
MAGIC = 0x4B565354         # "KVST"
TABLE_LBA = 4_000_000
SLOTS = 64


def slot_lba(key: str) -> int:
    index = zlib.crc32(key.encode()) % SLOTS
    return TABLE_LBA + index * RECORD_BLOCKS


def encode(key: str, value: bytes, version: int) -> bytes:
    body = key.encode().ljust(64, b"\x00") + value
    body = body.ljust(4096 - HEADER.size, b"\x00")
    crc = zlib.crc32(body)
    return HEADER.pack(MAGIC, version, zlib.crc32(key.encode()), crc) + body


def decode(block: bytes) -> tuple[str, bytes, int] | None:
    magic, version, _khash, crc = HEADER.unpack_from(block)
    if magic != MAGIC:
        return None
    body = block[HEADER.size:]
    if zlib.crc32(body) != crc:
        return None                      # torn read: caller retries
    key = body[:64].rstrip(b"\x00").decode()
    value = body[64:].rstrip(b"\x00")
    return key, value, version


class KvClient:
    """Per-host KV access through that host's block device."""

    def __init__(self, device):
        self.device = device

    def put(self, key: str, value: bytes, version: int):
        block = encode(key, value, version)
        req = yield self.device.submit(
            BlockRequest("write", lba=slot_lba(key), data=block))
        assert req.ok
        yield self.device.submit(BlockRequest("flush"))

    def get(self, key: str):
        for _attempt in range(5):
            req = yield self.device.submit(
                BlockRequest("read", lba=slot_lba(key),
                             nblocks=RECORD_BLOCKS))
            assert req.ok
            decoded = decode(req.result)
            if decoded is not None:
                return decoded
        raise RuntimeError(f"persistent torn read for {key!r}")


def main() -> None:
    print("Building a 4-host cluster sharing one NVMe...")
    scenario = multihost(4, seed=77, queue_depth=8)
    sim = scenario.sim
    kv = [KvClient(c) for c in scenario.clients]

    def workload(sim):
        # Host 0 publishes configuration records.
        yield from kv[0].put("cluster/name", b"repro-demo", version=1)
        yield from kv[0].put("cluster/leader", b"host1", version=1)
        # Hosts 1..3 read them back through their own queue pairs.
        for i, client in enumerate(kv[1:], start=2):
            key, value, version = yield from client.get("cluster/name")
            print(f"  host{i} read {key!r} = {value!r} (v{version})")
        # Host 2 updates the leader record; host 1 observes the change.
        yield from kv[1].put("cluster/leader", b"host2", version=2)
        key, value, version = yield from kv[0].get("cluster/leader")
        print(f"  host1 sees leader update: {value!r} (v{version})")
        assert value == b"host2" and version == 2
        # Different keys from different hosts, all at once.
        procs = []
        for i, client in enumerate(kv):
            def put_many(sim, client=client, i=i):
                for k in range(6):
                    yield from client.put(f"host{i}/metric{k}",
                                          f"value-{i}-{k}".encode(),
                                          version=1)
            procs.append(sim.process(put_many(sim)))
        yield sim.all_of(procs)
        # Cross-verify from a single host.
        ok = 0
        for i in range(len(kv)):
            for k in range(6):
                key, value, _v = yield from kv[0].get(f"host{i}/metric{k}")
                assert value == f"value-{i}-{k}".encode()
                ok += 1
        return ok

    ok = sim.run(until=sim.process(workload(sim)))
    print(f"  {ok} records written by 4 hosts, all readable everywhere.")
    print("\nThe shared block device behaves like one coherent disk — "
          "the substrate a\nshared-disk filesystem (GFS/OCFS, paper "
          "Sec. V) would mount.")


if __name__ == "__main__":
    main()
