#!/usr/bin/env python3
"""Composing multiple shared NVMe devices: RAID-0 across the cluster.

The SmartIO lineage the paper builds on (device lending, Sec. VII) lets
one host borrow devices installed anywhere in the cluster.  Here a
client host obtains queue pairs on TWO NVMe controllers — each living
in a different cluster host — and stripes across them for additive
bandwidth, all without the data ever passing through another host's CPU.

Run:  python examples/striped_remote_devices.py
"""

from repro import BlockRequest, FioJob, run_fio
from repro.driver import (DistributedNvmeClient, NvmeManager,
                          StripedBlockDevice)
from repro.scenarios.testbed import PcieTestbed
from repro.units import KiB


def main() -> None:
    print("Building a 3-host cluster: NVMe in host0, NVMe in host1, "
          "client in host2 ...")
    bed = PcieTestbed(n_hosts=3, with_nvme=False, seed=99)
    client_node = bed.node(2)
    members = []
    for i in range(2):
        bed.install_nvme(i)
        device_id = i + 1
        manager = NvmeManager(bed.sim, bed.smartio, bed.node(i),
                              device_id, bed.config)
        bed.sim.run(until=bed.sim.process(manager.start()))
        member = DistributedNvmeClient(bed.sim, bed.smartio, client_node,
                                       device_id, bed.config,
                                       slot_index=0,
                                       name=f"remote-nvme{i}")
        bed.sim.run(until=bed.sim.process(member.start()))
        members.append(member)
        print(f"  acquired queue pair qid={member.qid} on nvme{i} "
              f"(host{i})")

    md = StripedBlockDevice(bed.sim, members, stripe_lbas=64)
    print(f"  striped device: {md.name}, "
          f"{md.capacity_lbas * md.lba_bytes / 1e12:.2f} TB logical")

    # Integrity across the stripe boundary.
    payload = bytes((i * 23) % 256 for i in range(128 * 1024))

    def check(sim):
        req = yield md.submit(BlockRequest("write", lba=60, data=payload))
        assert req.ok
        req = yield md.submit(BlockRequest("read", lba=60, nblocks=256))
        assert req.ok and req.result == payload
        return True

    assert bed.sim.run(until=bed.sim.process(check(bed.sim)))
    print("  stripe-spanning write/read verified bit-exact")

    print("\nSequential 128 KiB reads, QD=8:")
    single = run_fio(members[0],
                     FioJob(rw="read", bs=128 * KiB, iodepth=8,
                            total_ios=80, region_lbas=1 << 20))
    striped = run_fio(md, FioJob(rw="read", bs=128 * KiB, iodepth=8,
                                 total_ios=80, region_lbas=1 << 20))
    print(f"  one remote device : "
          f"{single.bandwidth_bytes_per_s / 1e9:.2f} GB/s")
    print(f"  striped x2        : "
          f"{striped.bandwidth_bytes_per_s / 1e9:.2f} GB/s "
          f"({striped.bandwidth_bytes_per_s / single.bandwidth_bytes_per_s:.2f}x)")
    print("\nTwo single-function devices in different hosts, one block "
          "device on a third\nhost — composition the paper calls "
          "'software-enabled MR-IOV'.")


if __name__ == "__main__":
    main()
