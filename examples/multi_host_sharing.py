#!/usr/bin/env python3
"""Multi-host sharing: many hosts operating ONE single-function NVMe.

The paper's point: the P4800X has 32 queue pairs (one reserved for the
admin queues), so up to 31 hosts can each hold a private I/O queue pair
and drive the same controller in parallel — "software-enabled MR-IOV".

This example:
1. builds an 9-host cluster (1 device host + 8 clients);
2. gives each client its own queue pair via the manager RPC;
3. runs simultaneous random-read jobs and shows aggregate scaling;
4. demonstrates shared-disk semantics: each host writes a signed block,
   then every host reads and checks every other host's block.

Run:  python examples/multi_host_sharing.py
"""

from repro import BlockRequest, FioJob, run_fio_many
from repro.scenarios import multihost

N_CLIENTS = 8


def main() -> None:
    print(f"Building a cluster with {N_CLIENTS} client hosts sharing "
          f"one NVMe...")
    scenario = multihost(N_CLIENTS, seed=42, queue_depth=8)
    sim = scenario.sim
    nvme = scenario.testbed.nvme
    print(f"  controller: {nvme.name}, "
          f"{nvme.config.max_queue_pairs} queue pairs "
          f"({nvme.config.max_queue_pairs - 1} usable by clients)")
    for client in scenario.clients:
        print(f"  {client.node.host.name}: qid={client.qid}")

    # --- parallel throughput -------------------------------------------------
    print("\nSimultaneous randread (4 KiB, QD=8) on every host...")
    jobs = [(client, FioJob(name=f"host{i}", rw="randread", bs=4096,
                            iodepth=8, total_ios=400,
                            region_lbas=1 << 20))
            for i, client in enumerate(scenario.clients)]
    results = run_fio_many(jobs)
    total = 0.0
    for result in results:
        stats = result.summary("read")
        print(f"  {result.device_name}: {result.iops / 1e3:7.1f} kIOPS, "
              f"median {stats.median / 1e3:.2f} us")
        total += result.iops
    print(f"  aggregate: {total / 1e3:.1f} kIOPS "
          f"(media ceiling ~650-700 kIOPS)")

    # --- shared-disk visibility --------------------------------------------------
    print("\nCross-host visibility: each host signs a block, "
          "all hosts verify all blocks...")

    def sign_and_verify(sim):
        # each client writes a signature block at its own LBA
        for i, client in enumerate(scenario.clients):
            payload = (f"signed-by-host{i + 1}".encode()
                       .ljust(4096, b"\x00"))
            req = yield client.submit(BlockRequest("write",
                                                   lba=2_000_000 + i * 8,
                                                   data=payload))
            assert req.ok
        # every client reads every signature
        checks = 0
        for client in scenario.clients:
            for i in range(len(scenario.clients)):
                req = yield client.submit(
                    BlockRequest("read", lba=2_000_000 + i * 8,
                                 nblocks=8))
                assert req.ok
                expected = f"signed-by-host{i + 1}".encode()
                assert req.result.startswith(expected), (
                    f"{client.name} read a corrupt block {i}")
                checks += 1
        return checks

    checks = sim.run(until=sim.process(sign_and_verify(sim)))
    print(f"  {checks} cross-host reads verified — every host sees every "
          f"other host's data.")
    print("\nOne single-function NVMe controller, operated in parallel "
          "by all hosts,\nwith no RDMA and no software forwarding in the "
          "data path.")


if __name__ == "__main__":
    main()
