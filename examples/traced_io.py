#!/usr/bin/env python3
"""Trace one remote I/O through every layer and print its timeline.

Shows the event-level anatomy behind the latency numbers: the SQE/
doorbell posted writes crossing the NTB, the controller's local fetch,
the media access, the data and CQE coming back, and the client's poll —
the walkthrough of docs/io_walkthrough.md, generated live.

Run:  python examples/traced_io.py
"""

from repro.analysis import events_from_trace, render_timeline
from repro.driver import BlockRequest, DistributedNvmeClient, NvmeManager
from repro.scenarios.testbed import PcieTestbed
from repro.sim import Tracer


def main() -> None:
    bed = PcieTestbed(n_hosts=2, with_nvme=True, seed=5)
    tracer = Tracer(bed.sim)
    bed.nvme.tracer = tracer
    bed.fabric.tracer = tracer

    manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                          bed.nvme_device_id, bed.config)
    bed.sim.run(until=bed.sim.process(manager.start()))
    client = DistributedNvmeClient(bed.sim, bed.smartio, bed.node(1),
                                   bed.nvme_device_id, bed.config)
    bed.sim.run(until=bed.sim.process(client.start()))

    # Warm one I/O so steady-state, then trace the second one.
    def warm(sim):
        req = yield client.submit(BlockRequest("read", lba=0, nblocks=8))
        assert req.ok

    bed.sim.run(until=bed.sim.process(warm(bed.sim)))
    tracer.clear()

    start = bed.sim.now
    out = {}

    def traced(sim):
        req = yield client.submit(BlockRequest("read", lba=64,
                                               nblocks=8))
        out["latency"] = req.latency_ns
        return req

    bed.sim.run(until=bed.sim.process(traced(bed.sim)))

    print("One remote 4 KiB read through the distributed driver "
          f"(total {out['latency'] / 1000:.2f} us):\n")
    events = events_from_trace(tracer.records, qid=client.qid)
    print(render_timeline(events, origin_ns=start, max_events=30))
    print("\nKey: the controller fetches the SQE from *its own* host's "
          "memory (the\nSQ was placed device-side), so no non-posted "
          "read ever crosses the NTB\non the command path.")


if __name__ == "__main__":
    main()
