#!/usr/bin/env python3
"""Reproduce the paper's headline comparison (Fig. 10) interactively.

Runs 4 KiB QD1 random reads and writes through all four evaluation
scenarios — stock Linux local, NVMe-oF over RDMA, our driver local, our
driver remote — and prints boxplots plus the minimum-latency deltas the
paper quotes (7.7/7.5 us for NVMe-oF, ~1/~2 us for the PCIe driver).

Run:  python examples/latency_comparison.py
(for the full-sample version see benchmarks/bench_fig10_latency.py)
"""

from repro import FioJob, run_fio
from repro.analysis import Fig10Report, render_boxplots
from repro.scenarios import FIG10_SCENARIOS, build_fig10_scenario
from repro.sim import BoxplotStats

IOS = 600


def collect(op: str, seed_base: int) -> dict[str, BoxplotStats]:
    stats = {}
    rw = "randread" if op == "read" else "randwrite"
    for i, name in enumerate(FIG10_SCENARIOS):
        print(f"  {name} {op} ...")
        scenario = build_fig10_scenario(name, seed=seed_base + i)
        result = run_fio(scenario.device,
                         FioJob(rw=rw, bs=4096, iodepth=1,
                                total_ios=IOS, ramp_ios=50))
        rec = (result.read_latencies if op == "read"
               else result.write_latencies)
        stats[name] = BoxplotStats.from_values(rec.values(), name=name)
    return stats


def main() -> None:
    print("Running the four Fig. 9 scenarios (this simulates ~4800 "
          "I/Os)...")
    reads = collect("read", 10)
    writes = collect("write", 20)
    report = Fig10Report(reads, writes)

    print("\nRandom 4 KiB READ, QD=1 (whiskers min..p99, as in Fig. 10):")
    print(render_boxplots([reads[n] for n in FIG10_SCENARIOS]))
    print("\nRandom 4 KiB WRITE, QD=1:")
    print(render_boxplots([writes[n] for n in FIG10_SCENARIOS]))
    print()
    print(report.delta_table())
    print(f"\nshape matches the paper: {report.shape_ok()}")


if __name__ == "__main__":
    main()
