#!/usr/bin/env python3
"""Quickstart: share a remote NVMe device over a simulated PCIe cluster.

Builds the paper's Fig. 9b setup — two hosts joined by Dolphin-style NTB
adapters and a cluster switch, an Optane-class NVMe in host0 — starts
the distributed driver (manager in host0, client in host1), and runs a
4 KiB random-read fio job at queue depth 1.

Run:  python examples/quickstart.py
"""

from repro import FioJob, run_fio
from repro.scenarios import ours_remote
from repro.units import ns_to_us


def main() -> None:
    print("Building the PCIe cluster (2 hosts, NTB switch, 1x NVMe)...")
    scenario = ours_remote(seed=7)
    client = scenario.device
    print(f"  client host : {client.node.host.name}")
    print(f"  device host : "
          f"{scenario.testbed.smartio.device_host_name(client.device_id)}")
    print(f"  I/O queue   : qid={client.qid} "
          f"(SQ in {client._sq_seg.host.name} memory, "
          f"CQ in {client._cq_seg.host.name} memory)")

    print("\nRunning fio: randread, bs=4k, iodepth=1, 2000 I/Os ...")
    result = run_fio(client, FioJob(rw="randread", bs=4096, iodepth=1,
                                    total_ios=2000, ramp_ios=100))

    stats = result.summary("read")
    print(f"\ncompleted {result.ios} I/Os in "
          f"{result.elapsed_ns / 1e6:.2f} ms "
          f"({result.iops / 1000:.1f} kIOPS)")
    print(f"latency: min={ns_to_us(stats.minimum):.2f}us  "
          f"median={stats.median / 1000:.2f}us  "
          f"p99={stats.p99 / 1000:.2f}us")
    print("\nA remote NVMe at local-like latency: the only network cost "
          "is ~1us of\nPCIe switch-chip traversals — no RDMA software "
          "stack in the path.")


if __name__ == "__main__":
    main()
