#!/usr/bin/env python3
"""Queue-placement tuning with SmartIO access-pattern hints (Fig. 8).

The SISCI extension lets a driver *hint* how a segment will be accessed
instead of naming a host; SmartIO then places it to avoid non-posted
reads over the NTB:

  SQ  (CPU writes, device reads)  -> device-side memory
  CQ  (device writes, CPU reads)  -> client-local memory

This example shows the hint mechanics, then measures what happens when
each placement is deliberately flipped.

Run:  python examples/queue_placement_tuning.py
"""

from repro import FioJob, run_fio
from repro.scenarios import ours_remote
from repro.smartio import (AccessHints, BUFFER_HINTS, CQ_HINTS, Placement,
                           SQ_HINTS)


def show_hint(name: str, hints: AccessHints) -> None:
    print(f"  {name:12s} device_reads={hints.device_reads!s:5s} "
          f"device_writes={hints.device_writes!s:5s} "
          f"-> {hints.placement().value}-side")


def measure(label: str, **kwargs) -> None:
    scenario = ours_remote(seed=123, **kwargs)
    client = scenario.device
    result = run_fio(client, FioJob(rw="randread", bs=4096, iodepth=1,
                                    total_ios=700, ramp_ios=50))
    stats = result.summary("read")
    print(f"  {label:42s} SQ@{client._sq_seg.host.name}  "
          f"CQ@{client._cq_seg.host.name}  "
          f"median={stats.median / 1e3:6.2f} us")


def main() -> None:
    print("Access-pattern hints and where SmartIO places the segment:")
    show_hint("SQ_HINTS", SQ_HINTS)
    show_hint("CQ_HINTS", CQ_HINTS)
    show_hint("BUFFER_HINTS", BUFFER_HINTS)

    print("\nRemote-client 4 KiB randread QD=1 under each placement:")
    measure("paper default (SQ device, CQ client)")
    measure("SQ flipped to client side", sq_placement="client")
    measure("CQ flipped to device side", cq_placement="device")

    print("\nWhy: non-posted reads pay a round trip per switch chip. "
          "Flipping the SQ\nmakes the controller fetch every command "
          "across the NTB; flipping the CQ\nmakes the CPU poll across "
          "it — both put round trips on the critical path.")


if __name__ == "__main__":
    main()
