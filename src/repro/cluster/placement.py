"""Manager-side placement: choose members for new volumes.

The cluster keeps one :class:`NvmeManager` per shared controller; the
:class:`PlacementScheduler` sits beside them and answers one question —
*which devices should back the next volume?* — by picking the
least-loaded backends, where load is the fraction of a device's
capacity already promised to volumes.  Ties break on device id so the
answer is a pure function of the registration history (determinism
discipline: no RNG, no wallclock).

The scheduler is deliberately interface-shaped like a CXL-pool or
disaggregated-memory allocator would be (see PAPERS.md, "My CXL Pool
Obviates Your PCIe Switch"): backends register with a capacity, volumes
reserve slices, and nothing else about the fabric leaks in, so an
alternative placement policy slots in behind the same three calls.
"""

from __future__ import annotations

import dataclasses
import typing as t

from .layout import LayoutError, VolumeLayout


class PlacementError(Exception):
    pass


@dataclasses.dataclass
class Backend:
    """One shared device as the scheduler sees it."""

    device_id: int
    capacity_lbas: int
    allocated_lbas: int = 0
    volumes: int = 0

    @property
    def free_lbas(self) -> int:
        return self.capacity_lbas - self.allocated_lbas

    @property
    def load(self) -> float:
        return self.allocated_lbas / self.capacity_lbas


class PlacementScheduler:
    """Least-loaded placement over registered backends."""

    def __init__(self) -> None:
        self._backends: dict[int, Backend] = {}
        self.placements = 0
        self.rejections = 0

    def register(self, device_id: int, capacity_lbas: int) -> Backend:
        if device_id in self._backends:
            raise PlacementError(f"device {device_id} already registered")
        if capacity_lbas < 1:
            raise PlacementError("backend needs capacity >= 1 LBA")
        backend = Backend(device_id=device_id,
                          capacity_lbas=capacity_lbas)
        self._backends[device_id] = backend
        return backend

    @property
    def backends(self) -> tuple[Backend, ...]:
        return tuple(self._backends[d] for d in sorted(self._backends))

    def place(self, width: int, member_lbas: int) -> tuple[int, ...]:
        """Pick ``width`` devices for a volume needing ``member_lbas``
        on each member.  Least-loaded first; device-id tie-break."""
        if width < 1:
            raise PlacementError("width must be >= 1")
        fits = [b for b in self.backends if b.free_lbas >= member_lbas]
        if len(fits) < width:
            self.rejections += 1
            raise PlacementError(
                f"need {width} devices with {member_lbas} free LBAs, "
                f"only {len(fits)} of {len(self._backends)} qualify")
        fits.sort(key=lambda b: (b.load, b.device_id))
        chosen = fits[:width]
        for backend in chosen:
            backend.allocated_lbas += member_lbas
            backend.volumes += 1
        self.placements += 1
        return tuple(b.device_id for b in chosen)

    def release(self, layout: VolumeLayout) -> None:
        """Return a volume's reservations (volume deletion)."""
        for device_id in layout.devices:
            backend = self._backends.get(device_id)
            if backend is None:
                raise PlacementError(f"unknown device {device_id}")
            backend.allocated_lbas -= layout.member_lbas
            backend.volumes -= 1
            if backend.allocated_lbas < 0 or backend.volumes < 0:
                raise PlacementError(
                    f"device {device_id} released below zero")


class ClusterCoordinator:
    """Registry of shared controllers + volume creation.

    One coordinator per cluster.  ``add_backend`` is called once per
    (manager, controller) pair as the scenario builder brings devices
    up; ``create_volume`` runs the scheduler and returns the immutable
    :class:`VolumeLayout` a :class:`~repro.cluster.volume.ClusterVolume`
    is built from.
    """

    def __init__(self) -> None:
        self.scheduler = PlacementScheduler()
        self._managers: dict[int, t.Any] = {}
        self._layouts: dict[str, VolumeLayout] = {}

    def add_backend(self, device_id: int, manager: t.Any,
                    capacity_lbas: int | None = None) -> None:
        """Register a started manager; capacity defaults to what its
        IDENTIFY reported (``manager.capacity_lbas``)."""
        if capacity_lbas is None:
            capacity_lbas = manager.capacity_lbas
        self.scheduler.register(device_id, capacity_lbas)
        self._managers[device_id] = manager

    @property
    def device_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._managers))

    def manager(self, device_id: int) -> t.Any:
        return self._managers[device_id]

    def layouts(self) -> tuple[VolumeLayout, ...]:
        return tuple(self._layouts[n] for n in sorted(self._layouts))

    def create_volume(self, name: str, capacity_lbas: int,
                      width: int = 1, replicas: int = 1,
                      stripe_lbas: int = 256) -> VolumeLayout:
        if name in self._layouts:
            raise PlacementError(f"volume {name!r} already exists")
        # Probe geometry on placeholder members to learn the per-member
        # footprint, then ask the scheduler for real devices.
        try:
            probe = VolumeLayout(name=name,
                                 devices=tuple(range(width)),
                                 stripe_lbas=stripe_lbas,
                                 capacity_lbas=capacity_lbas,
                                 replicas=replicas)
        except LayoutError as exc:
            raise PlacementError(str(exc)) from exc
        devices = self.scheduler.place(width, probe.member_lbas)
        layout = dataclasses.replace(probe, devices=devices)
        self._layouts[name] = layout
        return layout

    def delete_volume(self, name: str) -> None:
        layout = self._layouts.pop(name, None)
        if layout is None:
            raise PlacementError(f"unknown volume {name!r}")
        self.scheduler.release(layout)
