"""Cluster block layer: N shared controllers behind one namespace.

The paper shares *one* single-function NVMe device among many hosts;
this package scales the other axis — many such devices composed into a
cluster block store.  Three pieces:

* :mod:`~repro.cluster.layout` — pure address math: chunked striping
  with optional replicas (``VolumeLayout``);
* :mod:`~repro.cluster.placement` — manager-side scheduler choosing
  least-loaded devices for new volumes (``PlacementScheduler``,
  ``ClusterCoordinator``);
* :mod:`~repro.cluster.volume` — the client-side ANA-style multipath
  block device (``ClusterVolume``) that retries reads down surviving
  replicas and fans writes out to all of them.

See docs/cluster.md for the failover semantics contract.
"""

from .layout import Extent, LayoutError, VolumeLayout
from .placement import (Backend, ClusterCoordinator, PlacementError,
                        PlacementScheduler)
from .volume import (ANA_INACCESSIBLE, ANA_OPTIMIZED,
                     PATH_FAILING_STATUSES, STATUS_NO_PATH, ClusterVolume)

__all__ = [
    "Extent", "LayoutError", "VolumeLayout",
    "Backend", "ClusterCoordinator", "PlacementError",
    "PlacementScheduler",
    "ANA_INACCESSIBLE", "ANA_OPTIMIZED", "PATH_FAILING_STATUSES",
    "STATUS_NO_PATH", "ClusterVolume",
]
