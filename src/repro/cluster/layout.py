"""Volume layout: chunked striping with optional replicas.

A :class:`VolumeLayout` is the pure address math of the cluster block
store — it never touches a device.  A volume of ``capacity_lbas``
logical blocks is cut into chunks of ``stripe_lbas`` and laid out
RAID-0-style across ``width`` member devices (the address style of
``driver/stripe.py``); with ``replicas = R > 1`` every chunk is stored
R times, on R *distinct* members, which is what gives the ANA-style
multipath view its surviving paths.

Placement of chunk ``c`` (``row = c // W``, primary member
``d0 = c % W``):

* replica ``r`` lives on member ``(d0 + r) % W``;
* at member-local LBA ``(row * R + r) * stripe_lbas + within``.

Member-local rows interleave the R replica sequences: row ``k`` of a
member holds replica ``k % R`` of some chunk.  The map
``(member, local LBA) <-> (logical LBA, replica)`` is therefore a
bijection over the member space actually used — no two chunk copies
overlap and no member LBA below the high-water row is wasted — which
``tests/test_cluster_property.py`` asserts over randomized geometries.
With ``R == 1`` this degenerates to exactly the arithmetic of
:class:`~repro.driver.stripe.StripedBlockDevice`.
"""

from __future__ import annotations

import dataclasses
import typing as t


class LayoutError(Exception):
    pass


@dataclasses.dataclass(frozen=True)
class Extent:
    """One chunk-aligned piece of a logical request.

    ``targets[r]`` is the ``(member_index, member_lba)`` address of
    replica ``r``; reads use the first healthy target, writes go to
    every healthy target.  Offsets are in blocks — the layout does not
    know the volume's block size.
    """

    offset_blocks: int         # offset of this piece in the request
    nblocks: int
    targets: tuple[tuple[int, int], ...]


@dataclasses.dataclass(frozen=True)
class VolumeLayout:
    """Immutable geometry of one cluster volume."""

    name: str
    devices: tuple[int, ...]   # SmartIO device ids, one per member slot
    stripe_lbas: int
    capacity_lbas: int         # logical (usable) capacity
    replicas: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "devices", tuple(self.devices))
        if not self.devices:
            raise LayoutError("a volume needs at least one member")
        if len(set(self.devices)) != len(self.devices):
            raise LayoutError("volume members must be distinct devices")
        if self.stripe_lbas < 1:
            raise LayoutError("stripe size must be >= 1 LBA")
        if self.capacity_lbas < 1:
            raise LayoutError("capacity must be >= 1 LBA")
        if not 1 <= self.replicas <= len(self.devices):
            raise LayoutError(
                f"{self.replicas} replicas need at least that many "
                f"members (have {len(self.devices)})")

    # -- geometry ---------------------------------------------------------

    @property
    def width(self) -> int:
        return len(self.devices)

    @property
    def nchunks(self) -> int:
        return -(-self.capacity_lbas // self.stripe_lbas)

    @property
    def rows(self) -> int:
        """Stripe rows (each row holds one chunk per member)."""
        return -(-self.nchunks // self.width)

    @property
    def member_lbas(self) -> int:
        """Member-local LBAs a device must provide for this volume."""
        return self.rows * self.replicas * self.stripe_lbas

    @property
    def physical_lbas(self) -> int:
        """Total member LBAs consumed across all members."""
        return self.member_lbas * self.width

    # -- forward map ------------------------------------------------------

    def locate(self, lba: int, replica: int = 0) -> tuple[int, int]:
        """Logical LBA -> ``(member_index, member_lba)`` of one replica."""
        if not 0 <= lba < self.capacity_lbas:
            raise LayoutError(f"LBA {lba} outside volume "
                              f"[0, {self.capacity_lbas})")
        if not 0 <= replica < self.replicas:
            raise LayoutError(f"replica {replica} out of range")
        chunk, within = divmod(lba, self.stripe_lbas)
        row, d0 = divmod(chunk, self.width)
        member = (d0 + replica) % self.width
        member_lba = ((row * self.replicas + replica) * self.stripe_lbas
                      + within)
        return member, member_lba

    def inverse(self, member: int, member_lba: int) -> tuple[int, int]:
        """``(member_index, member_lba)`` -> ``(logical LBA, replica)``.

        Raises :class:`LayoutError` for addresses outside the space the
        volume actually occupies (past the last row, or in the unused
        tail of a partial final row).
        """
        if not 0 <= member < self.width:
            raise LayoutError(f"member {member} out of range")
        if not 0 <= member_lba < self.member_lbas:
            raise LayoutError(f"member LBA {member_lba} outside the "
                              f"volume's {self.member_lbas}-LBA footprint")
        k, within = divmod(member_lba, self.stripe_lbas)
        row, replica = divmod(k, self.replicas)
        d0 = (member - replica) % self.width
        chunk = row * self.width + d0
        lba = chunk * self.stripe_lbas + within
        if lba >= self.capacity_lbas:
            raise LayoutError(
                f"member {member} LBA {member_lba} is in the unused "
                f"tail of the final stripe row")
        return lba, replica

    # -- request splitting ------------------------------------------------

    def split(self, lba: int, nblocks: int) -> list[Extent]:
        """Cut ``[lba, lba + nblocks)`` at chunk boundaries.

        Every extent lies inside one chunk, so each of its replica
        targets is a single contiguous member-local range.
        """
        if nblocks < 1:
            raise LayoutError("split needs nblocks >= 1")
        if lba < 0 or lba + nblocks > self.capacity_lbas:
            raise LayoutError(
                f"extent [{lba}, {lba + nblocks}) outside volume "
                f"[0, {self.capacity_lbas})")
        out: list[Extent] = []
        offset = 0
        while nblocks > 0:
            within = lba % self.stripe_lbas
            run = min(nblocks, self.stripe_lbas - within)
            targets = tuple(self.locate(lba, replica=r)
                            for r in range(self.replicas))
            out.append(Extent(offset_blocks=offset, nblocks=run,
                              targets=targets))
            lba += run
            nblocks -= run
            offset += run
        return out

    def members_of(self, lba: int, nblocks: int) -> t.Iterator[int]:
        """Distinct member indices an extent touches (any replica)."""
        seen: set[int] = set()
        for extent in self.split(lba, nblocks):
            for member, _mlba in extent.targets:
                if member not in seen:
                    seen.add(member)
                    yield member
