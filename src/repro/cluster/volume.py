"""ANA-style multipath volume over striped/replicated members.

A :class:`ClusterVolume` is the client-side face of the cluster block
layer: a :class:`~repro.driver.blockdev.BlockDevice` whose members are
per-device :class:`~repro.driver.client.DistributedNvmeClient` paths,
addressed through a :class:`~repro.cluster.layout.VolumeLayout`.

Path-state semantics mirror NVMe ANA (Asymmetric Namespace Access):

* each member path is ``optimized`` (serving I/O) or ``inaccessible``
  (a host-side transport verdict took it down);
* only *host-side* vendor statuses (SCT 7: timeout, shutdown, crash)
  demote a path — media and protocol errors (e.g. an out-of-range read
  the backend rejects) are device answers delivered over a healthy
  path and pass through unchanged;
* reads retry down the replica preference order and only surface
  :data:`STATUS_NO_PATH` once every replica of the extent is gone;
* writes fan out to all live replicas in parallel and succeed while at
  least one replica lands (``degraded_writes`` counts the narrower
  ones);
* there is no resilvering: a demoted path stays down for the life of
  the run, and chunks whose every replica died stay unreachable.  The
  repair story is out of scope here (docs/cluster.md discusses it).
"""

from __future__ import annotations

import typing as t

from ..driver.blockdev import BlockDevice, BlockError, BlockRequest
from ..driver.client import HOST_PATH_STATUSES
from ..sim import NULL_TRACER, Simulator
from .layout import Extent, VolumeLayout

#: no optimized path holds a live replica of the addressed chunk
STATUS_NO_PATH = 0x7_10

#: host-side transport verdicts that demote a path (everything else is
#: an answer from the device, not evidence the path died)
PATH_FAILING_STATUSES = HOST_PATH_STATUSES

ANA_OPTIMIZED = "optimized"
ANA_INACCESSIBLE = "inaccessible"


class ClusterVolume(BlockDevice):
    """Multipath striped volume over per-device client paths."""

    def __init__(self, sim: Simulator, layout: VolumeLayout,
                 paths: t.Sequence[BlockDevice],
                 queue_depth: int = 64, name: str | None = None,
                 tracer=NULL_TRACER) -> None:
        if len(paths) != layout.width:
            raise BlockError(
                f"layout wants {layout.width} paths, got {len(paths)}")
        lba = paths[0].lba_bytes
        if any(p.lba_bytes != lba for p in paths):
            raise BlockError("paths disagree on LBA size")
        if any(p.sim is not sim for p in paths):
            raise BlockError("paths must share a simulator")
        for path in paths:
            if path.capacity_lbas < layout.member_lbas:
                raise BlockError(
                    f"path {path.name} holds {path.capacity_lbas} LBAs, "
                    f"volume needs {layout.member_lbas} per member")
        self.layout = layout
        self.paths = list(paths)
        self.path_states = [ANA_OPTIMIZED] * layout.width
        self.tracer = tracer
        # Cluster-layer counters (scraped by telemetry).
        self.failovers = 0          # reads redirected to another replica
        self.path_errors = 0        # host-status failures observed
        self.degraded_writes = 0    # writes that lost >= 1 replica
        super().__init__(sim, name or layout.name, lba_bytes=lba,
                         capacity_lbas=layout.capacity_lbas,
                         queue_depth=queue_depth)
        # All member paths act for the one host that owns the volume;
        # volume-level histogram records (including NO_PATH failures
        # that never reach a member path) belong to that tenant.
        self.tenant = paths[0].tenant

    # -- path state -------------------------------------------------------

    @property
    def live_paths(self) -> int:
        return sum(1 for s in self.path_states if s == ANA_OPTIMIZED)

    def path_is_live(self, member: int) -> bool:
        return self.path_states[member] == ANA_OPTIMIZED

    def path_health(self) -> tuple[int, ...]:
        """Per-member 1/0 health vector, member order (for the
        time-series sampler's ``cluster_path_health`` series)."""
        return tuple(1 if s == ANA_OPTIMIZED else 0
                     for s in self.path_states)

    def _demote(self, member: int, status: int) -> None:
        self.path_errors += 1
        if self.path_states[member] == ANA_INACCESSIBLE:
            return
        self.path_states[member] = ANA_INACCESSIBLE
        self.tracer.emit("cluster", "path-down", volume=self.name,
                         member=member, path=self.paths[member].name,
                         status=status)

    # -- data path --------------------------------------------------------

    def _driver_submit(self, request: BlockRequest) -> t.Generator:
        if request.op == "flush":
            yield from self._submit_flush(request)
            return
        extents = self.layout.split(request.lba, request.nblocks)
        procs = [self.sim.process(self._run_extent(request, e))
                 for e in extents]
        done = yield self.sim.all_of(procs)
        results = list(done.values())   # (status, data) in extent order
        request.status = max(status for status, _data in results)
        if request.op == "read" and request.ok:
            out = bytearray(request.nblocks * self.lba_bytes)
            for extent, (_status, data) in zip(extents, results):
                assert data is not None
                start = extent.offset_blocks * self.lba_bytes
                out[start:start + len(data)] = data
            request.result = bytes(out)

    def _run_extent(self, request: BlockRequest,
                    extent: Extent) -> t.Generator:
        """Extent process body; returns ``(status, read_data_or_None)``."""
        if request.op in BlockRequest.MUTATING_OPS:
            status = yield from self._write_extent(request, extent)
            return status, None
        return (yield from self._read_extent(request, extent))

    def _sub(self, request: BlockRequest, extent: Extent,
             member_lba: int) -> BlockRequest:
        if request.op in BlockRequest.DATA_OUT_OPS:
            assert request.data is not None
            start = extent.offset_blocks * self.lba_bytes
            piece = request.data[start:start
                                 + extent.nblocks * self.lba_bytes]
            return BlockRequest(request.op, lba=member_lba, data=piece)
        return BlockRequest(request.op, lba=member_lba,
                            nblocks=extent.nblocks)

    def _read_extent(self, request: BlockRequest,
                     extent: Extent) -> t.Generator:
        """Try replicas in preference order; fail over on host status."""
        tried_any = False
        for member, member_lba in extent.targets:
            if not self.path_is_live(member):
                continue
            if tried_any:
                self.failovers += 1
                self.tracer.emit("cluster", "failover", volume=self.name,
                                 lba=request.lba, member=member)
            tried_any = True
            sub = self._sub(request, extent, member_lba)
            yield self.paths[member].submit(sub)
            if sub.status in PATH_FAILING_STATUSES:
                self._demote(member, sub.status)
                continue            # next replica, if any
            if request.op == "read" and sub.ok:
                return sub.status, sub.result or b""
            return sub.status, None   # device's answer, pass through
        return STATUS_NO_PATH, None

    def _write_extent(self, request: BlockRequest,
                      extent: Extent) -> t.Generator:
        """Fan out to all live replicas; one survivor is success."""
        live = [(m, mlba) for m, mlba in extent.targets
                if self.path_is_live(m)]
        if not live:
            return STATUS_NO_PATH
        subs = [(m, self._sub(request, extent, mlba)) for m, mlba in live]
        yield self.sim.all_of([self.paths[m].submit(s) for m, s in subs])
        ok = 0
        worst = 0
        for member, sub in subs:
            if sub.status in PATH_FAILING_STATUSES:
                self._demote(member, sub.status)
            elif sub.ok:
                ok += 1
            else:
                worst = max(worst, sub.status)
        if ok == 0:
            # All replicas refused or died: surface the device's error
            # if any path answered, else the transport verdict.
            return worst or STATUS_NO_PATH
        if ok < len(extent.targets):
            self.degraded_writes += 1
        return 0

    def _submit_flush(self, request: BlockRequest) -> t.Generator:
        subs = [(m, BlockRequest("flush"))
                for m in range(self.layout.width) if self.path_is_live(m)]
        if not subs:
            request.status = STATUS_NO_PATH
            return
        yield self.sim.all_of([self.paths[m].submit(s) for m, s in subs])
        answered = False
        worst = 0
        for member, sub in subs:
            if sub.status in PATH_FAILING_STATUSES:
                self._demote(member, sub.status)
            else:
                answered = True
                worst = max(worst, sub.status)
        request.status = worst if answered else STATUS_NO_PATH
