"""``# staticcheck: ignore[rule]`` suppression comments.

A marker on the offending line silences the named rule(s) for that
line::

    x = conn.read(0, 16)  # staticcheck: ignore[no-nonposted-hotpath] why

A marker on a *comment-only* line applies to the next line, for
statements too long to carry a trailing comment.  Several rules may be
listed, comma-separated.  Unknown rule names are reported by the runner
so typos cannot silently disable nothing.
"""

from __future__ import annotations

import re

_MARKER = re.compile(r"#\s*staticcheck:\s*ignore\[([^\]]*)\]")
_COMMENT_ONLY = re.compile(r"^\s*#")


class Suppressions:
    """Per-line map of suppressed rule names for one file."""

    def __init__(self, lines: list[str]) -> None:
        self._by_line: dict[int, set[str]] = {}
        self.mentioned: set[str] = set()
        for i, text in enumerate(lines, start=1):
            # Collect *every* pragma on the line — a second
            # ``ignore[...]`` after the first must not be dropped.
            rules: set[str] = set()
            for match in _MARKER.finditer(text):
                rules |= {name.strip()
                          for name in match.group(1).split(",")
                          if name.strip()}
            if not rules:
                continue
            self.mentioned |= rules
            self._by_line.setdefault(i, set()).update(rules)
            if _COMMENT_ONLY.match(text):
                # Standalone comment: also covers the following line.
                self._by_line.setdefault(i + 1, set()).update(rules)

    def matches(self, rule: str, line: int) -> bool:
        return rule in self._by_line.get(line, ())
