"""Entry point: ``python -m repro.staticcheck <paths>``."""

import sys

from .runner import main

if __name__ == "__main__":
    sys.exit(main())
