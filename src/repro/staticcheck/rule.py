"""Rule plugin base class and the per-file analysis context."""

from __future__ import annotations

import ast
import dataclasses
import typing as t

from .findings import Finding


@dataclasses.dataclass
class FileContext:
    """Everything a rule may look at for one file.

    The AST is parsed exactly once by the runner and shared by every
    rule; rules must treat it as read-only.
    """

    path: str               #: display path, posix separators
    module_rel: str         #: path from the last ``repro`` component down
    tree: ast.Module
    source: str
    lines: list[str]        #: source split into lines (0-based access)

    def line_text(self, lineno: int) -> str:
        """Source text of a 1-based line number ('' when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for rule plugins.

    Subclasses set :attr:`name` (the id used in ``ignore[...]`` and
    ``--select``) and :attr:`summary`, then implement :meth:`check`.
    Scoping decisions (which files the rule cares about) belong in
    :meth:`applies`, so the runner can skip whole files cheaply.
    """

    name: str = ""
    summary: str = ""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> t.Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover

    # -- helpers -------------------------------------------------------------

    def finding(self, ctx: FileContext, node: ast.AST,
                message: str) -> Finding:
        """Build a finding anchored at an AST node."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=self.name, path=ctx.path, line=line, col=col,
                       message=message, source_line=ctx.line_text(line))
