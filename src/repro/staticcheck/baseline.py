"""Baseline file: a set of accepted finding fingerprints.

The baseline exists so the checker can be introduced into a tree with
pre-existing findings and still fail on *new* ones.  Policy for this
repo (see docs/static_analysis.md): prefer an explicit, justified
``# staticcheck: ignore[rule]`` at the site; use the baseline only for
bulk imports of third-party code.
"""

from __future__ import annotations

import json
import pathlib
import typing as t

from .findings import Finding

VERSION = 1


def load(path: str | pathlib.Path) -> set[str]:
    """Fingerprints accepted by the baseline at ``path``."""
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("version") != VERSION:
        raise ValueError(f"unsupported baseline version in {path}")
    return set(data.get("fingerprints", {}))


def write(path: str | pathlib.Path, findings: t.Iterable[Finding]) -> int:
    """Write a baseline accepting every given finding; returns the count."""
    fingerprints = {
        f.fingerprint(): f"{f.path}:{f.line} [{f.rule}] {f.message}"
        for f in findings
    }
    blob = json.dumps({"version": VERSION, "fingerprints": fingerprints},
                      indent=2, sort_keys=True)
    pathlib.Path(path).write_text(blob + "\n")
    return len(fingerprints)
