"""File discovery, single-parse orchestration, output and exit codes."""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import sys
import typing as t

from . import baseline as baseline_mod
from .findings import Finding
from .registry import all_rules, get_rule
from .rule import FileContext, Rule
from .suppress import Suppressions

#: exit codes
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def iter_python_files(paths: t.Iterable[str | pathlib.Path]
                      ) -> t.Iterator[pathlib.Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            candidates: t.Iterable[pathlib.Path] = sorted(
                p for p in path.rglob("*.py")
                if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            candidates = [path]
        elif not path.exists():
            raise FileNotFoundError(str(path))
        else:
            candidates = []
        for cand in candidates:
            resolved = cand.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield cand


def module_rel(path: pathlib.Path) -> str:
    """Path from the last ``repro`` component down, posix-separated.

    Rules scope themselves with this (e.g. ``repro/driver/...``), which
    works identically for the real tree under ``src/`` and for test
    fixture trees materialised under a tmp directory.
    """
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return parts[-1]


def make_context(path: pathlib.Path, source: str) -> FileContext:
    tree = ast.parse(source, filename=str(path))
    return FileContext(path=path.as_posix(), module_rel=module_rel(path),
                       tree=tree, source=source,
                       lines=source.splitlines())


def check_file(path: pathlib.Path, rules: t.Sequence[Rule]
               ) -> list[Finding]:
    """Parse ``path`` once and run every applicable rule over the AST."""
    source = path.read_text(encoding="utf-8")
    try:
        ctx = make_context(path, source)
    except SyntaxError as exc:
        line = exc.lineno or 1
        return [Finding(rule="parse-error", path=path.as_posix(),
                        line=line, col=(exc.offset or 1) - 1,
                        message=f"cannot parse: {exc.msg}")]
    suppressions = Suppressions(ctx.lines)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if not suppressions.matches(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def _check_one(path_str: str,
               rule_names: t.Sequence[str] | None) -> list[Finding]:
    """Process-pool worker: rules are re-resolved by name in the child
    (rule instances need not pickle; findings do)."""
    rules = ([get_rule(name) for name in rule_names]
             if rule_names is not None else all_rules())
    return check_file(pathlib.Path(path_str), rules)


def run(paths: t.Sequence[str | pathlib.Path],
        select: t.Sequence[str] | None = None,
        baseline: str | pathlib.Path | None = None,
        jobs: int = 0,
        ) -> tuple[list[Finding], int]:
    """Check ``paths``; returns ``(findings, files_checked)``.

    ``select`` limits the run to the named rules; ``baseline`` filters
    out findings whose fingerprint the baseline file accepts.  With
    ``jobs`` > 1 files are scanned by a process pool; results keep the
    serial (sorted-file) order, so output is identical either way.
    """
    rules = ([get_rule(name) for name in select] if select
             else all_rules())
    accepted = baseline_mod.load(baseline) if baseline else set()
    files = list(iter_python_files(paths))
    if jobs and jobs > 1 and len(files) > 1:
        import concurrent.futures
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs) as pool:
            # map() yields in submission order — determinism is free.
            batches = list(pool.map(
                _check_one, [path.as_posix() for path in files],
                [tuple(select) if select else None] * len(files),
                chunksize=max(1, len(files) // (4 * jobs))))
    else:
        batches = [check_file(path, rules) for path in files]
    findings = [finding for batch in batches for finding in batch
                if finding.fingerprint() not in accepted]
    return findings, len(files)


def _list_rules() -> str:
    rows = [f"  {rule.name:<28} {rule.summary}" for rule in all_rules()]
    return "\n".join(["available rules:"] + rows)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.staticcheck",
        description="AST-based invariant checker (determinism, "
                    "posted-write discipline, unit safety)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to check "
                             "(default: src)")
    parser.add_argument("--select", metavar="RULE[,RULE...]",
                        help="run only the named rules")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt")
    parser.add_argument("--baseline", metavar="FILE",
                        help="accept findings recorded in this baseline")
    parser.add_argument("--update-baseline", metavar="FILE",
                        help="write current findings to FILE and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="scan files with N worker processes "
                             "(0/1 = serial; order-identical output)")
    parser.add_argument("--stats", action="store_true",
                        help="print findings-per-rule, file count and "
                             "scan time")
    return parser


def _stats_summary(findings: t.Sequence[Finding], nfiles: int,
                   elapsed_s: float) -> dict[str, t.Any]:
    per_rule: dict[str, int] = {}
    for finding in findings:
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
    return {"files_scanned": nfiles,
            "scan_time_ms": round(elapsed_s * 1000, 1),
            "findings_per_rule": dict(sorted(per_rule.items()))}


def _format_stats(stats: dict[str, t.Any]) -> str:
    lines = [f"stats: {stats['files_scanned']} file(s) in "
             f"{stats['scan_time_ms']} ms"]
    per_rule = stats["findings_per_rule"]
    if per_rule:
        width = max(len(name) for name in per_rule)
        lines += [f"  {name:<{width}} {count}"
                  for name, count in per_rule.items()]
    else:
        lines.append("  no findings")
    return "\n".join(lines)


def main(argv: t.Sequence[str] | None = None,
         out: t.TextIO | None = None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules(), file=out)
        return EXIT_CLEAN
    select = (args.select.split(",") if args.select else None)
    # Dev tooling, not simulation: scan timing cannot perturb a run.
    import time
    start = time.perf_counter()  # staticcheck: ignore[no-wallclock] tool timing, not sim state
    try:
        findings, nfiles = run(args.paths, select=select,
                               baseline=args.baseline, jobs=args.jobs)
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=out)
        return EXIT_ERROR
    elapsed = time.perf_counter() - start  # staticcheck: ignore[no-wallclock] tool timing, not sim state
    stats = _stats_summary(findings, nfiles, elapsed)
    if args.update_baseline:
        count = baseline_mod.write(args.update_baseline, findings)
        print(f"wrote {count} fingerprint(s) to {args.update_baseline}",
              file=out)
        return EXIT_CLEAN
    if args.fmt == "json":
        payload = {"files_checked": nfiles,
                   "findings": [f.to_json() for f in findings]}
        if args.stats:
            payload["stats"] = stats
        print(json.dumps(payload, indent=2), file=out)
    else:
        for finding in findings:
            print(finding.format(), file=out)
        status = ("clean" if not findings
                  else f"{len(findings)} finding(s)")
        print(f"staticcheck: {nfiles} file(s), {status}", file=out)
        if args.stats:
            print(_format_stats(stats), file=out)
    return EXIT_FINDINGS if findings else EXIT_CLEAN
