"""Plugin registry.

Rule modules call :func:`register` at import time; the runner asks for
:func:`all_rules`, which imports the bundled ``rules`` package on first
use so that merely importing :mod:`repro.staticcheck` stays cheap.
"""

from __future__ import annotations

import importlib

from .rule import Rule

_RULES: dict[str, type[Rule]] = {}
_BUILTINS_LOADED = False


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (name must be unique)."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    if cls.name in _RULES and _RULES[cls.name] is not cls:
        raise ValueError(f"duplicate rule name: {cls.name}")
    _RULES[cls.name] = cls
    return cls


def _load_builtins() -> None:
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        importlib.import_module(f"{__package__}.rules")
        _BUILTINS_LOADED = True


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by name."""
    _load_builtins()
    return [cls() for _, cls in sorted(_RULES.items())]


def get_rule(name: str) -> Rule:
    _load_builtins()
    try:
        return _RULES[name]()
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise KeyError(f"unknown rule {name!r} (known: {known})") from None
