"""The :class:`Finding` record produced by every rule."""

from __future__ import annotations

import dataclasses
import hashlib


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str          #: display path (posix separators)
    line: int          #: 1-based line number
    col: int           #: 0-based column offset
    message: str
    source_line: str = ""   #: stripped text of the offending line

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] " \
               f"{self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule, "path": self.path, "line": self.line,
            "col": self.col, "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def fingerprint(self) -> str:
        """Location-insensitive identity used by the baseline file.

        Hashes the rule, file and *stripped source text* rather than the
        line number, so unrelated edits above a baselined finding do not
        invalidate the baseline entry.
        """
        blob = "\x1f".join((self.rule, self.path, self.source_line.strip()))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
