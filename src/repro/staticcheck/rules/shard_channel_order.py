"""Rule ``shard-channel-order``: merge functions iterate in total order.

The sharded event loop (``repro.sim.shard``) promises bit-identical
results regardless of shard count.  That promise survives exactly as
long as every function that combines per-shard state visits it in a
*canonical* order: per-``(src, dst)`` channel sequence numbers for
envelopes, sorted keys for dict unions, tuple order for domain lists.
A function that opts into that contract carries a ``cross-shard
merge`` marker (in a comment or its docstring), and inside it two
iteration patterns are flagged:

* **set iteration** — ``for x in some_set``, set literals, set
  comprehensions, ``set()`` / ``frozenset()`` calls and set-algebra
  expressions (``a | b``).  Python sets hash-order their elements, so
  two replicas that inserted in different orders iterate differently
  and the merge result depends on which shard the data came from.
* **dict-view iteration** — ``.keys()`` / ``.values()`` / ``.items()``
  (and bare-dict ``for k in d``) not wrapped in ``sorted(...)``.
  Insertion order *is* deterministic within one process, but a merge
  function consumes dicts populated by *different* shards in
  shard-local order; only an explicit sort imposes the same total
  order everywhere.

The sanctioned fix is ``sorted(...)`` (all merge keys in this repo —
domain names, metric family names, label tuples — are orderable).  A
genuinely order-free loop (e.g. building a lookup table) may carry
``# staticcheck: ignore[shard-channel-order]`` with a justification,
same as every other rule's escape hatch.
"""

from __future__ import annotations

import ast
import re
import typing as t

from ..astutil import dotted_name, local_walk, marked_functions
from ..findings import Finding
from ..registry import register
from ..rule import FileContext, Rule

_MARKER = re.compile(r"cross-shard merge")

#: callables whose result is a hash-ordered set
_SET_CALLS = ("set", "frozenset")
#: dict-view accessors whose order is shard-local insertion order
_VIEW_METHODS = ("keys", "values", "items")
#: callables that impose (or preserve) an explicit total order
_ORDERING_CALLS = ("sorted", "list", "tuple", "enumerate", "zip",
                   "reversed", "range", "min", "max", "sum")


def _set_typed_names(fn: ast.FunctionDef | ast.AsyncFunctionDef
                     ) -> set[str]:
    """Local names bound to an obviously set-valued expression."""
    names: set[str] = set()
    for node in local_walk(fn):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = node.value
            if value is None or not _is_set_expr(value, names):
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_set_expr(node: ast.AST, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in _SET_CALLS
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    return False


@register
class ShardChannelOrder(Rule):
    name = "shard-channel-order"
    summary = ("no unordered set/dict iteration in cross-shard merge "
               "functions")

    def applies(self, ctx: FileContext) -> bool:
        # The checker's own sources talk *about* the marker in prose;
        # do not let the docstrings mark the rule machinery itself.
        return not ctx.module_rel.startswith("repro/staticcheck/")

    def check(self, ctx: FileContext) -> t.Iterator[Finding]:
        for fn in marked_functions(ctx.tree, ctx.lines, _MARKER):
            set_names = _set_typed_names(fn)
            for node in local_walk(fn):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    yield from self._check_iterable(
                        ctx, fn, node.iter, set_names)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    for gen in node.generators:
                        yield from self._check_iterable(
                            ctx, fn, gen.iter, set_names)

    def _check_iterable(self, ctx: FileContext, fn: ast.AST,
                        expr: ast.AST, set_names: set[str]
                        ) -> t.Iterator[Finding]:
        # sorted(...) and friends impose the canonical order; anything
        # underneath them is by definition fine.
        if isinstance(expr, ast.Call):
            callee = dotted_name(expr.func)
            if callee in _ORDERING_CALLS:
                return
            if callee in _SET_CALLS:
                yield self.finding(
                    ctx, expr,
                    f"{callee}() iterated in cross-shard merge function "
                    f"{fn.name}: set order is hash order and differs "
                    f"between replicas — wrap in sorted(...)")
                return
            if (isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in _VIEW_METHODS):
                yield self.finding(
                    ctx, expr,
                    f".{expr.func.attr}() iterated in cross-shard merge "
                    f"function {fn.name}: dict views replay shard-local "
                    f"insertion order — iterate sorted(d) and index, or "
                    f"sort the view")
            return
        if isinstance(expr, (ast.Set, ast.SetComp)) \
                or _is_set_expr(expr, set_names):
            yield self.finding(
                ctx, expr,
                f"set iterated in cross-shard merge function {fn.name}: "
                f"set order is hash order and differs between replicas "
                f"— wrap in sorted(...)")
