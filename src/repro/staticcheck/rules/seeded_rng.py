"""Rule ``seeded-rng-only``: randomness flows through ``RngRegistry``.

Every stochastic component draws from its own named stream of
:class:`repro.sim.rng.RngRegistry` so that (a) runs are reproducible
from one master seed and (b) adding a component never perturbs another
component's stream.  Bare ``random.*`` uses the process-global
generator and ``np.random.default_rng()`` with no fixed seed uses OS
entropy — both silently break that contract.
"""

from __future__ import annotations

import ast
import typing as t

from ..astutil import dotted_name
from ..findings import Finding
from ..registry import register
from ..rule import FileContext, Rule

#: the one module allowed to construct numpy generators
RNG_MODULE = "repro/sim/rng.py"


@register
class SeededRngOnly(Rule):
    name = "seeded-rng-only"
    summary = "all randomness must come from sim/rng.RngRegistry streams"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module_rel != RNG_MODULE

    def check(self, ctx: FileContext) -> t.Iterator[Finding]:
        aliases = self._module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx, node,
                        "stdlib random is unseeded global state; draw "
                        "from sim.rng.RngRegistry streams instead")
                elif node.module in ("numpy.random", "np.random"):
                    yield self.finding(
                        ctx, node,
                        "construct numpy generators only in sim/rng.py; "
                        "draw from RngRegistry streams instead")
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                root = aliases.get(parts[0])
                if root == "random" and len(parts) > 1:
                    yield self.finding(
                        ctx, node,
                        f"{name}() bypasses the seeded RngRegistry; use "
                        f"sim.rng.stream(<component>) draws")
                elif (root == "numpy" and len(parts) > 2
                        and parts[1] == "random"):
                    yield self.finding(
                        ctx, node,
                        f"{name}() bypasses the seeded RngRegistry; "
                        f"numpy generators are built only in sim/rng.py")

    @staticmethod
    def _module_aliases(tree: ast.Module) -> dict[str, str]:
        """Local names bound to the ``random`` / ``numpy`` modules."""
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    top = item.name.split(".")[0]
                    if top in ("random", "numpy"):
                        aliases[item.asname or top] = top
        return aliases
