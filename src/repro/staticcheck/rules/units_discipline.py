"""Rule ``units-discipline``: integer nanoseconds, parsed sizes.

:mod:`repro.units` keeps simulated time as *integer* nanoseconds so the
event queue stays totally ordered with no floating-point drift.  A
``float`` smuggled into a ``*_ns`` parameter or a ``timeout()`` call
defeats that (and ``heapq`` comparisons between mixed int/float times
are exactly the kind of platform-sensitive tie-break that breaks
bit-reproducibility).  Flags:

* keyword arguments named ``*_ns`` whose value is a float literal or a
  true-division expression (``/`` always yields float);
* ``timeout(...)`` calls whose delay is such an expression;
* assignments binding such an expression to a ``*_ns`` name — except
  when explicitly annotated ``: float``, which declares a deliberate
  fractional quantity;
* ``per_*_ns`` names are exempt everywhere: they are ns-per-unit
  *rates* (e.g. ``per_byte_ns``), fractional by design, consumed via
  ``round()``/:func:`repro.units.serialize_ns` at the call site;
* string literals passed to ``bs=``/``*_bytes=`` keywords where
  :func:`repro.units.parse_size` should be used;
* float expressions passed positionally to ``.record(...)``,
  ``.observe(...)`` or the latency-histogram ``.record_io(...)`` — the
  latency recorder, the telemetry metrics registry and the per-tenant
  histograms all take integer nanoseconds.
"""

from __future__ import annotations

import ast
import typing as t

from ..astutil import dotted_name
from ..findings import Finding
from ..registry import register
from ..rule import FileContext, Rule

_FIX_HINT = "use units.us()/round()/ceil to produce integer ns"


def _is_floaty(node: ast.AST) -> bool:
    """Expression that statically must evaluate to a float."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floaty(node.left) or _is_floaty(node.right)
    return False


@register
class UnitsDiscipline(Rule):
    name = "units-discipline"
    summary = "*_ns values must be integer ns; sizes via parse_size()"

    def check(self, ctx: FileContext) -> t.Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._check_binding(ctx, target,
                                                   node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                ann = node.annotation
                if isinstance(ann, ast.Name) and ann.id == "float":
                    continue   # declared-float contract, e.g. per_byte_ns
                yield from self._check_binding(ctx, node.target,
                                               node.value)

    def _check_call(self, ctx: FileContext, node: ast.Call
                    ) -> t.Iterator[Finding]:
        for kw in node.keywords:
            if kw.arg is None:
                continue
            if (kw.arg.endswith("_ns") and not kw.arg.startswith("per_")
                    and _is_floaty(kw.value)):
                yield self.finding(
                    ctx, kw.value,
                    f"float expression passed to {kw.arg}=: {_FIX_HINT}")
            elif ((kw.arg == "bs" or kw.arg.endswith("_bytes"))
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)):
                yield self.finding(
                    ctx, kw.value,
                    f"string literal passed to {kw.arg}=: sizes are "
                    f"integer bytes; convert with units.parse_size()")
        name = dotted_name(node.func)
        if name is not None and name.rsplit(".", 1)[-1] == "timeout":
            if node.args and _is_floaty(node.args[0]):
                yield self.finding(
                    ctx, node.args[0],
                    f"float delay passed to timeout(): {_FIX_HINT}")
        # Latency recorders, the telemetry metrics registry and the
        # per-tenant histograms take integer ns: rec.record(v),
        # metrics.observe(name, v, ...),
        # hists.record_io(tenant, op, device, v, ...).
        if name is not None:
            method = name.rsplit(".", 1)[-1]
            arg_index = {"record": 0, "observe": 1,
                         "record_io": 3}.get(method)
            if (arg_index is not None and len(node.args) > arg_index
                    and _is_floaty(node.args[arg_index])):
                yield self.finding(
                    ctx, node.args[arg_index],
                    f"float expression passed to {method}(): "
                    f"{_FIX_HINT}")

    def _check_binding(self, ctx: FileContext, target: ast.AST,
                       value: ast.AST) -> t.Iterator[Finding]:
        name = (target.id if isinstance(target, ast.Name)
                else target.attr if isinstance(target, ast.Attribute)
                else None)
        if (name is not None and name.endswith("_ns")
                and not name.startswith("per_") and _is_floaty(value)):
            yield self.finding(
                ctx, value,
                f"float expression bound to {name}: {_FIX_HINT} "
                f"(or annotate ': float' if a fractional rate is "
                f"intended)")
