"""Rule ``no-wallclock``: simulation code must not read the host clock.

Simulated time is :attr:`Simulator.now`; a ``time.time()`` or
``datetime.now()`` anywhere in the model leaks real time into results
and destroys bit-for-bit reproducibility of benchmark runs.
"""

from __future__ import annotations

import ast
import typing as t

from ..astutil import dotted_name
from ..findings import Finding
from ..registry import register
from ..rule import FileContext, Rule

#: attributes of the ``time`` module that read the host clock
BANNED_TIME = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "clock_gettime",
    "clock_gettime_ns",
})
#: constructors on ``datetime``/``date`` objects that read the host clock
BANNED_DATETIME = frozenset({"now", "utcnow", "today"})


@register
class NoWallclock(Rule):
    name = "no-wallclock"
    summary = "no host-clock reads (time.time, datetime.now, ...)"

    def check(self, ctx: FileContext) -> t.Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                banned = [a.name for a in node.names
                          if a.name in BANNED_TIME]
                if banned:
                    yield self.finding(
                        ctx, node,
                        f"importing {', '.join(banned)} from time reads "
                        f"the host clock; use Simulator.now")
            elif isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name is None:
                    continue
                parts = name.split(".")
                if (len(parts) == 2 and parts[0] == "time"
                        and parts[1] in BANNED_TIME):
                    yield self.finding(
                        ctx, node,
                        f"{name} reads the host clock and breaks sim "
                        f"determinism; use Simulator.now")
                elif (parts[-1] in BANNED_DATETIME
                        and parts[-2] in ("datetime", "date")):
                    yield self.finding(
                        ctx, node,
                        f"{name} reads the host clock and breaks sim "
                        f"determinism; use Simulator.now")
