"""Rule ``sim-process-yields``: processes must be generators.

:meth:`repro.sim.core.Simulator.process` drives a *generator*; handing
it a plain function call runs the body eagerly at spawn time and then
crashes (or worse, silently does nothing at time zero and never again).
For every ``<obj>.process(fn(...))`` whose callee is resolvable in the
same module — ``self.method`` in the enclosing class, or a module-level
function — require the callee to contain a ``yield``/``yield from``.
Callees that ``return`` a value are skipped: they may be factories
returning a generator built elsewhere.
"""

from __future__ import annotations

import ast
import typing as t

from ..astutil import dotted_name, has_own_yield, iter_functions, local_walk
from ..findings import Finding
from ..registry import register
from ..rule import FileContext, Rule


def _returns_value(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(isinstance(node, ast.Return) and node.value is not None
               for node in local_walk(fn))


@register
class SimProcessYields(Rule):
    name = "sim-process-yields"
    summary = "functions handed to Simulator.process must yield"

    def check(self, ctx: FileContext) -> t.Iterator[Finding]:
        module_fns = {node.name: node for node in ctx.tree.body
                      if isinstance(node, (ast.FunctionDef,
                                           ast.AsyncFunctionDef))}
        for cls, fn in iter_functions(ctx.tree):
            methods = {}
            if cls is not None:
                methods = {item.name: item for item in cls.body
                           if isinstance(item, (ast.FunctionDef,
                                                ast.AsyncFunctionDef))}
            for node in local_walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if (name is None
                        or name.rsplit(".", 1)[-1] != "process"
                        or not node.args
                        or not isinstance(node.args[0], ast.Call)):
                    continue
                callee = self._resolve(node.args[0].func, methods,
                                       module_fns)
                if (callee is not None and not has_own_yield(callee)
                        and not _returns_value(callee)):
                    yield self.finding(
                        ctx, node,
                        f"{callee.name}() handed to process() contains "
                        f"no yield: the simulator needs a generator, "
                        f"this would run eagerly and die at spawn")

    @staticmethod
    def _resolve(func: ast.AST,
                 methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
                 module_fns: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
                 ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        name = dotted_name(func)
        if name is None:
            return None
        if name.startswith("self.") and name.count(".") == 1:
            return methods.get(name.split(".", 1)[1])
        if "." not in name:
            return module_fns.get(name)
        return None
