"""Rule ``sanitizer-hook``: instrumented choke points stay instrumented.

ShareSan (docs/sanitizer.md) validates ownership at the places every
byte already flows through: physical-memory stores and queue-ring index
transitions.  Those choke points only stay exhaustive if *new*
mutation sites added to them carry the hook too — a ring-index
mutation the sanitizer never sees is a blind spot in every detector
downstream.

Per function, in ``repro/memory/physmem.py`` and
``repro/nvme/queues.py``: assigning (or aug-assigning) ``self.head``,
``self.tail``, ``self.db_tail`` or ``self.phase``, or storing into
``self._extents[...]``, requires the function to mention ``sanitizer``
(the NULL-object guard idiom ``san = self.sanitizer`` counts).  A
deliberate unhooked site takes an explicit
``# staticcheck: ignore[sanitizer-hook]`` with a justification.
"""

from __future__ import annotations

import ast
import typing as t

from ..astutil import dotted_name, iter_functions, local_walk
from ..findings import Finding
from ..registry import register
from ..rule import FileContext, Rule

_RING_INDEX = frozenset({"head", "tail", "db_tail", "phase"})
_SCOPE = ("repro/memory/physmem.py", "repro/nvme/queues.py")


def _is_mutation(target: ast.AST) -> bool:
    if (isinstance(target, ast.Attribute)
            and target.attr in _RING_INDEX
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"):
        return True
    return (isinstance(target, ast.Subscript)
            and dotted_name(target.value) == "self._extents")


@register
class SanitizerHook(Rule):
    name = "sanitizer-hook"
    summary = "physmem/queue mutation sites must carry a ShareSan hook"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module_rel in _SCOPE

    def check(self, ctx: FileContext) -> t.Iterator[Finding]:
        for _cls, fn in iter_functions(ctx.tree):
            mutations: list[ast.AST] = []
            hooked = False
            for node in local_walk(fn):
                if (isinstance(node, ast.Attribute)
                        and node.attr == "sanitizer") \
                        or (isinstance(node, ast.Name)
                            and node.id == "sanitizer"):
                    hooked = True
                targets: t.Sequence[ast.AST] = ()
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AugAssign):
                    targets = (node.target,)
                mutations.extend(tgt for tgt in targets
                                 if _is_mutation(tgt))
            if hooked:
                continue
            for target in mutations:
                yield self.finding(
                    ctx, target,
                    "memory/ring state mutated without a ShareSan hook "
                    "in this function: the sanitizer would miss this "
                    "site (hook it, or suppress with a justification)")
