"""Built-in rule plugins.

Importing this package registers every bundled rule.  To add a rule,
create a module here with a :class:`~repro.staticcheck.rule.Rule`
subclass decorated with :func:`~repro.staticcheck.registry.register`,
then import it below (and add fixture tests — see
docs/static_analysis.md).
"""

from . import (doorbell_order, hotpath_alloc, nonposted_hotpath,  # noqa: F401
               no_wallclock, process_yields, seeded_rng, units_discipline)
