"""Built-in rule plugins.

Importing this package registers every bundled rule.  To add a rule,
create a module here with a :class:`~repro.staticcheck.rule.Rule`
subclass decorated with :func:`~repro.staticcheck.registry.register`,
then import it below (and add fixture tests — see
docs/static_analysis.md).
"""

from . import (doorbell_order, hotpath_alloc, lease_guard,  # noqa: F401
               nonposted_hotpath, no_wallclock, process_yields,
               sanitizer_hook, seeded_rng, shard_channel_order,
               units_discipline, window_epoch)
