"""Rule ``doorbell-after-sq-write``: ring doorbells after queue writes.

The NVMe contract: the controller may fetch an SQE the instant the SQ
tail doorbell is written, so the SQE store must be globally visible
first.  On this model's fabric both are posted writes and PCIe posted
ordering preserves program order — *provided the program order is
right*.  A doorbell ring that lexically precedes the queue-memory write
(or a CQ head doorbell before the CQE is consumed) hands the device a
stale entry; exactly the bug class the NVMe-virtualization literature
keeps rediscovering in software queue paths.

Per function: every expression that evaluates ``sq_doorbell_offset``
must be preceded by a queue-memory write call.  Writes that mention
``.pack()`` or ``slot_addr`` are recognised as *SQE stores*; when a
function contains any, the doorbell must follow one of those
specifically (a mere data-buffer copy before the ring does not count).
Every ``cq_doorbell_offset`` ring must follow a ``.consume()`` when the
function consumes CQEs at all (pure ring helpers are exempt — the
consume happens in their caller).
"""

from __future__ import annotations

import ast
import typing as t

from ..astutil import dotted_name, iter_functions, local_walk
from ..findings import Finding
from ..registry import register
from ..rule import FileContext, Rule

_WRITE_ATTRS = frozenset({"write", "write_wait", "_reg_write",
                          "reg_write"})


def _is_sqe_store(call: ast.Call) -> bool:
    """Write call that visibly stores a submission entry."""
    for sub in ast.walk(call):
        if (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "pack"):
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "slot_addr":
            return True
    return False


def _doorbell_kind(call: ast.Call) -> str | None:
    name = dotted_name(call.func)
    if name is None:
        return None
    leaf = name.rsplit(".", 1)[-1]
    if leaf == "sq_doorbell_offset":
        return "sq"
    if leaf == "cq_doorbell_offset":
        return "cq"
    return None


@register
class DoorbellAfterSqWrite(Rule):
    name = "doorbell-after-sq-write"
    summary = "doorbell rings must lexically follow the queue write"

    def check(self, ctx: FileContext) -> t.Iterator[Finding]:
        for _cls, fn in iter_functions(ctx.tree):
            yield from self._check_function(ctx, fn)

    def _check_function(self, ctx: FileContext,
                        fn: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> t.Iterator[Finding]:
        rings: list[tuple[str, ast.Call]] = []
        sqe_writes: list[int] = []
        generic_writes: list[int] = []
        consumes: list[int] = []
        for node in local_walk(fn):
            if not isinstance(node, ast.Call):
                continue
            kind = _doorbell_kind(node)
            if kind is not None:
                rings.append((kind, node))
                continue
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in _WRITE_ATTRS:
                    # A write that *carries* the doorbell (e.g. a
                    # multi-line _reg_write(sq_doorbell_offset(...), ..))
                    # is the ring itself, not a preceding queue write.
                    if any(isinstance(sub, ast.Call)
                           and _doorbell_kind(sub)
                           for sub in ast.walk(node)):
                        continue
                    (sqe_writes if _is_sqe_store(node)
                     else generic_writes).append(node.lineno)
                elif node.func.attr == "consume":
                    consumes.append(node.lineno)
        for kind, ring in rings:
            if kind == "sq":
                # When the function visibly stores SQEs, the ring must
                # follow one of *those*; plain writes only stand in
                # when no SQE store is recognisable at all.
                required = sqe_writes or generic_writes
                if not any(line < ring.lineno for line in required):
                    yield self.finding(
                        ctx, ring,
                        "SQ doorbell rung before the queue-memory "
                        "write in this function: the controller may "
                        "fetch a stale SQE")
            else:
                if consumes and not any(line < ring.lineno
                                        for line in consumes):
                    yield self.finding(
                        ctx, ring,
                        "CQ doorbell rung before any cq.consume() in "
                        "this function: the head update would expose "
                        "unconsumed CQE slots")
