"""Rule ``window-epoch``: window tenancy changes must consult the
ring-position handoff state.

A shared-SQ window is a sub-ring whose producer position survives its
tenant: on handoff the successor continues at the predecessor's tail
(via the doorbell shadow recorded in ``win_next_tail``), and a window
with commands still outstanding sits in ``draining`` until its
completion count catches up.  Assigning ``tenants[...]`` without
touching either is the classic epoch bug — a window handed out with a
stale ring position or while the predecessor's commands are still in
flight (exactly what ShareSan's ``foreign-window-write`` and
``cqe-misdelivery`` detectors catch at runtime; this rule catches the
omission at review time).

Per function, in ``repro/driver/``: any subscript assignment to an
attribute named ``tenants`` requires the same function to reference
``win_next_tail`` or ``draining``.
"""

from __future__ import annotations

import ast
import typing as t

from ..astutil import iter_functions, local_walk
from ..findings import Finding
from ..registry import register
from ..rule import FileContext, Rule

_EPOCH_STATE = frozenset({"win_next_tail", "draining"})


@register
class WindowEpoch(Rule):
    name = "window-epoch"
    summary = "tenants[...] assignment without a window-epoch check"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module_rel.startswith("repro/driver/")

    def check(self, ctx: FileContext) -> t.Iterator[Finding]:
        for _cls, fn in iter_functions(ctx.tree):
            mutations: list[ast.AST] = []
            checks_epoch = False
            for node in local_walk(fn):
                if isinstance(node, ast.Attribute) \
                        and node.attr in _EPOCH_STATE:
                    checks_epoch = True
                targets: t.Sequence[ast.AST] = ()
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AugAssign):
                    targets = (node.target,)
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Attribute)
                            and target.value.attr == "tenants"):
                        mutations.append(target)
            if checks_epoch:
                continue
            for target in mutations:
                yield self.finding(
                    ctx, target,
                    "window tenancy reassigned without consulting "
                    "win_next_tail or draining: the successor inherits "
                    "a stale ring position or a live window")
