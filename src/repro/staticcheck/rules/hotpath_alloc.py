"""Rule ``hotpath-alloc``: keep allocation out of ``# hot-path`` functions.

The PR that introduced the route cache and the event-loop fast paths
pays for its speedup by keeping the innermost loops allocation-light:
plans, caches and pooled events are built *once* (in ``_build_*``
helpers) and the per-event code only indexes into them.  A function
carrying a ``# hot-path`` marker comment has opted into that contract,
so two allocation patterns are flagged inside it:

* **dataclass construction** — dataclass ``__init__`` goes through
  generated keyword-processing code and is several times the cost of a
  tuple; hot paths should return cached instances (see
  ``Fabric.resolve``) or plain tuples.  Only dataclasses *defined in
  the same module* are recognised — cross-module calls cannot be
  classified as dataclasses without imports resolution, and guessing by
  capitalisation would flag required per-I/O protocol objects.
* **dict/list/set comprehensions** — each execution allocates a fresh
  container; hoist them into a plan-builder and reuse the result.

A construction that genuinely belongs on a one-time miss path inside a
hot function (e.g. building the cache entry itself) carries an explicit
``# staticcheck: ignore[hotpath-alloc]`` with a justification, same as
every other rule's escape hatch.

The marker is attributed to the *innermost* function containing the
comment line, so a marked closure does not drag its enclosing function
into the contract.
"""

from __future__ import annotations

import ast
import re
import typing as t

from ..astutil import dotted_name, local_walk, marked_functions
from ..findings import Finding
from ..registry import register
from ..rule import FileContext, Rule

_MARKER = re.compile(r"#\s*hot-path\b")

_COMP_KIND = {
    ast.ListComp: "list",
    ast.SetComp: "set",
    ast.DictComp: "dict",
}


def _is_dataclass_decorator(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    name = dotted_name(node)
    return name in ("dataclass", "dataclasses.dataclass")


def module_dataclasses(tree: ast.Module) -> set[str]:
    """Names of dataclasses defined anywhere in the module."""
    out = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and any(
                _is_dataclass_decorator(dec)
                for dec in node.decorator_list):
            out.add(node.name)
    return out


def hot_functions(ctx: FileContext) -> t.Iterator[
        ast.FunctionDef | ast.AsyncFunctionDef]:
    """Functions whose body carries a ``# hot-path`` marker comment."""
    return marked_functions(ctx.tree, ctx.lines, _MARKER)


@register
class HotpathAlloc(Rule):
    name = "hotpath-alloc"
    summary = "no dataclass construction or comprehensions in # hot-path code"

    def applies(self, ctx: FileContext) -> bool:
        # The checker's own sources talk *about* the marker in prose;
        # do not let the docstrings mark the rule machinery as hot.
        return not ctx.module_rel.startswith("repro/staticcheck/")

    def check(self, ctx: FileContext) -> t.Iterator[Finding]:
        dataclasses_here = module_dataclasses(ctx.tree)
        for fn in hot_functions(ctx):
            for node in local_walk(fn):
                kind = _COMP_KIND.get(type(node))
                if kind is not None:
                    yield self.finding(
                        ctx, node,
                        f"{kind} comprehension in # hot-path function "
                        f"{fn.name}: allocates a fresh container on "
                        f"every execution — hoist it into a plan "
                        f"builder and reuse the result")
                    continue
                if isinstance(node, ast.Call):
                    callee = dotted_name(node.func)
                    if callee is not None and \
                            callee.split(".")[-1] in dataclasses_here:
                        yield self.finding(
                            ctx, node,
                            f"dataclass {callee}() constructed in "
                            f"# hot-path function {fn.name}: dataclass "
                            f"__init__ is several times a tuple's cost "
                            f"— cache the instance or use a plain "
                            f"tuple (one-time miss paths may carry "
                            f"staticcheck: ignore[hotpath-alloc])")
