"""Rule ``lease-guard``: queue lifecycle admin commands need the lock.

The manager serialises controller admin-queue traffic behind
``_admin_lock`` — creating or deleting an I/O queue pair races lease
grant/reclaim otherwise (two RPCs interleaving their create/delete
pairs can leak a qid or tear down a live tenant's queue).  Every call
to ``create_io_sq``/``create_io_cq``/``delete_io_sq``/``delete_io_cq``
inside the manager must therefore lexically follow an
``_admin_lock.request()`` in the same function.

Purely lexical, like ``doorbell-after-sq-write``: the acquire must
*precede* the guarded call in source order.  Helpers that take the lock
in their caller should keep the admin calls in the locked function —
that is the discipline this rule enforces.
"""

from __future__ import annotations

import ast
import typing as t

from ..astutil import dotted_name, iter_functions, local_walk
from ..findings import Finding
from ..registry import register
from ..rule import FileContext, Rule

#: Admin commands that mutate the controller's queue-pair inventory.
_GUARDED = frozenset({"create_io_sq", "create_io_cq",
                      "delete_io_sq", "delete_io_cq"})


@register
class LeaseGuard(Rule):
    name = "lease-guard"
    summary = "manager queue create/delete must follow _admin_lock.request()"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module_rel == "repro/driver/manager.py"

    def check(self, ctx: FileContext) -> t.Iterator[Finding]:
        for _cls, fn in iter_functions(ctx.tree):
            acquires: list[int] = []
            guarded: list[tuple[str, ast.Call]] = []
            for node in local_walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                if name.endswith("_admin_lock.request"):
                    acquires.append(node.lineno)
                    continue
                leaf = name.rsplit(".", 1)[-1]
                if leaf in _GUARDED:
                    guarded.append((leaf, node))
            for leaf, call in guarded:
                if not any(line < call.lineno for line in acquires):
                    yield self.finding(
                        ctx, call,
                        f"{leaf} called without a preceding "
                        f"_admin_lock.request() in this function: "
                        f"queue lifecycle races lease grant/reclaim")
