"""Rule ``no-nonposted-hotpath``: keep reads off the I/O data path.

Paper Fig. 8: a posted write crosses the NTB one-way (~.5 us) while a
non-posted read pays a full fabric round trip (several us) *and* stalls
the issuing CPU.  The distributed driver's whole design is that submit
and poll touch remote memory with posted writes only — SQEs are written
into a device-side segment, completions are polled from client-local
memory.  Any register read (``_reg_read``) or NTB segment read
(``*_conn.read`` / ``fabric.read``) reachable from a submit/poll entry
point reintroduces the latency the paper works to eliminate.

Detection is intra-class: entry points are methods whose name suggests
the data path (submit/poll/irq/drain/...), reachability follows
``self.method()`` edges, and a read is any call of a known non-posted
primitive.  The deliberate ablation path (CQ in device-side memory)
carries an explicit ``# staticcheck: ignore[no-nonposted-hotpath]``.
"""

from __future__ import annotations

import ast
import re
import typing as t

from ..astutil import dotted_name, iter_functions, local_walk
from ..findings import Finding
from ..registry import register
from ..rule import FileContext, Rule

#: method-name fragments that mark an I/O hot-path entry point
ENTRY_PATTERN = re.compile(
    r"submit|poll|irq|interrupt|drain|dispatch|ring|complete")

#: attribute names that are always non-posted register reads
REGISTER_READS = frozenset({"_reg_read", "reg_read"})

#: ``.read`` is non-posted when issued on one of these objects
_NTB_OBJECT = re.compile(r"conn|fabric|remote|_bar\b")


def _is_nonposted_read(call: ast.Call) -> str | None:
    """Dotted spelling of a non-posted read call, or None."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr in REGISTER_READS:
        return dotted_name(func) or func.attr
    if func.attr == "read":
        base = dotted_name(func.value)
        if base is not None and _NTB_OBJECT.search(base):
            return f"{base}.read"
    return None


@register
class NoNonpostedHotpath(Rule):
    name = "no-nonposted-hotpath"
    summary = "no register/NTB reads reachable from submit/poll paths"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module_rel.startswith("repro/driver/")

    def check(self, ctx: FileContext) -> t.Iterator[Finding]:
        classes: dict[ast.ClassDef | None,
                      dict[str, ast.FunctionDef
                           | ast.AsyncFunctionDef]] = {}
        for cls, fn in iter_functions(ctx.tree):
            classes.setdefault(cls, {})[fn.name] = fn
        for methods in classes.values():
            yield from self._check_class(ctx, methods)

    def _check_class(self, ctx: FileContext,
                     methods: dict[str, ast.FunctionDef
                                        | ast.AsyncFunctionDef]
                     ) -> t.Iterator[Finding]:
        # Breadth-first reachability over self.<method>() edges, keeping
        # the entry point each method was first reached from (for the
        # finding message).
        reached: dict[str, str] = {}
        frontier = [name for name in methods
                    if ENTRY_PATTERN.search(name)]
        for name in frontier:
            reached[name] = name
        while frontier:
            current = frontier.pop()
            for node in local_walk(methods[current]):
                if not isinstance(node, ast.Call):
                    continue
                callee = dotted_name(node.func)
                if (callee is not None and callee.startswith("self.")
                        and callee.count(".") == 1):
                    target = callee.split(".", 1)[1]
                    if target in methods and target not in reached:
                        reached[target] = reached[current]
                        frontier.append(target)
        for name, entry in sorted(reached.items()):
            for node in local_walk(methods[name]):
                if not isinstance(node, ast.Call):
                    continue
                spelled = _is_nonposted_read(node)
                if spelled is not None:
                    via = "" if name == entry else f" (via {entry})"
                    yield self.finding(
                        ctx, node,
                        f"non-posted read {spelled}() in hot-path "
                        f"method {name}{via}: reads pay a full NTB "
                        f"round trip (paper Fig. 8); keep them on the "
                        f"control path")
