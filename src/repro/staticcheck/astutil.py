"""Small AST helpers shared by the rule plugins."""

from __future__ import annotations

import ast
import typing as t


def dotted_name(node: ast.AST) -> str | None:
    """Render a ``Name``/``Attribute`` chain as ``"a.b.c"``.

    Returns ``None`` for anything that is not a pure attribute chain
    (calls, subscripts, literals...), because those have no stable
    dotted spelling.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_functions(tree: ast.AST) -> t.Iterator[
        tuple[ast.ClassDef | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(enclosing_class_or_None, function)`` once per def."""
    methods: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.add(id(item))
                    yield node, item
    for node in ast.walk(tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and id(node) not in methods):
            yield None, node


def local_walk(fn: ast.FunctionDef | ast.AsyncFunctionDef
               ) -> t.Iterator[ast.AST]:
    """Walk a function body *without* descending into nested defs.

    Lambdas are included (they execute in the enclosing scope's dynamic
    extent), nested ``def``/``class`` bodies are not.
    """
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def marked_functions(tree: ast.Module, lines: list[str],
                     marker: "t.Pattern[str]") -> t.Iterator[
        ast.FunctionDef | ast.AsyncFunctionDef]:
    """Functions whose span contains a line matching ``marker``.

    A marker line is attributed to the *innermost* function containing
    it, so a marked closure does not drag its enclosing function into
    the marked contract.  Module-level marker lines attribute to
    nothing.  Both comments and docstring lines count — the raw source
    is scanned, not the AST.
    """
    marker_lines = [i for i, text in enumerate(lines, start=1)
                    if marker.search(text)]
    if not marker_lines:
        return
    spans = []
    for _cls, fn in iter_functions(tree):
        end = getattr(fn, "end_lineno", fn.lineno)
        spans.append((fn.lineno, end, fn))
    marked: set[int] = set()
    for line in marker_lines:
        innermost = None
        innermost_size = None
        for start, end, fn in spans:
            if start <= line <= end:
                size = end - start
                if innermost_size is None or size < innermost_size:
                    innermost, innermost_size = fn, size
        if innermost is not None:
            marked.add(id(innermost))
    seen: set[int] = set()
    for _start, _end, fn in spans:
        if id(fn) in marked and id(fn) not in seen:
            seen.add(id(fn))
            yield fn


def has_own_yield(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True if the function body itself contains ``yield``/``yield from``."""
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in local_walk(fn))


def call_names_in(node: ast.AST) -> set[str]:
    """Dotted names of every call target in the subtree of ``node``."""
    names = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name is not None:
                names.add(name)
    return names
