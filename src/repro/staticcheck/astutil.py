"""Small AST helpers shared by the rule plugins."""

from __future__ import annotations

import ast
import typing as t


def dotted_name(node: ast.AST) -> str | None:
    """Render a ``Name``/``Attribute`` chain as ``"a.b.c"``.

    Returns ``None`` for anything that is not a pure attribute chain
    (calls, subscripts, literals...), because those have no stable
    dotted spelling.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_functions(tree: ast.AST) -> t.Iterator[
        tuple[ast.ClassDef | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(enclosing_class_or_None, function)`` once per def."""
    methods: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.add(id(item))
                    yield node, item
    for node in ast.walk(tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and id(node) not in methods):
            yield None, node


def local_walk(fn: ast.FunctionDef | ast.AsyncFunctionDef
               ) -> t.Iterator[ast.AST]:
    """Walk a function body *without* descending into nested defs.

    Lambdas are included (they execute in the enclosing scope's dynamic
    extent), nested ``def``/``class`` bodies are not.
    """
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def has_own_yield(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True if the function body itself contains ``yield``/``yield from``."""
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in local_walk(fn))


def call_names_in(node: ast.AST) -> set[str]:
    """Dotted names of every call target in the subtree of ``node``."""
    names = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name is not None:
                names.add(name)
    return names
