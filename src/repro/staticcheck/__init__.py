"""AST-based invariant checker for this reproduction.

The simulation's headline numbers are only trustworthy if three kinds of
invariant hold everywhere:

* **determinism** — no wall-clock reads, all randomness derived from the
  per-component :class:`repro.sim.rng.RngRegistry` streams;
* **posted-write discipline** — the hot I/O path crosses the NTB with
  posted writes only (paper Fig. 8); non-posted reads pay a full fabric
  round trip and belong on the control path;
* **unit safety** — simulated time is integer nanoseconds and sizes are
  integer bytes (see :mod:`repro.units`).

``python -m repro.staticcheck <paths>`` (or ``repro staticcheck``) parses
every Python file once and runs each registered rule over the shared AST.
Findings can be silenced per-line with ``# staticcheck: ignore[rule]`` or
accepted wholesale in a baseline file; see ``docs/static_analysis.md``.
"""

from __future__ import annotations

from .findings import Finding
from .registry import all_rules, get_rule, register
from .rule import FileContext, Rule
from .runner import check_file, main, run

__all__ = [
    "Finding", "FileContext", "Rule", "all_rules", "get_rule", "register",
    "check_file", "run", "main",
]
