"""First-fit physical range allocator.

Used for DMA-able allocations inside a host's DRAM (queue memory, bounce
buffers, SISCI segments) and for carving windows out of NTB BAR apertures.
Allocations are always contiguous — mirroring SISCI's "linear contiguous
regions in physical system memory" (paper Sec. IV).
"""

from __future__ import annotations

import bisect


class OutOfSpace(Exception):
    """No free contiguous range large enough for the request."""


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


class RangeAllocator:
    """First-fit allocator over ``[base, base+size)``."""

    def __init__(self, base: int, size: int, name: str = "alloc") -> None:
        if size <= 0:
            raise ValueError("allocator size must be positive")
        self.base = base
        self.size = size
        self.name = name
        # Sorted list of free (start, length) runs.
        self._free: list[tuple[int, int]] = [(base, size)]
        self._allocated: dict[int, int] = {}

    @property
    def free_bytes(self) -> int:
        return sum(length for _, length in self._free)

    @property
    def allocated_bytes(self) -> int:
        return sum(self._allocated.values())

    def alloc(self, length: int, alignment: int = 8) -> int:
        """Return the start address of a new allocation.

        Raises :class:`OutOfSpace` when no contiguous run fits.
        """
        if length <= 0:
            raise ValueError("allocation length must be positive")
        if alignment <= 0 or alignment & (alignment - 1):
            raise ValueError("alignment must be a positive power of two")
        for i, (start, run) in enumerate(self._free):
            aligned = _align_up(start, alignment)
            pad = aligned - start
            if run < pad + length:
                continue
            # Carve [aligned, aligned+length) out of the run.
            del self._free[i]
            if pad:
                self._free.insert(i, (start, pad))
                i += 1
            tail = run - pad - length
            if tail:
                self._free.insert(i, (aligned + length, tail))
            self._allocated[aligned] = length
            return aligned
        raise OutOfSpace(
            f"{self.name}: no room for {length} bytes "
            f"(free={self.free_bytes}, largest runs={self._free[:3]})")

    def free(self, addr: int) -> None:
        """Release an allocation, coalescing adjacent free runs."""
        length = self._allocated.pop(addr, None)
        if length is None:
            raise ValueError(f"{self.name}: {addr:#x} was not allocated here")
        starts = [s for s, _ in self._free]
        i = bisect.bisect_left(starts, addr)
        self._free.insert(i, (addr, length))
        # Coalesce with right neighbour, then left.
        if i + 1 < len(self._free):
            s, l = self._free[i]
            s2, l2 = self._free[i + 1]
            if s + l == s2:
                self._free[i: i + 2] = [(s, l + l2)]
        if i > 0:
            s0, l0 = self._free[i - 1]
            s, l = self._free[i]
            if s0 + l0 == s:
                self._free[i - 1: i + 1] = [(s0, l0 + l)]

    def owns(self, addr: int) -> bool:
        return addr in self._allocated

    def allocation_size(self, addr: int) -> int:
        return self._allocated[addr]
