"""Host physical memory substrate: byte-accurate DRAM, watchpoints and a
contiguous range allocator."""

from .allocator import OutOfSpace, RangeAllocator
from .physmem import HostMemory, MemoryError_, Watchpoint

__all__ = ["HostMemory", "Watchpoint", "MemoryError_",
           "RangeAllocator", "OutOfSpace"]
