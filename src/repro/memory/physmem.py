"""Host physical memory with real byte contents and write watchpoints.

Memory contents are stored *sparsely* (4 KiB extents materialised on
first write) so hosts can present gigabytes of DRAM while the simulator
only pays for pages the workload actually touches — the same technique
the namespace store uses.  DMA and MMIO still move real bytes, so
end-to-end tests can verify data integrity through every layer (block
write on host A -> NVMe media -> block read on host B).

Watchpoints are the mechanism behind "polling local memory": the client
driver arms a watchpoint on its CQ ring; when the controller's posted
CQE write lands, the watchpoint fires a :class:`~repro.sim.Signal` and
the polling process wakes after its (configurable) poll-interval cost.
This models busy-polling without simulating billions of poll iterations.
"""

from __future__ import annotations

import typing as t

from ..sanitizer.hooks import NULL_SANITIZER
from ..sim import Signal, Simulator


class MemoryError_(Exception):
    """Access outside the populated physical range."""


class Watchpoint:
    """A write-triggered signal over a physical address range."""

    __slots__ = ("start", "end", "signal", "active")

    def __init__(self, sim: Simulator, start: int, end: int) -> None:
        self.start = start
        self.end = end
        self.signal = Signal(sim)
        self.active = True

    def overlaps(self, start: int, end: int) -> bool:
        return self.active and self.start < end and start < self.end


class HostMemory:
    """Physical DRAM of one host (sparse backing).

    Addresses are *physical addresses within this host's address space*;
    the base is configurable so tests can assert nothing accidentally
    treats a physical address as a buffer offset.
    """

    EXTENT = 4096

    def __init__(self, sim: Simulator, size: int,
                 base: int = 0x1000_0000, name: str = "mem") -> None:
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.sim = sim
        self.base = base
        self.size = size
        self.name = name
        self._extents: dict[int, bytearray] = {}
        self._watchpoints: list[Watchpoint] = []
        #: ShareSan hook (docs/sanitizer.md); NULL object when off.
        self.sanitizer = NULL_SANITIZER

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.base <= addr and addr + length <= self.end

    def _check(self, addr: int, length: int) -> None:
        if not self.contains(addr, length):
            raise MemoryError_(
                f"{self.name}: access [{addr:#x}, +{length}) outside "
                f"[{self.base:#x}, {self.end:#x})")

    # -- data access ---------------------------------------------------------

    def read(self, addr: int, length: int) -> bytes:
        # hot-path: queue entries and doorbells are small aligned
        # accesses that never straddle a 4 KiB extent — serve them with
        # one dict probe and one slice.  Bounds check inlined; _check
        # re-runs only to build the error message.
        offset = addr - self.base
        if offset < 0 or offset + length > self.size:
            self._check(addr, length)
        san = self.sanitizer
        if san.enabled:
            san.on_mem_read(self, addr, length)
        index, within = divmod(offset, self.EXTENT)
        if within + length <= self.EXTENT:
            extent = self._extents.get(index)
            if extent is None:
                return bytes(length)
            return bytes(extent[within: within + length])
        out = bytearray(length)
        pos = 0
        while pos < length:
            index, within = divmod(offset + pos, self.EXTENT)
            run = min(length - pos, self.EXTENT - within)
            extent = self._extents.get(index)
            if extent is not None:
                out[pos: pos + run] = extent[within: within + run]
            pos += run
        return bytes(out)

    def write(self, addr: int, data: bytes | bytearray | memoryview) -> None:
        # hot-path
        length = len(data)
        offset = addr - self.base
        if offset < 0 or offset + length > self.size:
            self._check(addr, length)
        san = self.sanitizer
        if san.enabled:
            san.on_mem_write(self, addr, length)
        if not isinstance(data, (bytes, bytearray)):
            data = bytes(data)
        index, within = divmod(offset, self.EXTENT)
        if within + length <= self.EXTENT:
            extent = self._extents.get(index)
            if extent is None:
                extent = bytearray(self.EXTENT)
                self._extents[index] = extent
            extent[within: within + length] = data
            if self._watchpoints:
                self._fire_watchpoints(addr, addr + length)
            return
        pos = 0
        while pos < length:
            index, within = divmod(offset + pos, self.EXTENT)
            run = min(length - pos, self.EXTENT - within)
            extent = self._extents.get(index)
            if extent is None:
                extent = bytearray(self.EXTENT)
                self._extents[index] = extent
            extent[within: within + run] = data[pos: pos + run]
            pos += run
        if self._watchpoints:
            self._fire_watchpoints(addr, addr + length)

    def read_u32(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 4), "little")

    def write_u32(self, addr: int, value: int) -> None:
        self.write(addr, (value & 0xFFFF_FFFF).to_bytes(4, "little"))

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, (value & 0xFFFF_FFFF_FFFF_FFFF).to_bytes(8, "little"))

    def fill(self, addr: int, length: int, byte: int = 0) -> None:
        self.write(addr, bytes([byte]) * length)

    def resident_bytes(self) -> int:
        """Bytes of backing store actually materialised."""
        return len(self._extents) * self.EXTENT

    # -- watchpoints ----------------------------------------------------------

    def watch(self, addr: int, length: int) -> Watchpoint:
        """Arm a watchpoint whose signal fires on any write overlapping
        ``[addr, addr+length)``."""
        self._check(addr, length)
        wp = Watchpoint(self.sim, addr, addr + length)
        self._watchpoints.append(wp)
        return wp

    def unwatch(self, wp: Watchpoint) -> None:
        wp.active = False
        try:
            self._watchpoints.remove(wp)
        except ValueError:
            pass

    def _fire_watchpoints(self, start: int, end: int) -> None:
        for wp in self._watchpoints:
            if wp.overlaps(start, end):
                wp.signal.fire((start, end))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<HostMemory {self.name} base={self.base:#x} "
                f"size={self.size:#x}>")
