"""Calibrated model parameters.

Every latency/bandwidth constant the simulation uses lives here, with the
source it was calibrated from.  The headline sources are:

* the paper itself (Sec. VI): 100-150 ns per PCIe switch chip per
  direction; NVMe-oF adds 7.7/7.5 us (read/write) minimum latency vs.
  local; the NTB driver adds ~1/~2 us;
* the SmartIO TOCS paper [5] for NTB path composition (host adapter +
  cluster switch + remote adapter);
* Intel P4800X public specs / common fio measurements for the media
  model (~8 us consistent media latency, 4 KiB QD1 end-to-end ~10-12 us
  through the stock kernel driver, 32 queue pairs);
* Guz et al. [8] and common nvme-rdma/SPDK measurements for the
  software-path and 100 Gb/s network constants.

All times are integer nanoseconds, all bandwidths bytes/ns (== GB/s).
Configs are plain frozen dataclasses so scenario builders can ``replace``
individual fields for ablations without mutating shared state.
"""

from __future__ import annotations

import dataclasses

from .units import gbit_per_s, gb_per_s


# ---------------------------------------------------------------------------
# PCIe fabric
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class PcieConfig:
    """Transaction-level PCIe fabric parameters."""

    #: Per-switch-chip forwarding delay, one direction (paper Sec. VI:
    #: "each PCIe switch chip in the path adds between 100 and 150
    #: nanoseconds delay (in one direction)").
    switch_latency_min_ns: int = 100
    switch_latency_max_ns: int = 150

    #: Root-complex / host-bridge traversal, one direction.  Intel server
    #: RCs measure ~250-350 ns for an MMIO round trip.
    root_complex_latency_ns: int = 150

    #: DRAM access at the completer for a non-posted read (row access +
    #: controller queueing).
    memory_read_latency_ns: int = 90
    #: Posted write absorption at the memory controller.
    memory_write_latency_ns: int = 40

    #: Device internal latency to answer a BAR read / absorb a BAR write.
    device_mmio_read_ns: int = 120
    device_mmio_write_ns: int = 50

    #: NTB address-translation lookup (LUT) per crossing, added on top of
    #: the NTB's switch-chip forwarding latency.
    ntb_translation_ns: int = 30

    #: Effective per-direction data bandwidth of a link (PCIe Gen3 x8
    #: ~7.9 GB/s raw; x4 ~3.9 GB/s; use an effective Gen3 x4 for the
    #: NVMe device link and x8 elsewhere, all set per-link in topology —
    #: this is only the default).
    default_link_bandwidth: float = gb_per_s(7.0)

    #: Max payload size per TLP; DMA bursts are chunked to this.
    max_payload_size: int = 256
    #: TLP header + framing overhead per packet on the wire.
    tlp_header_bytes: int = 26
    #: Completion header overhead for non-posted reads.
    cpl_header_bytes: int = 20
    #: Max read request size (a single MemRd can ask for this much).
    max_read_request_size: int = 512

    #: Non-posted completion timeout: how long an initiator waits for a
    #: read completion before reporting a failed transaction (PCIe spec
    #: range is 50 us - 50 ms; kept short so degraded-link simulations
    #: stay fast).  Only reachable when fault injection severs a path.
    completion_timeout_ns: int = 50_000


# ---------------------------------------------------------------------------
# NVMe device / media
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class MediaConfig:
    """Storage-medium timing (defaults model an Intel Optane P4800X).

    The paper uses the P4800X precisely because "its latency is very
    consistent" — hence the tiny sigma and tight cap.
    """

    name: str = "optane-p4800x"
    #: Median media access time for a 4 KiB read/write.
    read_median_ns: int = 6_900
    write_median_ns: int = 7_700
    #: Lognormal sigma — Optane is extremely consistent.
    sigma: float = 0.02
    #: Hard cap on a single access (keeps short runs representative).
    read_cap_ns: int = 9_000
    write_cap_ns: int = 10_500
    #: Additional per-byte time beyond the first 4 KiB of a request.
    per_byte_ns: float = 1.0 / gb_per_s(2.4)
    #: Number of independent internal channels (bounds parallel commands;
    #: P4800X 4 KiB random read saturates around ~550 kIOPS ≈
    #: channels / media_latency).
    channels: int = 5
    #: Block (LBA) size presented by the namespace.
    lba_bytes: int = 512
    #: Namespace capacity in LBAs (375 GB drive; the model stores written
    #: data sparsely so this can stay honest).
    capacity_lbas: int = 732_421_875
    #: Probability that a media access fails with an uncorrectable
    #: error (fault-injection hook; real drives are ~1e-17/bit, i.e. 0
    #: at simulation scale — raise it to exercise error paths).
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0


@dataclasses.dataclass(frozen=True)
class NvmeConfig:
    """NVMe controller model parameters."""

    #: Max queue pairs the controller supports (P4800X: 32, one of which
    #: is the admin pair — hence the paper's "shared by up to 31 hosts").
    max_queue_pairs: int = 32
    #: Max entries per I/O queue (P4800X: 1024; admin queue 4096 cap).
    max_queue_entries: int = 1024
    #: Doorbell stride (CAP.DSTRD = 0 -> 4-byte stride).
    doorbell_stride: int = 4
    #: Controller-internal time from doorbell arrival to issuing the SQE
    #: fetch (doorbell processing, arbitration).
    doorbell_to_fetch_ns: int = 200
    #: Controller-internal command decode/setup after the SQE arrives.
    command_decode_ns: int = 250
    #: Controller-internal completion generation before the CQE write.
    completion_overhead_ns: int = 200
    #: Time for the controller to come ready after CC.EN (CSTS.RDY).
    enable_latency_ns: int = 2_000_000
    #: Admin command execution time (identify, queue create/delete).
    admin_command_ns: int = 50_000
    #: MSI-X interrupt: fixed cost of generating the interrupt message.
    interrupt_generation_ns: int = 100

    media: MediaConfig = dataclasses.field(default_factory=MediaConfig)


# ---------------------------------------------------------------------------
# Host software paths
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class HostSoftwareConfig:
    """CPU-side software costs, calibrated against fio-on-Linux numbers.

    The stock-kernel path (submission ~0.9 us + interrupt ~1.9 us +
    completion ~0.7 us on top of ~8 us media + PCIe transactions) lands
    4 KiB QD1 reads at ~11 us, matching public P4800X fio results.
    """

    #: fio/blk-mq request construction down to driver entry.
    block_submit_ns: int = 450
    #: Stock kernel NVMe driver: build SQE + PRP, write SQ, ring doorbell.
    nvme_submit_ns: int = 300
    #: IRQ delivery + handler entry (stock driver completion path).
    interrupt_latency_ns: int = 1_200
    #: Driver completion processing + block-layer completion + wake fio.
    complete_ns: int = 450

    #: Our distributed driver is "naive" (paper Sec. VI): an unoptimised
    #: request path adds extra cost over the stock driver...
    dist_submit_ns: int = 1_400
    dist_complete_ns: int = 1_100
    #: ...and it polls CQ memory instead of taking interrupts.  The poll
    #: loop re-checks local memory at this interval; expected added
    #: latency is half of it.
    poll_interval_ns: int = 180
    #: memcpy throughput for the bounce-buffer copy (single-threaded
    #: kernel memcpy, ~6 GB/s including cache effects).
    memcpy_bandwidth: float = gb_per_s(6.0)
    #: Fixed memcpy call overhead.
    memcpy_overhead_ns: int = 80
    #: Per-request IOMMU map/unmap cost for the paper's proposed
    #: future-work alternative to the bounce buffer (IOTLB invalidation
    #: dominates the unmap).
    iommu_map_ns: int = 400
    iommu_unmap_ns: int = 900
    #: Client polling interval for manager-RPC responses (setup path).
    rpc_poll_ns: int = 3_000


# ---------------------------------------------------------------------------
# RDMA / InfiniBand network
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class RdmaConfig:
    """ConnectX-5-class RDMA NIC + 100 Gb/s link model."""

    #: One-way wire/PHY latency between the two hosts, including the
    #: IB switch (~130 ns cut-through) used in the testbed.
    wire_latency_ns: int = 450
    #: NIC processing, WQE fetch/doorbell to first byte on the wire.
    nic_tx_ns: int = 350
    #: NIC receive processing to CQE/data landed in host memory.
    nic_rx_ns: int = 350
    #: Data bandwidth (100 Gb/s minus protocol overhead ~= 11 GB/s).
    bandwidth: float = gbit_per_s(92)
    #: Doorbell MMIO write from CPU to NIC (posted, through local RC).
    doorbell_ns: int = 200
    #: Software verbs post_send/post_recv bookkeeping cost.
    post_wqe_ns: int = 150
    #: CQ poll cost (SPDK-style busy polling) per reap.
    cq_poll_ns: int = 120
    #: RDMA READ adds a full round trip initiated by the responder NIC.
    read_turnaround_ns: int = 300


@dataclasses.dataclass(frozen=True)
class NvmeofConfig:
    """NVMe-oF software-stack parameters (kernel initiator, SPDK target).

    Calibrated so the minimum-latency delta vs. local lands in the
    paper's 7.5-7.7 us band:  initiator kernel rdma path ~1.5 us/side +
    2 network one-ways (~1.15 us each) + target processing ~0.7 us +
    interrupt on the initiator ~1.9 us + capsule/data serialization.
    """

    #: Kernel nvme-rdma initiator: encapsulate command, map data, post.
    initiator_submit_ns: int = 1_500
    #: Kernel initiator completion processing (after its IRQ).
    initiator_complete_ns: int = 1_000
    #: Initiator completion is interrupt-driven (true for nvme-rdma).
    initiator_uses_interrupts: bool = True
    #: SPDK target: capsule decode + NVMe submission on the target side.
    target_process_ns: int = 450
    #: SPDK target completion handling: reap NVMe CQE, build response.
    target_complete_ns: int = 350
    #: SPDK poller granularity (busy poll; expected wait = half).
    target_poll_interval_ns: int = 150
    #: In-capsule data threshold: writes up to this size travel inside
    #: the command capsule (Linux/SPDK default 4 KiB for RDMA) —
    #: otherwise the target issues an RDMA READ to pull the data.
    in_capsule_data_size: int = 4096
    #: Command capsule size (64 B SQE + NVMe-oF header).
    capsule_bytes: int = 72
    #: Response capsule size (16 B CQE + header).
    response_bytes: int = 32


# ---------------------------------------------------------------------------
# Reliability / fault recovery
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ReliabilityConfig:
    """Driver-side fault-recovery knobs (see docs/fault_injection.md).

    All recovery machinery defaults to *off* (the zero values below) so
    the calibrated fault-free benchmarks are bit-identical with or
    without this subsystem; chaos scenarios enable it explicitly.
    """

    #: Client: time to wait for a command completion before aborting and
    #: retrying it.  0 disables command timeouts (wait forever, the
    #: paper's fault-free behaviour).  When enabling, keep this well
    #: above the p99 completion latency of the workload or healthy
    #: commands get duplicated by spurious retries.
    command_timeout_ns: int = 0
    #: Client: bounded retries after a command timeout before the
    #: request fails with ``STATUS_HOST_TIMEOUT``.
    max_retries: int = 3
    #: Client: additional backoff added to the timeout per retry
    #: (attempt ``n`` waits ``command_timeout_ns + n * retry_backoff_ns``).
    retry_backoff_ns: int = 100_000
    #: Client: interval between liveness heartbeat writes into the
    #: manager's metadata segment.  0 disables heartbeats (no lease is
    #: established, so the manager never reclaims this client).
    heartbeat_interval_ns: int = 0
    #: Manager: a client whose newest heartbeat is older than this is
    #: declared dead and its queue pairs are reclaimed.  0 disables the
    #: lease watchdog entirely.  Keep several heartbeat intervals wide
    #: or transient link loss triggers false reclaims.
    lease_timeout_ns: int = 0
    #: Manager: how often the lease watchdog scans the heartbeat table.
    lease_check_interval_ns: int = 250_000


# ---------------------------------------------------------------------------
# Shared I/O queue pairs (docs/queue_sharing.md)
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class QpSharingConfig:
    """Admission policy for multiplexing clients onto shared queue pairs.

    The device exposes ``NvmeConfig.max_queue_pairs - 1`` I/O queue
    pairs (31 on the P4800X), which caps a private-QP-per-host cluster
    at 31 clients.  Sharing breaks that limit: the manager reserves
    ``reserved_qps`` queue ids for *shared* queue pairs whose submission
    ring is split into fixed slot windows, one window per tenant.
    Admission is private-first — clients get a private QP while more
    than ``reserved_qps`` queue ids remain free — then least-loaded
    shared.
    """

    #: Master switch.  Off restores the paper's strict 31-client limit
    #: (the 32nd client is refused with RPC_NO_QUEUES).
    enabled: bool = True
    #: Queue ids held back from private admission and used to create
    #: shared QPs on demand.  Also the maximum number of shared QPs.
    reserved_qps: int = 4
    #: Ring size of a shared submission queue (and its completion
    #: queue).  Must not exceed ``NvmeConfig.max_queue_entries``.
    sq_entries: int = 256
    #: Slot-window size per tenant; ``sq_entries // window_entries``
    #: windows exist per shared QP, capped by the 4-bit CID tenant
    #: namespace (16 tenants).
    window_entries: int = 16
    #: Client-side doorbell batching for shared-SQ tenants: submissions
    #: within this many ns ring the (tenant-encoded) doorbell once.
    #: 0 rings per submission, exactly like a private QP.
    doorbell_batch_ns: int = 0

    @property
    def windows_per_qp(self) -> int:
        return min(self.sq_entries // self.window_entries, 16)

    def capacity(self, io_queue_pairs: int) -> int:
        """Total admissible clients given the device's I/O QP count."""
        if not self.enabled:
            return io_queue_pairs
        reserve = min(self.reserved_qps, io_queue_pairs)
        return (io_queue_pairs - reserve
                + reserve * self.windows_per_qp)


# ---------------------------------------------------------------------------
# Per-tenant QoS at the shared-SQ arbitration point (docs/qos.md)
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class QosConfig:
    """Fetch arbitration + admission throttling for shared SQs.

    Everything defaults to *off* (the zero/False values below) so the
    calibrated seed runs stay bit-identical; QoS scenarios enable it
    explicitly.  When off, the shared-SQ worker runs the original
    one-SQE-per-grant round-robin from docs/queue_sharing.md.
    """

    #: Master switch.  Off keeps the original round-robin fetch loop.
    enabled: bool = False
    #: Arbitration policy applied at the shared-SQ fetch point:
    #: ``fifo``  — global arrival order across windows (a tenant's deep
    #:             backlog delays everyone behind it; the baseline that
    #:             demonstrably fails to isolate),
    #: ``wfq``   — deficit round-robin, weight-proportional service,
    #: ``strict``— strict priority by weight, round-robin within a tier.
    policy: str = "fifo"
    #: DRR quantum in SQEs credited each time the round-robin pointer
    #: reaches a backlogged window (multiplied by the window's weight).
    quantum: int = 4
    #: Per-window weights, indexed by window index; windows beyond the
    #: tuple get ``default_weight``.  Only ``wfq``/``strict`` read them.
    weights: tuple[int, ...] = ()
    default_weight: int = 1
    #: Admission throttling: when a tenant's burn-rate alert (see
    #: docs/observability.md) is active, clamp its driver-side window of
    #: outstanding commands to this many; 0 disables throttling.
    throttle_window: int = 0
    #: How often the throttle process re-reads the SLO engine's alerts.
    throttle_check_interval_ns: int = 200_000
    #: An alert must stay resolved this long before the clamp is lifted
    #: (prevents fire/resolve flapping from bouncing the window).
    throttle_cooldown_ns: int = 400_000

    def weight(self, index: int) -> int:
        if index < len(self.weights):
            return max(1, self.weights[index])
        return max(1, self.default_weight)

    def __post_init__(self) -> None:
        if self.policy not in ("fifo", "wfq", "strict"):
            raise ValueError(f"unknown qos policy {self.policy!r}")
        if self.quantum < 1:
            raise ValueError("quantum must be >= 1 SQE")
        if self.throttle_window < 0:
            raise ValueError("throttle_window must be >= 0")


# ---------------------------------------------------------------------------
# Cluster / NTB scenario parameters
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """Dolphin-style NTB cluster layout parameters.

    The remote path host->device crosses: local MXH932 adapter chip,
    MXS924 cluster switch chip, remote MXH932 adapter chip — i.e. three
    switch chips each direction (paper Fig. 9b), plus the remote host's
    root complex.
    """

    #: Chips on the NTB path between two hosts (adapter+switch+adapter).
    ntb_path_chips: int = 3
    #: NTB link bandwidth per direction (Gen3 x8 cabled, effective).
    ntb_link_bandwidth: float = gb_per_s(7.0)
    #: Per-host NTB BAR aperture for mapping remote segments.
    ntb_aperture_bytes: int = 1 << 30
    #: DMA bounce-buffer partition size per in-flight request.
    bounce_partition_bytes: int = 128 * 1024
    #: Number of bounce partitions (bounds requests in flight per queue).
    bounce_partitions: int = 64


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    """Top-level bundle handed to scenario builders."""

    pcie: PcieConfig = dataclasses.field(default_factory=PcieConfig)
    nvme: NvmeConfig = dataclasses.field(default_factory=NvmeConfig)
    host: HostSoftwareConfig = dataclasses.field(
        default_factory=HostSoftwareConfig)
    rdma: RdmaConfig = dataclasses.field(default_factory=RdmaConfig)
    nvmeof: NvmeofConfig = dataclasses.field(default_factory=NvmeofConfig)
    cluster: ClusterConfig = dataclasses.field(default_factory=ClusterConfig)
    reliability: ReliabilityConfig = dataclasses.field(
        default_factory=ReliabilityConfig)
    sharing: QpSharingConfig = dataclasses.field(
        default_factory=QpSharingConfig)
    qos: QosConfig = dataclasses.field(default_factory=QosConfig)
    seed: int = 42


DEFAULT_CONFIG = SimulationConfig()


def replace(config, **updates):
    """``dataclasses.replace`` re-export for scenario ablations."""
    return dataclasses.replace(config, **updates)
