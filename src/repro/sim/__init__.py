"""Discrete-event simulation kernel (integer-nanosecond clock).

Public surface::

    from repro.sim import Simulator, Resource, Store, Signal
"""

from .core import Simulator
from .events import AllOf, AnyOf, Event, Timeout
from .process import Interrupt, Process
from .resources import Request, Resource, Signal, Store
from .rng import RngRegistry
from .shard import (ShardBoundary, ShardError, ShardRun, merge_disjoint,
                    merge_metric_snapshots, run_sharded, value_fingerprint)
from .stats import (BoxplotStats, Counter, LatencyRecorder, iops,
                    throughput_bytes_per_s)
from .trace import NULL_TRACER, NullTracer, Tracer, TraceRecord

__all__ = [
    "Simulator", "Event", "Timeout", "AnyOf", "AllOf",
    "Process", "Interrupt",
    "Resource", "Request", "Store", "Signal",
    "RngRegistry",
    "ShardBoundary", "ShardError", "ShardRun", "run_sharded",
    "merge_disjoint", "merge_metric_snapshots", "value_fingerprint",
    "LatencyRecorder", "BoxplotStats", "Counter", "iops",
    "throughput_bytes_per_s",
    "Tracer", "TraceRecord", "NullTracer", "NULL_TRACER",
]
