"""Discrete-event simulation kernel (integer-nanosecond clock).

Public surface::

    from repro.sim import Simulator, Resource, Store, Signal
"""

from .core import Simulator
from .events import AllOf, AnyOf, Event, Timeout
from .process import Interrupt, Process
from .resources import Request, Resource, Signal, Store
from .rng import RngRegistry
from .stats import (BoxplotStats, Counter, LatencyRecorder, iops,
                    throughput_bytes_per_s)
from .trace import NULL_TRACER, NullTracer, Tracer, TraceRecord

__all__ = [
    "Simulator", "Event", "Timeout", "AnyOf", "AllOf",
    "Process", "Interrupt",
    "Resource", "Request", "Store", "Signal",
    "RngRegistry",
    "LatencyRecorder", "BoxplotStats", "Counter", "iops",
    "throughput_bytes_per_s",
    "Tracer", "TraceRecord", "NullTracer", "NULL_TRACER",
]
