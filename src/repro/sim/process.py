"""Generator-coroutine processes.

A :class:`Process` drives a generator: each value the generator yields must
be an :class:`~repro.sim.events.Event`; the process suspends until that
event is processed, then resumes with the event's value (or the event's
exception thrown into the generator).  The process itself is an event that
triggers when the generator returns, carrying the generator's return value.
"""

from __future__ import annotations

import typing as t

from heapq import heappush

from .events import URGENT, Event, _PENDING

if t.TYPE_CHECKING:  # pragma: no cover
    from .core import Simulator


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called."""

    @property
    def cause(self) -> t.Any:
        return self.args[0] if self.args else None


class Process(Event):
    """An event-yielding coroutine scheduled on the simulator."""

    __slots__ = ("_generator", "_target", "name", "domain")

    def __init__(self, sim: "Simulator", generator: t.Generator,
                 name: str | None = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        # hot-path: inline Event field init (detached posted writes spawn
        # one process per TLP, so construction cost is on the data path).
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._processed = False
        self._defused = False
        self._generator = generator
        self.domain = sim._domain
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off at the current instant, ahead of normal events, so a
        # newly spawned process observes the state that existed when it
        # was spawned.
        boot = Event.__new__(Event)
        boot.sim = sim
        boot.callbacks = [self._resume]
        boot._value = None
        boot._ok = True
        boot._processed = False
        boot._defused = False
        heappush(sim._queue, (sim._now, URGENT, next(sim._sequence), boot))
        self._target = boot

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: t.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The interrupt is delivered asynchronously via an urgent event so
        interrupting from within another process is safe.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already terminated")
        if self.sim.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        kick = Event(self.sim)
        kick._ok = False
        kick._value = Interrupt(cause)
        kick.defuse()
        # Detach from the event currently waited on, then deliver.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        kick.callbacks.append(self._resume)
        self.sim._push(kick, 0, URGENT)

    # -- driving the generator ------------------------------------------------

    def _resume(self, event: Event) -> None:
        # hot-path: every yield in every process funnels through here,
        # so the generator and bound method are hoisted and the yielded
        # target is probed with attribute access instead of isinstance
        # (non-events surface as AttributeError on the error path).
        sim = self.sim
        generator = self._generator
        if generator is None:
            # Frozen by the shard runner: this domain's state is owned by
            # another replica, so the coroutine must never advance here.
            return
        frozen = sim._frozen
        if frozen is not None and self.domain is not None \
                and self.domain in frozen:
            # Foreign-domain process in a sharded replica: stay parked.
            # Signal/store wake-ups may still target it (e.g. a replicated
            # fault injector clearing a stall everywhere), but only the
            # owning replica may advance the coroutine.
            return
        sim._active_process = self
        outer_domain = sim._domain
        sim._domain = self.domain
        send = generator.send
        resume = self._resume
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    event._defused = True
                    target = generator.throw(
                        t.cast(BaseException, event._value))
            except StopIteration as stop:
                self.succeed(stop.value)
                break
            except BaseException as exc:
                self.fail(exc)
                break

            try:
                if target._processed:
                    # Already done: loop immediately with its outcome.
                    event = target
                    continue
                callbacks = target.callbacks
            except AttributeError:
                exc = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {target!r}")
                try:
                    generator.throw(exc)
                except StopIteration as stop:
                    self.succeed(stop.value)
                except BaseException as err:
                    self.fail(err)
                break

            if callbacks is None:  # pragma: no cover - defensive
                raise RuntimeError("target event is being processed")
            callbacks.append(resume)
            self._target = target
            break
        sim._active_process = None
        sim._domain = outer_domain
