"""Synchronisation primitives built on events.

``Resource``
    Counted FIFO resource (link occupancy, DMA engines, media channels).

``Store``
    Unbounded FIFO of Python objects with blocking ``get`` (mailboxes,
    request queues between driver layers).

``Signal``
    Broadcast edge: ``wait()`` returns an event triggered by the next
    ``fire()``.  Used to model "something changed, re-check your state"
    wakeups such as doorbell writes and CQ-memory watchpoints without
    busy-poll event storms.
"""

from __future__ import annotations

import typing as t
from collections import deque
from heapq import heappush

from .events import NORMAL, Event, _PENDING

if t.TYPE_CHECKING:  # pragma: no cover
    from .core import Simulator


class Request(Event):
    """A pending claim on a :class:`Resource`; triggers when granted."""

    __slots__ = ("resource",)

    def __init__(self, sim: "Simulator", resource: "Resource") -> None:
        # hot-path: inline Event field init (one Request per link per
        # transaction — cut-through occupancy burns these constantly).
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._processed = False
        self._defused = False
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: t.Any) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with strict FIFO granting.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release(req)
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        #: deterministic creation index — use this (never ``id()``) as a
        #: canonical lock-ordering key, or runs stop being reproducible
        self.order = sim._next_resource_order()
        self._holders: set[Request] = set()
        self._waiting: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of currently granted requests."""
        return len(self._holders)

    @property
    def queued(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._waiting)

    def request(self) -> Request:
        # hot-path: the uncontended grant inlines succeed(req) — same
        # fields, same zero-delay NORMAL enqueue, one fresh sequence
        # number — minus the double-trigger guard a fresh event can't
        # need.  Request construction and the push are flattened too:
        # cut-through occupancy issues one of these per link crossing.
        sim = self.sim
        req = Request.__new__(Request)
        req.sim = sim
        req.callbacks = []
        req._ok = True
        req._processed = False
        req._defused = False
        req.resource = self
        if len(self._holders) < self.capacity:
            self._holders.add(req)
            req._value = req
            heappush(sim._queue,
                     (sim._now, NORMAL, next(sim._sequence), req))
        else:
            req._value = _PENDING
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        if request in self._holders:
            self._holders.discard(request)
        else:
            # Releasing a never-granted request cancels it.
            try:
                self._waiting.remove(request)
                return
            except ValueError:
                raise RuntimeError("releasing a request not issued here") from None
        sim = self.sim
        while self._waiting and len(self._holders) < self.capacity:
            nxt = self._waiting.popleft()
            self._holders.add(nxt)
            nxt._value = nxt
            heappush(sim._queue,
                     (sim._now, NORMAL, next(sim._sequence), nxt))

    def acquire(self) -> t.Generator[Event, t.Any, Request]:
        """Convenience sub-generator: ``req = yield from res.acquire()``."""
        req = self.request()
        yield req
        return req


class Store:
    """Unbounded FIFO of items with blocking ``get``."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._items: deque[t.Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: t.Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        # hot-path: inline succeed on the fresh getter event (same
        # ordering — zero-delay NORMAL push with a fresh sequence number).
        if self._getters:
            ev = self._getters.popleft()
            if ev._value is not _PENDING:
                raise RuntimeError(f"{ev!r} already triggered")
            ev._value = item
            sim = self.sim
            heappush(sim._queue,
                     (sim._now, NORMAL, next(sim._sequence), ev))
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that triggers with the next available item."""
        # hot-path
        sim = self.sim
        ev = Event.__new__(Event)
        ev.sim = sim
        ev.callbacks = []
        ev._ok = True
        ev._processed = False
        ev._defused = False
        if self._items:
            ev._value = self._items.popleft()
            heappush(sim._queue,
                     (sim._now, NORMAL, next(sim._sequence), ev))
        else:
            ev._value = _PENDING
            self._getters.append(ev)
        return ev

    def try_get(self) -> t.Any | None:
        """Non-blocking pop; None when empty."""
        return self._items.popleft() if self._items else None


class Signal:
    """Broadcast wakeup edge.

    ``wait()`` hands back an event; the next ``fire(value)`` triggers all
    outstanding waits.  Each wait observes at most one fire — callers that
    must not miss edges should re-arm before re-checking state, i.e.::

        while not condition():
            ev = signal.wait()
            yield ev
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._waiters: list[Event] = []
        self.fires = 0

    def wait(self) -> Event:
        ev = Event(self.sim)
        self._waiters.append(ev)
        return ev

    def fire(self, value: t.Any = None) -> None:
        self.fires += 1
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)
