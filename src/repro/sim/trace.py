"""Lightweight structured tracing.

Tracing is off by default and costs one attribute check per emit; when a
sink is attached, every record is a plain tuple ``(time_ns, category,
message, payload)``.  Used by tests to assert ordering properties (e.g.
"the controller never fetched a command before its doorbell write
arrived") and by examples to narrate a run.
"""

from __future__ import annotations

import dataclasses
import typing as t

if t.TYPE_CHECKING:  # pragma: no cover
    from .core import Simulator


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    time_ns: int
    category: str
    message: str
    payload: dict[str, t.Any] = dataclasses.field(default_factory=dict)

    def as_tuple(self) -> tuple:
        """Stable, hashable, order-independent view of the record —
        the canonical comparison key for replay/determinism tests."""
        return (self.time_ns, self.category, self.message,
                tuple(sorted(self.payload.items())))


class Tracer:
    """Collects :class:`TraceRecord` items, optionally filtered by category."""

    def __init__(self, sim: "Simulator",
                 categories: t.Collection[str] | None = None) -> None:
        self.sim = sim
        self.records: list[TraceRecord] = []
        self.categories = frozenset(categories) if categories else None
        self._enabled = True

    def emit(self, category: str, message: str, **payload: t.Any) -> None:
        if not self._enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        # Copy the payload: the record must capture the values at emit
        # time even if the caller keeps mutating the objects it passed.
        self.records.append(
            TraceRecord(self.sim.now, category, message, dict(payload)))

    def disable(self) -> None:
        self._enabled = False

    def enable(self) -> None:
        self._enabled = True

    def filter(self, category: str) -> list[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()


class NullTracer:
    """No-op stand-in used when tracing is disabled (the default)."""

    records: list[TraceRecord] = []

    def emit(self, category: str, message: str, **payload: t.Any) -> None:
        pass

    def filter(self, category: str) -> list[TraceRecord]:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
