"""Sharded conservative-lookahead execution of a cluster simulation.

The paper's testbed is a PCIe cluster: per-host timing domains joined
by NTB adapters whose one-way forwarding latency is bounded below by
the switch-chip minimum plus the root-complex cost.  That physical
bound is a classic conservative-PDES *lookahead*: an event executed in
domain A at time ``t`` cannot affect domain B before ``t + W`` (``W``
= min NTB hop latency), so every domain may safely run ``W`` ahead of
the global horizon without ever receiving a message in its past.

This module exploits it with a **replicated-build** design:

* each shard builds the *entire* cluster from the same seed (cheap —
  setup is a few thousand events) so every replica agrees bit-for-bit
  on topology, addresses and RNG stream positions;
* after a quiesce point the runner freezes all processes tagged with a
  foreign timing domain (:class:`~repro.sim.core.Simulator` ``_frozen``)
  and restricts the fabric's :class:`ShardBoundary` to the shard's
  *owned* domains;
* cross-domain transactions decompose at the boundary: the source
  replica models the source-side links and RNG draws, then hands an
  *envelope* ``(t_eff, send_time, src_idx, seq, payload)`` to the
  destination domain's replica, which models the destination-side
  links on arrival (see ``repro.pcie.fabric``);
* replicas advance in lock-stepped *windows* ``[B, nxt + W)`` where
  ``nxt`` is the earliest pending event or undelivered envelope across
  all shards.  Envelopes always satisfy ``t_eff >= send_time + W``, so
  a window never needs a message produced inside itself — the barrier
  exchange between windows is sufficient (no rollback, no anti-messages).

**Determinism contract.**  For one seed, the merged results of a run
are bit-identical whether executed as a single process (``shards=1``),
as K replicas multiplexed in one process (*virtual* sharding, the mode
tests use), or as K forked worker processes.  The ingredients:

* per-``(src, dst)`` channel sequence numbers make envelope order a
  total order independent of wall-clock interleaving;
* envelope application is scheduled URGENT so it precedes same-instant
  normal events regardless of local queue contents;
* windows run ``until = nxt + W - 1`` (strictly *before* the horizon),
  so an envelope effective exactly at the horizon is always injected
  before any local event at that instant executes;
* every merge helper in this module iterates deterministically (the
  ``shard-channel-order`` staticcheck rule enforces that no function
  marked ``# cross-shard merge`` iterates an unordered set or dict).

``REPRO_NO_SHARDING=1`` in the environment coerces any ``run_sharded``
call back to the plain single-process path (escape hatch; results are
identical by the contract above, only slower).
"""

from __future__ import annotations

import dataclasses
import os
import typing as t

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import Simulator

__all__ = [
    "ShardError", "ShardBoundary", "ShardRun", "run_sharded",
    "merge_disjoint", "merge_metric_snapshots", "value_fingerprint",
]

#: Upper bound on quiesce steps before declaring the protocol wedged.
_QUIESCE_LIMIT = 10_000_000


class ShardError(Exception):
    """Sharding protocol violation (lookahead breach, divergent merge,
    feature unsupported under ``shards > 1``, ...)."""


# ---------------------------------------------------------------------------
# Boundary: ordered channels + domain map installed on the fabric
# ---------------------------------------------------------------------------

class ShardBoundary:
    """Partition map and outgoing message channels of one replica.

    Installed as ``fabric.boundary``.  Before switchover ``owned``
    covers every domain, so all sends self-deliver and the testbed
    behaves exactly like an unsharded one (the degenerate boundary the
    ``shards=1`` comparison mode runs with).
    """

    __slots__ = ("sim", "domains", "node_domain", "lookahead_ns",
                 "_index", "owned", "_seqs", "_outboxes", "messages_out")

    def __init__(self, sim: "Simulator", domains: t.Sequence[str],
                 node_domain: t.Mapping[str, str],
                 lookahead_ns: int) -> None:
        if lookahead_ns < 1:
            raise ShardError(f"lookahead must be positive: {lookahead_ns}")
        self.sim = sim
        #: all timing domains, in deterministic declaration order; the
        #: position of a domain here is its shard-assignment index
        self.domains: tuple[str, ...] = tuple(domains)
        #: node name -> timing domain (nodes absent from the map, e.g. a
        #: shared top switch, are neutral: never a cross-domain target)
        self.node_domain: dict[str, str] = dict(node_domain)
        #: conservative lookahead W (min one-way cross-domain latency)
        self.lookahead_ns = int(lookahead_ns)
        self._index = {dom: i for i, dom in enumerate(self.domains)}
        #: domains whose state this replica advances; sends to owned
        #: domains self-deliver, everything else joins a channel
        self.owned: frozenset[str] = frozenset(self.domains)
        # (src_idx, dst_idx) -> next sequence number.  Stamped on every
        # send (owned or not) so channel sequences are identical across
        # shard counts.
        self._seqs: dict[tuple[int, int], int] = {}
        self._outboxes: dict[str, list[tuple]] = {}
        #: envelopes handed to foreign domains (telemetry / benchmarks)
        self.messages_out = 0

    def stamp(self, dst_dom: str, t_eff: int, send_time: int,
              payload: tuple) -> tuple:
        """Build the ordered envelope for one cross-domain message.

        ``payload[1]`` is by protocol the *sending-side* node name, from
        which the source domain (and hence the channel) derives."""
        src_dom = self.node_domain[payload[1]]
        key = (self._index[src_dom], self._index[dst_dom])
        seq = self._seqs.get(key, 0)
        self._seqs[key] = seq + 1
        return (t_eff, send_time, key[0], seq, payload)

    def enqueue(self, dst_dom: str, env: tuple, now: int) -> None:
        """Queue an envelope for a foreign domain, enforcing lookahead."""
        if env[0] < now + self.lookahead_ns:
            raise ShardError(
                f"lookahead violation: envelope to {dst_dom!r} effective "
                f"at {env[0]} < send {now} + W {self.lookahead_ns} "
                f"(payload tag {env[4][0]!r})")
        box = self._outboxes.get(dst_dom)
        if box is None:
            box = self._outboxes[dst_dom] = []
        box.append(env)
        self.messages_out += 1

    def drain(self) -> list[tuple[str, list[tuple]]]:
        """Take all queued envelopes, grouped by destination domain.

        # cross-shard merge — iterates the declared domain order, never
        the accumulation dict, so the result order is independent of
        which domain happened to send first."""
        if not self._outboxes:
            return []
        boxes, self._outboxes = self._outboxes, {}
        out = []
        for dom in self.domains:
            envs = boxes.pop(dom, None)
            if envs:
                out.append((dom, envs))
        if boxes:
            raise ShardError(
                f"envelopes queued for unknown domains: {sorted(boxes)}")
        return out


# ---------------------------------------------------------------------------
# Program contract + switchover
# ---------------------------------------------------------------------------
#
# ``run_sharded`` drives *shard programs*: duck-typed objects with
#
#   prog.sim              repro.sim.Simulator
#   prog.fabric           fabric with .boundary (ShardBoundary),
#                         .inflight and ._deliver(env)
#   prog.domains          tuple of timing-domain names (host names)
#   prog.start(owned)     spawn workload processes for the owned domains
#                         (plus any deliberately replicated global
#                         processes, e.g. a fault injector)
#   prog.goals_done()     True once every owned workload finished
#   prog.collect(owned)   picklable result dict for this replica
#
# Builders for the paper's scenarios live in repro.scenarios.sharded.


def _owned_of(domains: tuple[str, ...], index: int,
              shards: int) -> frozenset[str]:
    """Static domain->shard assignment: domain i belongs to shard i%K."""
    return frozenset(dom for i, dom in enumerate(domains)
                     if i % shards == index)


def _switchover(prog: t.Any, owned: frozenset[str]) -> None:
    """Quiesce the replica, then restrict it to its owned domains.

    All replicas are bit-identical up to this point, so the quiesce
    (run until no transaction is mid-flight on the fabric) lands every
    replica on the same instant with the same state; freezing foreign
    domains afterwards cannot strand a half-applied transaction."""
    sim = prog.sim
    fabric = prog.fabric
    boundary = fabric.boundary
    if boundary is None:
        raise ShardError(
            "program fabric has no ShardBoundary installed "
            "(build the testbed with shard_boundary=True)")
    steps = 0
    while fabric.inflight > 0:
        if sim.peek() is None:
            raise ShardError(
                f"quiesce deadlock: {fabric.inflight} transactions "
                f"in flight but the event queue is empty")
        sim.step()
        steps += 1
        if steps > _QUIESCE_LIMIT:
            raise ShardError("quiesce did not converge")
    foreign = frozenset(boundary.domains) - owned
    if foreign:
        sim._frozen = foreign
    boundary.owned = frozenset(owned)


def _state_of(prog: t.Any) -> tuple:
    """Barrier-exchange state: (peek, outbox, goals_done, inflight)."""
    outbox = prog.fabric.boundary.drain()
    return (prog.sim.peek(), outbox, bool(prog.goals_done()),
            prog.fabric.inflight)


# ---------------------------------------------------------------------------
# Replica handles: same send/recv surface inline and over a pipe
# ---------------------------------------------------------------------------

class _InlineShard:
    """A replica multiplexed into the calling process (virtual mode)."""

    parallel = False

    def __init__(self, build: t.Callable[[], t.Any], index: int,
                 shards: int) -> None:
        self.index = index
        self._shards = shards
        self._prog = build()
        self._owned: frozenset[str] = frozenset()
        self._pending: t.Any = None

    def hello(self) -> tuple[tuple[str, ...], int]:
        prog = self._prog
        boundary = prog.fabric.boundary
        if boundary is None:
            raise ShardError("built program has no ShardBoundary")
        return tuple(prog.domains), boundary.lookahead_ns

    def send_begin(self) -> None:
        prog = self._prog
        self._owned = _owned_of(tuple(prog.domains), self.index,
                                self._shards)
        _switchover(prog, self._owned)
        prog.start(self._owned)
        self._pending = _state_of(prog)

    def send_step(self, msgs: list[tuple], until: int | None) -> None:
        prog = self._prog
        deliver = prog.fabric._deliver
        for env in msgs:
            deliver(env)
        if until is not None:
            prog.sim.run(until=until)
        self._pending = _state_of(prog)

    def recv_state(self) -> tuple:
        state, self._pending = self._pending, None
        return state

    def send_finish(self, final: int | None) -> None:
        prog = self._prog
        if final is not None:
            prog.sim.run(until=final)
        self._pending = (prog.collect(self._owned),
                         prog.sim.events_processed, prog.sim.now)

    def recv_result(self) -> tuple:
        return self.recv_state()

    def close(self) -> None:
        self._prog = None


def _worker_main(build: t.Callable[[], t.Any], index: int, shards: int,
                 conn: t.Any) -> None:
    """Forked-worker body: build, hand-shake, then obey the barrier loop."""
    try:
        prog = build()
        boundary = prog.fabric.boundary
        if boundary is None:
            raise ShardError("built program has no ShardBoundary")
        domains = tuple(prog.domains)
        conn.send(("hello", domains, boundary.lookahead_ns))
        owned = _owned_of(domains, index, shards)
        _switchover(prog, owned)
        prog.start(owned)
        conn.send(("state",) + _state_of(prog))
        deliver = prog.fabric._deliver
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "step":
                _op, msgs, until = cmd
                for env in msgs:
                    deliver(env)
                if until is not None:
                    prog.sim.run(until=until)
                conn.send(("state",) + _state_of(prog))
            elif op == "finish":
                final = cmd[1]
                if final is not None:
                    prog.sim.run(until=final)
                conn.send(("result", prog.collect(owned),
                           prog.sim.events_processed, prog.sim.now))
                return
            else:  # "stop"
                return
    except BaseException as exc:  # surface the traceback to the parent
        import traceback
        try:
            conn.send(("error", repr(exc), traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


class _ForkedShard:
    """A replica in a forked worker process (multiprocess mode)."""

    parallel = True

    def __init__(self, build: t.Callable[[], t.Any], index: int,
                 shards: int) -> None:
        import multiprocessing
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise ShardError(
                "multiprocess sharding requires the fork start method "
                "(use virtual sharding on this platform)") from exc
        self.index = index
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_worker_main, args=(build, index, shards, child),
            name=f"repro-shard-{index}", daemon=True)
        self._proc.start()
        child.close()

    def _recv(self, want: str) -> tuple:
        try:
            msg = self._conn.recv()
        except EOFError:
            raise ShardError(
                f"shard {self.index} worker died without a reply") from None
        if msg[0] == "error":
            raise ShardError(
                f"shard {self.index} worker failed: {msg[1]}\n{msg[2]}")
        if msg[0] != want:
            raise ShardError(
                f"shard {self.index} protocol error: expected {want!r}, "
                f"got {msg[0]!r}")
        return msg

    def hello(self) -> tuple[tuple[str, ...], int]:
        _tag, domains, lookahead = self._recv("hello")
        return tuple(domains), lookahead

    def send_begin(self) -> None:
        pass  # the worker begins on its own after the hello

    def send_step(self, msgs: list[tuple], until: int | None) -> None:
        self._conn.send(("step", msgs, until))

    def recv_state(self) -> tuple:
        return self._recv("state")[1:]

    def send_finish(self, final: int | None) -> None:
        self._conn.send(("finish", final))

    def recv_result(self) -> tuple:
        return self._recv("result")[1:]

    def close(self) -> None:
        try:
            self._conn.close()
        except Exception:
            pass
        self._proc.join(timeout=30)
        if self._proc.is_alive():  # pragma: no cover - defensive
            self._proc.terminate()
            self._proc.join(timeout=5)


# ---------------------------------------------------------------------------
# The barrier loop
# ---------------------------------------------------------------------------

def _envelope_order(env: tuple):
    """Deterministic channel-merge order: (t_eff, send_time, src, seq)."""
    return env[:4]


def _barrier_loop(handles: list, domains: tuple[str, ...], lookahead: int,
                  mode: str, deadline: int | None) -> tuple[int, int]:
    """Advance all replicas window-by-window until done.

    Returns ``(windows, messages)``.  Window rule: with ``nxt`` the
    earliest pending event or undelivered envelope anywhere, every
    replica may run to ``nxt + W - 1`` inclusive — any envelope a
    replica produces inside the window is effective at or after
    ``nxt + W`` (its send time is at least ``nxt`` and one-way
    cross-domain latency is at least ``W``), so it is injected at the
    next barrier before any event at its effective instant runs."""
    shards = len(handles)
    owner = {dom: i % shards for i, dom in enumerate(domains)}
    states = [h.recv_state() for h in handles]
    windows = 0
    messages = 0
    while True:
        inbox: list[list[tuple]] = [[] for _ in range(shards)]
        moved = 0
        msg_min: int | None = None
        for state in states:
            for dst_dom, envs in state[1]:
                inbox[owner[dst_dom]].extend(envs)
                moved += len(envs)
                for env in envs:
                    if msg_min is None or env[0] < msg_min:
                        msg_min = env[0]
        for box in inbox:
            box.sort(key=_envelope_order)
        messages += moved

        nxt = msg_min
        for state in states:
            peek = state[0]
            if peek is not None and (nxt is None or peek < nxt):
                nxt = peek

        if mode == "goals":
            if moved == 0 and all(s[2] for s in states) \
                    and all(s[3] == 0 for s in states):
                break
            if nxt is None:
                stuck = sum(s[3] for s in states)
                raise ShardError(
                    f"sharded run deadlocked: goals unmet, no events "
                    f"pending in any shard ({stuck} transactions stuck)")
            until: int | None = nxt + lookahead - 1
        else:  # fixed deadline
            if nxt is not None and nxt <= deadline:
                until = min(nxt + lookahead - 1, deadline)
            elif moved:
                # All remaining work is beyond the deadline but some
                # envelopes are still in hand: inject them (their
                # events will simply never run) and re-exchange.
                until = None
            else:
                break

        if until is not None:
            windows += 1
        for handle, box in zip(handles, inbox):
            handle.send_step(box, until)
        states = [h.recv_state() for h in handles]
    return windows, messages


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class ShardRun:
    """Outcome of a (possibly degenerate) sharded run."""

    shards: int
    parallel: bool
    mode: str
    #: lock-step windows executed (0 for the single-shard fast path)
    windows: int
    #: cross-shard envelopes exchanged
    messages: int
    #: total events dispatched, summed over replicas
    events: int
    #: final simulated instant (max over replicas)
    sim_now: int
    #: per-shard ``collect()`` dicts, in shard order
    results: list
    #: ``merge(results)`` when a merge callable was supplied, else None
    merged: t.Any = None


def run_sharded(build: t.Callable[[], t.Any], *, shards: int = 1,
                parallel: bool = False, mode: str = "goals",
                deadline: int | None = None,
                merge: t.Callable[[list], t.Any] | None = None) -> ShardRun:
    """Run a shard program across ``shards`` replicas.

    ``build`` must construct a fresh program (see the contract above)
    and is invoked once per replica — under ``parallel=True`` inside
    forked workers, so it must not depend on state mutated after the
    call to ``run_sharded``.  ``mode`` is ``"goals"`` (run until every
    workload finishes) or ``"deadline"`` (run to a fixed instant, the
    mode whose merged telemetry is byte-comparable across shard
    counts).  Results are bit-identical for any ``shards``/``parallel``
    combination; see the module docstring for the contract.
    """
    if mode not in ("goals", "deadline"):
        raise ShardError(f"unknown mode {mode!r}")
    if mode == "deadline":
        if deadline is None or deadline < 0:
            raise ShardError(f"deadline mode needs a deadline: {deadline!r}")
    elif deadline is not None:
        raise ShardError("deadline given but mode is 'goals'")
    if shards < 1:
        raise ShardError(f"shards must be >= 1: {shards}")
    if os.environ.get("REPRO_NO_SHARDING") == "1":
        shards, parallel = 1, False

    if shards == 1 and not parallel:
        # Single-shard fast path: the boundary is degenerate (every
        # domain owned, every send self-delivers) so no windows, no
        # freeze and no barrier are needed.
        prog = build()
        boundary = prog.fabric.boundary
        if boundary is None:
            raise ShardError("built program has no ShardBoundary")
        owned = frozenset(prog.domains)
        procs = prog.start(owned)
        sim = prog.sim
        if mode == "goals":
            for proc in procs or ():
                sim.run(until=proc)
            if not prog.goals_done():
                raise ShardError("workloads returned but goals are unmet")
        else:
            sim.run(until=deadline)
        results = [prog.collect(owned)]
        return ShardRun(
            shards=1, parallel=False, mode=mode, windows=0,
            messages=boundary.messages_out, events=sim.events_processed,
            sim_now=sim.now, results=results,
            merged=merge(results) if merge is not None else None)

    factory = _ForkedShard if parallel else _InlineShard
    handles = [factory(build, k, shards) for k in range(shards)]
    try:
        hellos = [h.hello() for h in handles]
        domains, lookahead = hellos[0]
        for k, hello in enumerate(hellos):
            if hello != (domains, lookahead):
                raise ShardError(
                    f"replica divergence at build: shard {k} reports "
                    f"{hello!r}, shard 0 reports {(domains, lookahead)!r}")
        for handle in handles:
            handle.send_begin()
        windows, messages = _barrier_loop(
            handles, domains, lookahead, mode, deadline)
        final = deadline if mode == "deadline" else None
        for handle in handles:
            handle.send_finish(final)
        replies = [h.recv_result() for h in handles]
    finally:
        for handle in handles:
            handle.close()

    results = [reply[0] for reply in replies]
    return ShardRun(
        shards=shards, parallel=parallel, mode=mode, windows=windows,
        messages=messages, events=sum(reply[1] for reply in replies),
        sim_now=max(reply[2] for reply in replies), results=results,
        merged=merge(results) if merge is not None else None)


# ---------------------------------------------------------------------------
# Merge helpers
# ---------------------------------------------------------------------------

def value_fingerprint(value: t.Any) -> t.Any:
    """Hashable, cross-process-comparable identity of a metric value.

    Summaries (dataclasses) compare by field tuple; histograms (any
    object with sparse ``counts``) by bucket contents — plain ``==``
    would be identity for histogram objects shipped through a pipe."""
    if isinstance(value, (int, float, str, bytes, tuple, type(None))):
        return value
    if dataclasses.is_dataclass(value):
        return (type(value).__name__,) + dataclasses.astuple(value)
    counts = getattr(value, "counts", None)
    if counts is not None:
        return (type(value).__name__, getattr(value, "sub_bits", 0),
                tuple(sorted(counts.items())), value.count, value.total)
    return repr(value)


def merge_disjoint(parts: list[dict]) -> dict:
    """Union per-shard result dicts whose key sets must not overlap.

    # cross-shard merge — shard order is the outer order and each
    part's keys are visited sorted, so the merged insertion order is
    deterministic."""
    out: dict = {}
    for part in parts:
        for key in sorted(part):
            if key in out:
                raise ShardError(
                    f"overlapping key {key!r} in disjoint shard merge")
            out[key] = part[key]
    return out


#: Merge rules for one metric series across replicas:
#:   "sum-delta"  counter accumulated only by its owning replica(s):
#:                base + sum of per-replica deltas
#:   "equal"      replicated state (e.g. a fault injector running in
#:                every replica): all replicas must agree; take it
#:   "max"        monotone gauge: take the largest (e.g. sim time)
#:   "one"        state owned by exactly one replica: at most one
#:                replica may differ from the base; take the change
MergePolicy = t.Callable[[str, str, dict], str]


def merge_metric_snapshots(base: dict, ends: list[dict],
                           policy: MergePolicy):
    """Rebuild one registry from per-replica telemetry snapshots.

    ``base`` is the snapshot every replica took at switchover (they are
    bit-identical at that point); ``ends`` are the per-replica final
    snapshots.  ``policy(family, kind, labels)`` names the merge rule
    for each series.  Returns a fresh ``MetricsRegistry`` whose
    Prometheus rendering is byte-identical to an unsharded run's (for
    fixed-deadline runs; see docs/performance.md for the contract).

    # cross-shard merge — families, series keys and replica lists are
    all iterated in sorted/shard order."""
    from ..telemetry.metrics import (COUNTER, GAUGE, HISTOGRAM, SUMMARY,
                                     MetricsRegistry)

    def series_map(snapshot: dict, name: str) -> dict:
        family = snapshot.get(name)
        if family is None:
            return {}
        return {tuple(sorted(s["labels"].items())): s["value"]
                for s in family["series"]}

    registry = MetricsRegistry()
    names: set[str] = set(base)
    for end in ends:
        names.update(end)
    for name in sorted(names):
        proto = base.get(name)
        if proto is None:
            for end in ends:
                proto = end.get(name)
                if proto is not None:
                    break
        kind, help_, unit = proto["kind"], proto["help"], proto["unit"]
        base_series = series_map(base, name)
        end_series = [series_map(end, name) for end in ends]
        keys: set[tuple] = set(base_series)
        for series in end_series:
            keys.update(series)
        for key in sorted(keys):
            labels = dict(key)
            rule = policy(name, kind, labels)
            base_value = base_series.get(key)
            present = [s[key] for s in end_series if key in s]
            if rule == "sum-delta":
                start = base_value or 0
                value: t.Any = start + sum(v - start for v in present)
            elif rule == "max":
                value = max(present) if present else base_value
            elif rule == "equal":
                prints = {value_fingerprint(v) for v in present}
                if len(prints) > 1:
                    raise ShardError(
                        f"replicated series diverged across shards: "
                        f"{name}{labels}")
                value = present[0] if present else base_value
            elif rule == "one":
                base_print = value_fingerprint(base_value)
                changed = [v for v in present
                           if value_fingerprint(v) != base_print]
                if len({value_fingerprint(v) for v in changed}) > 1:
                    raise ShardError(
                        f"series {name}{labels} changed in more than one "
                        f"shard but is marked single-owner")
                if changed:
                    value = changed[0]
                elif base_value is not None:
                    value = base_value
                else:
                    value = present[0] if present else None
            else:
                raise ShardError(f"unknown merge rule {rule!r} for {name}")
            if value is None:
                continue
            if kind == COUNTER:
                registry.counter_set(name, value, help=help_, **labels)
            elif kind == GAUGE:
                registry.gauge_set(name, value, help=help_, **labels)
            elif kind == SUMMARY:
                registry.summary_set(name, value, help=help_, **labels)
            elif kind == HISTOGRAM:
                registry.histogram_set(name, value, help=help_, **labels)
            else:
                raise ShardError(f"unknown family kind {kind!r} for {name}")
    return registry
