"""Deterministic per-component random streams.

Every latency-jitter consumer (a switch chip, a media channel, a workload
generator) gets its *own* :class:`numpy.random.Generator`, derived from the
master seed and the component's name via ``SeedSequence.spawn``-style
hashing.  Adding a new component therefore never perturbs the stream of an
existing one, which keeps calibration stable as the model grows.
"""

from __future__ import annotations

import numpy as np


class RngRegistry:
    """Named, lazily created, independent random generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(entropy=self.seed,
                                         spawn_key=_name_key(name))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def uniform_ns(self, name: str, low: int, high: int) -> int:
        """Integer uniform draw in [low, high] from the named stream."""
        if high < low:
            raise ValueError("high < low")
        if high == low:
            return low
        return int(self.stream(name).integers(low, high + 1))

    def bernoulli(self, name: str, p: float) -> bool:
        """One biased coin flip from the named stream.

        Degenerate probabilities short-circuit *without* consuming a
        draw, so plans with p=0 points leave every stream untouched.
        """
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return bool(self.stream(name).random() < p)

    def lognormal_ns(self, name: str, median: float, sigma: float,
                     cap: float | None = None) -> int:
        """Right-skewed latency draw with the given median (ns).

        Storage and software-path latencies are well described by a
        lognormal body; ``cap`` bounds pathological tails so short
        simulated runs stay representative of the paper's 60 s runs.
        """
        draw = float(self.stream(name).lognormal(mean=np.log(median),
                                                 sigma=sigma))
        if cap is not None:
            draw = min(draw, cap)
        return max(0, round(draw))


def _name_key(name: str) -> tuple[int, ...]:
    """Stable, platform-independent spawn key derived from a name."""
    # 4 x 32-bit words from a simple FNV-1a over UTF-8 bytes; this avoids
    # relying on PYTHONHASHSEED-dependent hash().
    data = name.encode("utf-8")
    words = []
    h = 0x811C9DC5
    for round_salt in (0x01, 0x9E, 0x3C, 0x75):
        h ^= round_salt
        for byte in data:
            h = ((h ^ byte) * 0x01000193) & 0xFFFFFFFF
        words.append(h)
    return tuple(words)
