"""Latency recording and summary statistics.

The paper reports latency boxplots whose whiskers span *minimum to the
99th percentile* (Fig. 10).  :class:`BoxplotStats` mirrors exactly that
convention.  Recording uses a growable preallocated numpy buffer — per-I/O
``list.append`` of Python ints would dominate profile time in long runs
(see the HPC guides: preallocate, vectorise the summaries).
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from ..units import ns_to_us


class LatencyRecorder:
    """Append-only store of per-operation latencies (integer ns)."""

    def __init__(self, name: str = "", initial_capacity: int = 4096) -> None:
        self.name = name
        self._buf = np.empty(max(16, initial_capacity), dtype=np.int64)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        if self._n == self._buf.shape[0]:
            grown = np.empty(self._buf.shape[0] * 2, dtype=np.int64)
            grown[: self._n] = self._buf
            self._buf = grown
        self._buf[self._n] = latency_ns
        self._n += 1

    def values(self) -> np.ndarray:
        """Read-only view of the recorded latencies."""
        view = self._buf[: self._n]
        view.flags.writeable = False
        return view

    def summary(self) -> "BoxplotStats":
        return BoxplotStats.from_values(self.values(), name=self.name)

    def merge(self, other: "LatencyRecorder") -> None:
        vals = other.values()
        for v in vals.tolist():
            self.record(int(v))


@dataclasses.dataclass(frozen=True)
class BoxplotStats:
    """Five-number-plus summary matching the paper's Fig. 10 boxplots."""

    name: str
    count: int
    minimum: int
    q1: float
    median: float
    q3: float
    p99: float
    maximum: int
    mean: float
    stddev: float

    @classmethod
    def from_values(cls, values: np.ndarray | t.Sequence[int],
                    name: str = "") -> "BoxplotStats":
        arr = np.asarray(values, dtype=np.int64)
        if arr.size == 0:
            # An empty recording is a legitimate outcome (a client that
            # completed no I/O during a chaos run, a telemetry snapshot
            # taken before traffic started): numpy's percentile would
            # raise, so return an explicit all-zero summary instead.
            return cls(name=name, count=0, minimum=0, q1=0.0, median=0.0,
                       q3=0.0, p99=0.0, maximum=0, mean=0.0, stddev=0.0)
        q1, med, q3, p99 = np.percentile(arr, [25, 50, 75, 99])
        return cls(
            name=name,
            count=int(arr.size),
            minimum=int(arr.min()),
            q1=float(q1),
            median=float(med),
            q3=float(q3),
            p99=float(p99),
            maximum=int(arr.max()),
            mean=float(arr.mean()),
            stddev=float(arr.std()),
        )

    def as_us(self) -> dict[str, float]:
        """All fields converted to microseconds (floats)."""
        return {
            "min": ns_to_us(self.minimum),
            "q1": self.q1 / 1000.0,
            "median": self.median / 1000.0,
            "q3": self.q3 / 1000.0,
            "p99": self.p99 / 1000.0,
            "max": ns_to_us(self.maximum),
            "mean": self.mean / 1000.0,
        }

    def __str__(self) -> str:
        if self.count == 0:
            return f"{self.name or 'latency'}: n=0 (no samples)"
        u = self.as_us()
        return (f"{self.name or 'latency'}: n={self.count} "
                f"min={u['min']:.2f}us q1={u['q1']:.2f}us "
                f"med={u['median']:.2f}us q3={u['q3']:.2f}us "
                f"p99={u['p99']:.2f}us max={u['max']:.2f}us")


class Counter:
    """Named monotonic counters for throughput/accounting."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def add(self, name: str, value: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + value

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)


def iops(completed: int, elapsed_ns: int) -> float:
    """Operations per second over a simulated interval."""
    if elapsed_ns <= 0:
        return 0.0
    return completed / (elapsed_ns / 1e9)


def throughput_bytes_per_s(nbytes: int, elapsed_ns: int) -> float:
    if elapsed_ns <= 0:
        return 0.0
    return nbytes / (elapsed_ns / 1e9)
