"""Event primitives for the discrete-event kernel.

The design follows the classic SimPy shape: an :class:`Event` is a
one-shot occurrence with a value (or an exception), and a list of
callbacks invoked when the simulator processes it.  Processes
(:mod:`repro.sim.process`) suspend by yielding events.

Events deliberately carry *no* timing information themselves — scheduling
is owned by :class:`repro.sim.core.Simulator`.

The constructors and :meth:`Event._process` are the innermost loops of
the whole simulator (every timeout, resource grant and process switch
passes through them), so they trade a little repetition for speed:
``Timeout.__init__`` initialises fields inline instead of chaining to
``Event.__init__``, and the hot methods test ``_value is _PENDING``
directly instead of going through the ``triggered`` property.
"""

from __future__ import annotations

import typing as t
from heapq import heappush

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Simulator

_PENDING = object()

#: Priority for ordinary events.  (Lives here rather than in ``core`` so
#: the process machinery can import it without a circular import.)
NORMAL = 1
#: Priority for "urgent" bookkeeping events processed before normal ones
#: scheduled at the same instant (used by the process machinery).
URGENT = 0


def _as_int_delay(delay: t.Any) -> int:
    """Validate a delay: integer nanoseconds only (units discipline).

    Fractional delays used to be truncated silently via ``int(delay)``,
    which hid unit bugs (a ``1.5`` meant as microseconds became 1 ns);
    now they are rejected outright.  Integral floats and numpy integers
    are converted losslessly.
    """
    d = int(delay)
    if d != delay:
        raise ValueError(
            f"non-integral delay {delay!r}: simulated time is integer "
            f"nanoseconds (see repro.units)")
    return d


class Event:
    """A one-shot occurrence that processes can wait on.

    Lifecycle: *pending* -> *triggered* (value set, scheduled on the event
    queue) -> *processed* (callbacks ran).  Triggering twice is an error;
    this catches double-completion bugs in device models early.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[t.Callable[["Event"], None]] | None = []
        self._value: t.Any = _PENDING
        self._ok: bool = True
        self._processed = False
        self._defused = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> t.Any:
        if self._value is _PENDING:
            raise RuntimeError("event value is not yet available")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: t.Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully, scheduling callbacks after
        ``delay`` nanoseconds."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        if delay:
            sim._schedule(self, delay)
        else:
            # Zero-delay is the overwhelmingly common case (grants,
            # store hand-offs, signal fires); push directly.
            heappush(sim._queue, (sim._now, NORMAL, next(sim._sequence), self))
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception.

        A failed event that nobody waits on re-raises at the end of the
        simulation run unless :meth:`defuse` was called — silent failure
        of device model processes would otherwise corrupt measurements.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        sim = self.sim
        if delay:
            sim._schedule(self, delay)
        else:
            heappush(sim._queue, (sim._now, NORMAL, next(sim._sequence), self))
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another (triggered) event's outcome onto this one."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(t.cast(BaseException, event._value))

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not re-raise."""
        self._defused = True

    # -- internal ----------------------------------------------------------

    def _process(self) -> None:
        """Run callbacks (invoked by the simulator core)."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        assert callbacks is not None
        for callback in callbacks:
            callback(self)
        if not self._ok and not self._defused:
            raise t.cast(BaseException, self._value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else (
            "triggered" if self._value is not _PENDING else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # -- composition --------------------------------------------------------

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation.

    ``delay`` must be integral (integer nanoseconds); fractional delays
    raise :class:`ValueError` instead of being truncated.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: t.Any = None) -> None:
        # hot-path: inline field init; Event.__init__ is deliberately
        # not chained (one call frame per CQ poll tick adds up).
        if type(delay) is not int:
            delay = _as_int_delay(delay)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._defused = False
        self.delay = delay
        sim._push(self, delay)


class PooledTimeout(Timeout):
    """A :class:`Timeout` recycled through the simulator's free list.

    Created via :meth:`Simulator.sleep`.  The object returns itself to
    the pool the moment its callbacks have run, so callers must follow
    the ``yield sim.sleep(ns)`` discipline: never retain a reference,
    never inspect it after resuming, and never hand it to
    ``any_of``/``all_of`` (composites keep references past processing).
    Poll ticks and per-hop latency waits burn one of these every few
    simulated nanoseconds, which without pooling makes the allocator the
    single hottest call site in fig10-scale runs.
    """

    __slots__ = ()

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        assert callbacks is not None
        for callback in callbacks:
            callback(self)
        # Sleeps never fail, so the unwaited-failure re-raise is not
        # needed; recycle immediately (callbacks have all run).
        pool = self.sim._timeout_pool
        if len(pool) < 512:
            pool.append(self)


class Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf` composite waits."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: t.Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("cannot mix events from different simulators")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            elif ev.callbacks is not None:
                ev.callbacks.append(self._check)
        # If still pending after scanning, we wait for callbacks.

    def _collect(self) -> dict[Event, t.Any]:
        return {ev: ev._value for ev in self.events if ev.processed and ev.ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _on_failure(self, event: Event) -> None:
        if not self.triggered:
            event.defuse()
            self.fail(t.cast(BaseException, event._value))


class AnyOf(Condition):
    """Triggers when the first constituent event does."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self._on_failure(event)
            return
        self.succeed(self._collect())


class AllOf(Condition):
    """Triggers when every constituent event has been processed."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self._on_failure(event)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())
