"""Event primitives for the discrete-event kernel.

The design follows the classic SimPy shape: an :class:`Event` is a
one-shot occurrence with a value (or an exception), and a list of
callbacks invoked when the simulator processes it.  Processes
(:mod:`repro.sim.process`) suspend by yielding events.

Events deliberately carry *no* timing information themselves — scheduling
is owned by :class:`repro.sim.core.Simulator`.
"""

from __future__ import annotations

import typing as t

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Simulator

_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Lifecycle: *pending* -> *triggered* (value set, scheduled on the event
    queue) -> *processed* (callbacks ran).  Triggering twice is an error;
    this catches double-completion bugs in device models early.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[t.Callable[["Event"], None]] | None = []
        self._value: t.Any = _PENDING
        self._ok: bool = True
        self._processed = False
        self._defused = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> t.Any:
        if self._value is _PENDING:
            raise RuntimeError("event value is not yet available")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: t.Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully, scheduling callbacks after
        ``delay`` nanoseconds."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception.

        A failed event that nobody waits on re-raises at the end of the
        simulation run unless :meth:`defuse` was called — silent failure
        of device model processes would otherwise corrupt measurements.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another (triggered) event's outcome onto this one."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(t.cast(BaseException, event._value))

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not re-raise."""
        self._defused = True

    # -- internal ----------------------------------------------------------

    def _process(self) -> None:
        """Run callbacks (invoked by the simulator core)."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        assert callbacks is not None
        for callback in callbacks:
            callback(self)
        if not self._ok and not self._defused:
            raise t.cast(BaseException, self._value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # -- composition --------------------------------------------------------

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: t.Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = int(delay)
        self._ok = True
        self._value = value
        sim._schedule(self, self.delay)


class Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf` composite waits."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: t.Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("cannot mix events from different simulators")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            elif ev.callbacks is not None:
                ev.callbacks.append(self._check)
        # If still pending after scanning, we wait for callbacks.

    def _collect(self) -> dict[Event, t.Any]:
        return {ev: ev._value for ev in self.events if ev.processed and ev.ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _on_failure(self, event: Event) -> None:
        if not self.triggered:
            event.defuse()
            self.fail(t.cast(BaseException, event._value))


class AnyOf(Condition):
    """Triggers when the first constituent event does."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self._on_failure(event)
            return
        self.succeed(self._collect())


class AllOf(Condition):
    """Triggers when every constituent event has been processed."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self._on_failure(event)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())
