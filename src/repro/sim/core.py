"""The discrete-event simulator core.

A binary-heap event queue keyed on ``(time, priority, sequence)``.  Time is
integer nanoseconds (see :mod:`repro.units`); the monotonically increasing
sequence number makes the ordering total and deterministic, which keeps
whole-cluster simulations bit-reproducible for a given seed.

The ``run`` loops inline the per-event dispatch (rather than calling
:meth:`Simulator.step`) and hoist the queue and ``heappop`` into locals:
fig10-scale runs process ~100 events per I/O, so attribute lookups in
this loop are a measurable fraction of total wall-clock.  None of the
fast paths change *which* events run or in what order — every entry
still receives a fresh sequence number from the same counter, so traces
and telemetry exports stay bit-identical.
"""

from __future__ import annotations

import typing as t
from heapq import heappop, heappush
from itertools import count

from .events import (NORMAL, URGENT, AllOf, AnyOf, Event, PooledTimeout,
                     Timeout, _as_int_delay)
from .process import Process
from .rng import RngRegistry

__all__ = ["Simulator", "NORMAL", "URGENT"]


class _DomainContext:
    """Restores the previous domain tag on exit (tags nest)."""

    __slots__ = ("sim", "name", "_prev")

    def __init__(self, sim: "Simulator", name: str | None) -> None:
        self.sim = sim
        self.name = name

    def __enter__(self) -> "_DomainContext":
        self._prev = self.sim._domain
        self.sim._domain = self.name
        return self

    def __exit__(self, *exc: t.Any) -> None:
        self.sim._domain = self._prev


class Simulator:
    """Owns the clock, the event queue and per-component RNG streams.

    Typical use::

        sim = Simulator(seed=7)

        def worker(sim):
            yield sim.timeout(100)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert proc.value == "done"
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: int = 0
        self._queue: list[tuple[int, int, int, Event]] = []
        self._sequence = count()
        self._resource_sequence = count()
        self._active_process: Process | None = None
        self.rng = RngRegistry(seed)
        #: free-form registry used by components to find each other
        self.components: dict[str, t.Any] = {}
        #: total events dispatched (perf telemetry; deterministic per run)
        self.events_processed: int = 0
        #: free list for :meth:`sleep` timeouts (see events.PooledTimeout)
        self._timeout_pool: list[PooledTimeout] = []
        #: timing-domain tag inherited by processes spawned while it is
        #: set (see repro.sim.shard) — None means "global"
        self._domain: str | None = None
        #: domains frozen by the shard runner after switchover: processes
        #: tagged with one of these never resume in this replica (their
        #: authoritative state lives in another shard).  None outside
        #: sharded runs so the hot-path check is a single identity test.
        self._frozen: frozenset[str] | None = None

    def domain(self, name: str | None):
        """Context manager tagging processes spawned inside it with a
        timing domain (host name).  The shard runner uses the tags to
        freeze foreign domains after switchover; outside sharded runs
        the tags are inert."""
        return _DomainContext(self, name)

    def _next_resource_order(self) -> int:
        """Deterministic creation index for Resources (lock ordering)."""
        return next(self._resource_sequence)

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- event factories -------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: t.Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def sleep(self, delay: int) -> Timeout:
        """A pooled fire-and-forget timeout for ``yield sim.sleep(ns)``.

        Behaves exactly like :meth:`timeout` on the event queue (same
        sequence numbering, same ordering), but recycles the event object
        through a free list once its callbacks have run.  Callers must
        not retain the returned event past the yield or compose it with
        ``any_of``/``all_of`` — use :meth:`timeout` for those.
        """
        pool = self._timeout_pool
        if pool and type(delay) is int and delay >= 0:
            ev = pool.pop()
            ev.callbacks = []
            ev._value = None
            ev._ok = True
            ev._processed = False
            ev._defused = False
            ev.delay = delay
            heappush(self._queue, (self._now + delay, NORMAL,
                                   next(self._sequence), ev))
            return ev
        return PooledTimeout(self, delay)

    def process(self, generator: t.Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def any_of(self, events: t.Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: t.Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------------

    def _schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        if delay:
            if type(delay) is not int:
                delay = _as_int_delay(delay)
            if delay < 0:
                raise ValueError(f"cannot schedule into the past (delay={delay})")
            heappush(self._queue, (self._now + delay, priority,
                                   next(self._sequence), event))
        else:
            heappush(self._queue, (self._now, priority,
                                   next(self._sequence), event))

    def _push(self, event: Event, delay: int, priority: int = NORMAL) -> None:
        """Raw enqueue for callers that have already validated ``delay``."""
        heappush(self._queue, (self._now + delay, priority,
                               next(self._sequence), event))

    # -- execution ----------------------------------------------------------------

    def peek(self) -> int | None:
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event."""
        when, _prio, _seq, event = heappop(self._queue)
        assert when >= self._now, "event queue ordering violated"
        self._now = when
        self.events_processed += 1
        event._process()

    def run(self, until: int | Event | None = None) -> t.Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be an absolute time (int) or an :class:`Event`; when
        it is an event, its value is returned (exceptions propagate).
        """
        # The dispatch below is Event._process / PooledTimeout._process
        # inlined (they are the only two implementations); the type check
        # routes recycling without a second method call per event.
        queue = self._queue
        pop = heappop
        pool = self._timeout_pool
        pooled = PooledTimeout
        dispatched = 0
        if until is None:
            try:
                while queue:
                    when, _prio, _seq, event = pop(queue)
                    self._now = when
                    dispatched += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
                    if type(event) is pooled:
                        if len(pool) < 512:
                            pool.append(event)
                    elif not event._ok and not event._defused:
                        raise t.cast(BaseException, event._value)
            finally:
                self.events_processed += dispatched
            return None

        if isinstance(until, Event):
            stop = until
            if stop.processed:
                return stop.value if stop.ok else None
            done: list[Event] = []
            if stop.callbacks is None:
                raise RuntimeError("cannot run until an event without callbacks")
            stop.callbacks.append(done.append)
            try:
                while queue and not done:
                    when, _prio, _seq, event = pop(queue)
                    self._now = when
                    dispatched += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
                    if type(event) is pooled:
                        if len(pool) < 512:
                            pool.append(event)
                    elif not event._ok and not event._defused:
                        raise t.cast(BaseException, event._value)
            finally:
                self.events_processed += dispatched
            if not done:
                raise RuntimeError(
                    "simulation ran out of events before the target event fired")
            if not stop.ok:
                stop.defuse()
                raise t.cast(BaseException, stop._value)
            return stop._value

        deadline = int(until)
        if deadline < self._now:
            raise ValueError(
                f"until={deadline} is in the past (now={self._now})")
        try:
            while queue and queue[0][0] <= deadline:
                when, _prio, _seq, event = pop(queue)
                self._now = when
                dispatched += 1
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                for callback in callbacks:
                    callback(event)
                if type(event) is pooled:
                    if len(pool) < 512:
                        pool.append(event)
                elif not event._ok and not event._defused:
                    raise t.cast(BaseException, event._value)
        finally:
            self.events_processed += dispatched
        self._now = deadline
        return None
