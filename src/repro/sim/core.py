"""The discrete-event simulator core.

A binary-heap event queue keyed on ``(time, priority, sequence)``.  Time is
integer nanoseconds (see :mod:`repro.units`); the monotonically increasing
sequence number makes the ordering total and deterministic, which keeps
whole-cluster simulations bit-reproducible for a given seed.
"""

from __future__ import annotations

import typing as t
from heapq import heappop, heappush
from itertools import count

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process
from .rng import RngRegistry

#: Priority for ordinary events.
NORMAL = 1
#: Priority for "urgent" bookkeeping events processed before normal ones
#: scheduled at the same instant (used by the process machinery).
URGENT = 0


class Simulator:
    """Owns the clock, the event queue and per-component RNG streams.

    Typical use::

        sim = Simulator(seed=7)

        def worker(sim):
            yield sim.timeout(100)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert proc.value == "done"
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: int = 0
        self._queue: list[tuple[int, int, int, Event]] = []
        self._sequence = count()
        self._resource_sequence = count()
        self._active_process: Process | None = None
        self.rng = RngRegistry(seed)
        #: free-form registry used by components to find each other
        self.components: dict[str, t.Any] = {}

    def _next_resource_order(self) -> int:
        """Deterministic creation index for Resources (lock ordering)."""
        return next(self._resource_sequence)

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- event factories -------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: t.Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: t.Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def any_of(self, events: t.Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: t.Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------------

    def _schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heappush(self._queue, (self._now + int(delay), priority,
                               next(self._sequence), event))

    # -- execution ----------------------------------------------------------------

    def peek(self) -> int | None:
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event."""
        when, _prio, _seq, event = heappop(self._queue)
        assert when >= self._now, "event queue ordering violated"
        self._now = when
        event._process()

    def run(self, until: int | Event | None = None) -> t.Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be an absolute time (int) or an :class:`Event`; when
        it is an event, its value is returned (exceptions propagate).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            stop = until
            if stop.processed:
                return stop.value if stop.ok else None
            done: list[Event] = []
            if stop.callbacks is None:
                raise RuntimeError("cannot run until an event without callbacks")
            stop.callbacks.append(done.append)
            while self._queue and not done:
                self.step()
            if not done:
                raise RuntimeError(
                    "simulation ran out of events before the target event fired")
            if not stop.ok:
                stop.defuse()
                raise t.cast(BaseException, stop._value)
            return stop._value

        deadline = int(until)
        if deadline < self._now:
            raise ValueError(
                f"until={deadline} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = deadline
        return None
