"""Time and size units used throughout the simulation.

All simulated time is kept as *integer nanoseconds*.  Integers keep the
event queue totally ordered and reproducible (no floating-point drift when
summing per-hop latencies), which matters because the paper's headline
numbers are sub-microsecond differences between scenarios.

Sizes are plain integers in bytes.  Bandwidths are expressed in bytes per
nanosecond (``bytes/ns`` == GB/s) so that ``size / bandwidth`` yields
nanoseconds directly.
"""

from __future__ import annotations

import math

# --- time ---------------------------------------------------------------

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000

# --- sizes --------------------------------------------------------------

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024


def ns_to_us(ns: int) -> float:
    """Convert integer nanoseconds to floating-point microseconds."""
    return ns / US


def us(value: float) -> int:
    """Microseconds -> integer nanoseconds (rounded to nearest)."""
    return round(value * US)


def gb_per_s(value: float) -> float:
    """Gigabytes per second -> bytes per nanosecond.

    1 GB/s == 1e9 bytes / 1e9 ns == 1 byte/ns, so this is the identity;
    the helper exists to make call sites self-documenting.
    """
    return float(value)


def gbit_per_s(value: float) -> float:
    """Gigabits per second -> bytes per nanosecond."""
    return value / 8.0


def serialize_ns(nbytes: int, bytes_per_ns: float) -> int:
    """Time to serialize ``nbytes`` onto a link of the given bandwidth.

    Always at least 1 ns for a non-empty payload so that ordering of
    back-to-back transfers on the same link is preserved.
    """
    if nbytes <= 0:
        return 0
    if bytes_per_ns <= 0:
        raise ValueError("bandwidth must be positive")
    return max(1, math.ceil(nbytes / bytes_per_ns))


def fmt_ns(ns: int) -> str:
    """Human-readable rendering of a nanosecond quantity."""
    if ns >= SEC:
        return f"{ns / SEC:.3f}s"
    if ns >= MS:
        return f"{ns / MS:.3f}ms"
    if ns >= US:
        return f"{ns / US:.2f}us"
    return f"{ns}ns"


def fmt_size(nbytes: int) -> str:
    """Human-readable rendering of a byte quantity."""
    if nbytes >= GiB:
        return f"{nbytes / GiB:.2f}GiB"
    if nbytes >= MiB:
        return f"{nbytes / MiB:.2f}MiB"
    if nbytes >= KiB:
        return f"{nbytes / KiB:.2f}KiB"
    return f"{nbytes}B"


def parse_size(text: str) -> int:
    """Parse a size string like ``"4k"``, ``"128K"``, ``"1M"``, ``"512"``.

    Accepts fio-style suffixes (k/m/g, case-insensitive, optional ``iB``/
    ``B`` trailer); bare numbers are bytes.  Round-trips everything
    :func:`fmt_size` produces, including plain-byte renderings like
    ``"512B"``.
    """
    s = text.strip().lower()
    # normalise trailing "ib"/"b"
    if s.endswith("ib"):
        s = s[:-2]
    elif s.endswith("b") and len(s) > 1 and (s[-2] in "kmg"
                                             or s[-2].isdigit()):
        s = s[:-1]
    mult = 1
    if s and s[-1] in "kmg":
        mult = {"k": KiB, "m": MiB, "g": GiB}[s[-1]]
        s = s[:-1]
    if not s:
        raise ValueError(f"cannot parse size: {text!r}")
    try:
        value = float(s)
    except ValueError as exc:
        raise ValueError(f"cannot parse size: {text!r}") from exc
    result = int(value * mult)
    if result < 0:
        raise ValueError(f"size must be non-negative: {text!r}")
    return result
