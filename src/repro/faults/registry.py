"""Named fault points and their live state.

Components expose *fault points* — stable string names at which a
:class:`~repro.faults.injector.FaultInjector` can flip state:

``link:<host>``
    The host's NTB adapter uplink.  Down means every transaction whose
    initiator or final target lives in that host is severed: posted
    writes are dropped on the floor, non-posted reads time out.  The
    point may also carry a TLP drop probability and an extra forwarding
    delay (a lossy/degraded cable instead of a dead one).

``ctrl:<name>``
    An NVMe controller.  Can be *stalled* (its SQ workers stop fetching
    until resumed — firmware hiccup, internal GC pause) or given a
    per-command *abort* probability.

``client:<name>``
    A distributed-driver client; the only supported action is killing
    it (surprise removal, paper Sec. IV session cleanup).

The registry is pure bookkeeping — it draws randomness only from the
simulator's seeded :class:`~repro.sim.rng.RngRegistry` streams (one
stream per fault point, so adding a point never perturbs another) and
never reads wall-clock time, keeping chaos runs bit-reproducible.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..sim import Event, Simulator
from ..sim.rng import RngRegistry


class FaultError(Exception):
    pass


@dataclasses.dataclass
class PointState:
    """Mutable fault state of one named point."""

    obj: t.Any = None             # component behind the point (if any)
    link_up: bool = True
    drop_probability: float = 0.0
    extra_delay_ns: int = 0
    abort_probability: float = 0.0
    stall_clear: Event | None = None   # pending => point is stalled


class FaultPointRegistry:
    """All fault points of one simulation, keyed by name."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._points: dict[str, PointState] = {}
        #: fault decisions actually taken, by kind (telemetry scrapes
        #: this; plain ints so the hot path stays allocation-free)
        self.injected: dict[str, int] = {}

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    # -- registration -----------------------------------------------------

    def register(self, name: str, obj: t.Any = None) -> None:
        """Declare a fault point (idempotent for the same object)."""
        state = self._points.get(name)
        if state is None:
            self._points[name] = PointState(obj=obj)
        elif obj is not None:
            state.obj = obj

    def names(self) -> list[str]:
        return sorted(self._points)

    def lookup(self, name: str) -> PointState:
        try:
            return self._points[name]
        except KeyError:
            raise FaultError(f"unknown fault point {name!r}; "
                             f"registered: {self.names()}") from None

    def _state(self, name: str) -> PointState | None:
        return self._points.get(name)

    # -- state mutators (used by the injector) ----------------------------

    def set_link(self, name: str, up: bool) -> None:
        state = self.lookup(name)
        if not up and state.link_up:
            self._count("link-down")
        state.link_up = up
        obj = state.obj
        if obj is not None and hasattr(obj, "set_link_state"):
            obj.set_link_state(up)

    def set_drop(self, name: str, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise FaultError(f"drop probability out of range: {probability}")
        self.lookup(name).drop_probability = probability

    def set_delay(self, name: str, delay_ns: int) -> None:
        if delay_ns < 0:
            raise FaultError(f"negative injected delay: {delay_ns}")
        self.lookup(name).extra_delay_ns = int(delay_ns)

    def set_abort(self, name: str, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise FaultError(f"abort probability out of range: {probability}")
        self.lookup(name).abort_probability = probability

    def stall(self, name: str) -> None:
        state = self.lookup(name)
        if state.stall_clear is None:
            state.stall_clear = Event(self.sim)
            self._count("stall")

    def resume(self, name: str) -> None:
        state = self.lookup(name)
        clear, state.stall_clear = state.stall_clear, None
        if clear is not None and not clear.triggered:
            clear.succeed()

    # -- hot-path queries --------------------------------------------------

    def link_blocked(self, *host_names: str) -> str | None:
        """Name of the first downed ``link:`` point among hosts, or None."""
        for host in host_names:
            state = self._points.get(f"link:{host}")
            if state is not None and not state.link_up:
                return f"link:{host}"
        return None

    def tlp_dropped(self, rng: RngRegistry, *host_names: str) -> str | None:
        """Seeded per-point coin flips; name of the dropping point or None.

        The coin stream is keyed per (point, initiating host): a lossy
        link crossed by flows from several hosts flips an independent
        coin stream per flow, so each stream's consumption depends only
        on one timing domain's activity (the shard-partitioning
        invariant; see repro.sim.shard)."""
        initiator = host_names[0] if host_names else ""
        for host in host_names:
            name = f"link:{host}"
            state = self._points.get(name)
            if state is not None and state.drop_probability > 0.0 \
                    and rng.bernoulli(f"fault:{name}:from:{initiator}",
                                      state.drop_probability):
                self._count("tlp-drop")
                return name
        return None

    def tlp_delay_ns(self, *host_names: str) -> int:
        """Sum of injected forwarding delays along the named hosts."""
        total = 0
        for host in host_names:
            state = self._points.get(f"link:{host}")
            if state is not None:
                total += state.extra_delay_ns
        return total

    def command_aborted(self, rng: RngRegistry, name: str) -> bool:
        state = self._points.get(name)
        aborted = (state is not None and state.abort_probability > 0.0
                   and rng.bernoulli(f"fault:{name}:abort",
                                     state.abort_probability))
        if aborted:
            self._count("cmd-abort")
        return aborted

    def stall_barrier(self, name: str) -> t.Generator:
        """Generator: block while the point is stalled (no-op otherwise)."""
        while True:
            state = self._points.get(name)
            if state is None or state.stall_clear is None:
                return
            yield state.stall_clear
