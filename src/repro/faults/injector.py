"""The fault injector: drives a :class:`FaultPlan` against a registry.

One simulator process walks the plan's expanded (time-sorted) action
list, sleeping between events and applying each to the
:class:`~repro.faults.registry.FaultPointRegistry`.  Every applied
action is emitted into the trace stream (category ``"fault"``) and
counted, so a chaos run leaves an inspectable record of exactly what
was injected and when — the other half of that record, category
``"recovery"``, comes from the driver's timeout/lease machinery.
"""

from __future__ import annotations

import typing as t

from ..sim import NULL_TRACER, Counter, Simulator
from .plan import FaultEvent, FaultPlan
from .registry import FaultError, FaultPointRegistry


class FaultInjector:
    """Applies a plan's events to registered fault points on schedule."""

    def __init__(self, sim: Simulator, registry: FaultPointRegistry,
                 plan: FaultPlan, tracer=NULL_TRACER) -> None:
        self.sim = sim
        self.registry = registry
        self.plan = plan
        self.tracer = tracer
        self.stats = Counter()
        self.applied: list[FaultEvent] = []
        self._proc = None

    def start(self):
        """Spawn the injection process (idempotent)."""
        for ev in self.plan.events:
            # Fail fast on typos before any time passes.
            self.registry.lookup(ev.target)
        if self._proc is None:
            self._proc = self.sim.process(self._run())
        return self._proc

    # -- the injection process --------------------------------------------

    def _run(self) -> t.Generator:
        # Plan times are relative to injector start: cluster bring-up
        # consumes simulated time (admin RPCs, queue creation), and
        # anchoring at start keeps a plan meaningful regardless of how
        # long that took.
        base = self.sim.now
        for ev in self.plan.expanded():
            due = base + ev.at_ns
            if due > self.sim.now:
                yield self.sim.timeout(due - self.sim.now)
            self._apply(ev)

    def _apply(self, ev: FaultEvent) -> None:
        reg = self.registry
        if ev.action == "link_down":
            reg.set_link(ev.target, False)
        elif ev.action == "link_up":
            reg.set_link(ev.target, True)
        elif ev.action == "tlp_drop":
            reg.set_drop(ev.target, ev.probability)
        elif ev.action == "tlp_delay":
            reg.set_delay(ev.target, ev.delay_ns)
        elif ev.action == "ctrl_stall":
            reg.stall(ev.target)
        elif ev.action == "ctrl_resume":
            reg.resume(ev.target)
        elif ev.action == "ctrl_abort":
            reg.set_abort(ev.target, ev.probability)
        elif ev.action == "kill_client":
            obj = reg.lookup(ev.target).obj
            if obj is None or not hasattr(obj, "crash"):
                raise FaultError(
                    f"{ev.target} has no crash-capable object registered")
            obj.crash()
        else:  # pragma: no cover - FaultEvent validates actions
            raise FaultError(f"unhandled action {ev.action!r}")
        self.applied.append(ev)
        self.stats.add(ev.action)
        self.tracer.emit("fault", ev.action, target=ev.target,
                         probability=ev.probability, delay_ns=ev.delay_ns)
