"""Declarative fault schedules.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` items —
*what* goes wrong, *where* (a fault-point name) and *when* (nanoseconds
after the injector starts, so a plan stays meaningful however long
cluster bring-up took).  Plans are plain data: they can be written by
hand in tests, generated from a seeded RNG stream with
:meth:`FaultPlan.random`, or round-tripped through dicts for CLI use.
A ``(seed, plan)`` pair fully determines a chaos run; two runs with the
same pair replay bit-identically (asserted in tests/test_determinism.py).

Actions
=======

========================  ===================================================
``link_down``             sever ``link:<host>`` (auto ``link_up`` after
                          ``duration_ns`` when it is non-zero)
``link_up``               restore a severed link
``tlp_drop``              set the point's TLP drop probability to
                          ``probability`` (auto-clear after ``duration_ns``)
``tlp_delay``             add ``delay_ns`` forwarding delay at the point
                          (auto-clear after ``duration_ns``)
``ctrl_stall``            stall a controller's SQ workers (auto
                          ``ctrl_resume`` after ``duration_ns``)
``ctrl_resume``           resume a stalled controller
``ctrl_abort``            set a controller's per-command abort probability
``kill_client``           crash a driver client without cleanup (surprise
                          removal; never auto-reverts)
========================  ===================================================
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..sim.rng import RngRegistry

ACTIONS = frozenset({
    "link_down", "link_up", "tlp_drop", "tlp_delay",
    "ctrl_stall", "ctrl_resume", "ctrl_abort", "kill_client",
})

#: actions that auto-revert after ``duration_ns`` and their inverse
_REVERT = {
    "link_down": "link_up",
    "tlp_drop": "tlp_drop",     # reverts to probability 0
    "tlp_delay": "tlp_delay",   # reverts to delay 0
    "ctrl_stall": "ctrl_resume",
    "ctrl_abort": "ctrl_abort",  # reverts to probability 0
}


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action."""

    at_ns: int                  # ns after the injector starts
    action: str
    target: str                 # fault-point name, e.g. "link:host2"
    duration_ns: int = 0        # 0 = permanent (no auto-revert)
    probability: float = 0.0    # for tlp_drop / ctrl_abort
    delay_ns: int = 0           # for tlp_delay

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.at_ns < 0 or self.duration_ns < 0 or self.delay_ns < 0:
            raise ValueError(f"negative time in {self!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability out of range in {self!r}")

    def revert_event(self) -> "FaultEvent | None":
        """The auto-scheduled inverse action, if this event has one."""
        if self.duration_ns <= 0:
            return None
        inverse = _REVERT.get(self.action)
        if inverse is None:
            return None
        return FaultEvent(self.at_ns + self.duration_ns, inverse,
                          self.target)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered fault schedule."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def expanded(self) -> list[FaultEvent]:
        """Timed primitive actions including auto-reverts, stably sorted
        by (time, original position) — the injector's work list."""
        out = list(self.events)
        for ev in self.events:
            revert = ev.revert_event()
            if revert is not None:
                out.append(revert)
        keyed = sorted((ev.at_ns, i) for i, ev in enumerate(out))
        return [out[i] for _at, i in keyed]

    def targets(self) -> list[str]:
        return sorted({ev.target for ev in self.events})

    def as_dicts(self) -> list[dict]:
        return [dataclasses.asdict(ev) for ev in self.events]

    @classmethod
    def from_dicts(cls, rows: t.Iterable[dict]) -> "FaultPlan":
        return cls(tuple(FaultEvent(**row) for row in rows))

    # -- builders ---------------------------------------------------------

    @classmethod
    def link_flap(cls, host: str, at_ns: int, duration_ns: int) -> "FaultPlan":
        """Single link-down/up cycle on one host's adapter."""
        return cls((FaultEvent(at_ns, "link_down", f"link:{host}",
                               duration_ns=duration_ns),))

    @classmethod
    def kill(cls, client: str, at_ns: int) -> "FaultPlan":
        return cls((FaultEvent(at_ns, "kill_client", f"client:{client}"),))

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        both = sorted(self.events + other.events, key=lambda ev: ev.at_ns)
        return FaultPlan(tuple(both))

    @classmethod
    def random(cls, rng: RngRegistry, stream: str, horizon_ns: int,
               link_points: t.Sequence[str] = (),
               ctrl_points: t.Sequence[str] = (),
               client_points: t.Sequence[str] = (),
               n_events: int = 8,
               max_outage_ns: int = 300_000,
               max_drop_probability: float = 0.05,
               max_extra_delay_ns: int = 2_000,
               kill_at_most: int = 0) -> "FaultPlan":
        """Seeded random plan over the given fault points.

        Draws come from one named registry stream, so the schedule is a
        pure function of ``(master seed, stream name, arguments)`` —
        changing any other component of the simulation cannot perturb
        it.  ``kill_at_most`` bounds client kills (each client dies at
        most once).
        """
        gen = rng.stream(stream)
        events: list[FaultEvent] = []

        menu: list[tuple[str, str]] = []
        for point in link_points:
            menu += [("link_down", point), ("tlp_drop", point),
                     ("tlp_delay", point)]
        for point in ctrl_points:
            menu += [("ctrl_stall", point), ("ctrl_abort", point)]
        if not menu and not (client_points and kill_at_most):
            return cls(())

        for _ in range(n_events if menu else 0):
            action, target = menu[int(gen.integers(0, len(menu)))]
            at_ns = int(gen.integers(0, max(1, horizon_ns)))
            duration_ns = int(gen.integers(1, max(2, max_outage_ns)))
            probability = 0.0
            delay_ns = 0
            if action == "tlp_drop":
                probability = float(gen.uniform(0.0, max_drop_probability))
            elif action == "tlp_delay":
                delay_ns = int(gen.integers(0, max(1, max_extra_delay_ns)))
            events.append(FaultEvent(at_ns, action, target,
                                     duration_ns=duration_ns,
                                     probability=probability,
                                     delay_ns=delay_ns))

        victims = list(client_points)
        for _ in range(min(kill_at_most, len(victims))):
            idx = int(gen.integers(0, len(victims)))
            victim = victims.pop(idx)
            at_ns = int(gen.integers(0, max(1, horizon_ns)))
            events.append(FaultEvent(at_ns, "kill_client", victim))

        events.sort(key=lambda ev: ev.at_ns)
        return cls(tuple(events))
