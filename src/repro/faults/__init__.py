"""Deterministic fault injection (chaos engineering for the cluster).

The paper's SmartIO layer is designed to survive hosts "crashing or
being shut down without notifying the device manager"; this package
makes that story testable.  A seeded :class:`FaultPlan` schedules link
loss, TLP drop/delay, controller stalls/aborts and client kills against
named fault points; the :class:`FaultInjector` replays it; the driver's
recovery half (client command timeouts + manager liveness leases, see
:mod:`repro.driver`) is configured via
:class:`repro.config.ReliabilityConfig`.  A ``(seed, plan)`` pair
replays bit-identically.
"""

from .injector import FaultInjector
from .plan import ACTIONS, FaultEvent, FaultPlan
from .registry import FaultError, FaultPointRegistry, PointState

__all__ = [
    "ACTIONS", "FaultEvent", "FaultPlan",
    "FaultError", "FaultPointRegistry", "PointState",
    "FaultInjector",
]
