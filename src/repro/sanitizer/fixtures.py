"""Intentional-bug fixtures: one seeded violation per detector.

Each fixture builds a small cluster with ShareSan attached, breaks the
sharing discipline in exactly one way — revoking a window behind a
tenant's back, skipping the drain barrier on handoff, completing a
command twice, rewinding a CQ consumer, storing into a freed pool
buffer — and returns the sanitizer, whose findings must name exactly
the targeted detector.  ``tests/test_sanitizer.py`` asserts that, and
``repro sanitize selftest`` runs the pack from the CLI.

The violations are injected from *outside* the simulated protocol
(direct state surgery between sim steps), so the production code paths
stay honest: nothing here exercises a bug in the simulator, only in
the fixture's deliberately lawless hands.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..config import SimulationConfig
from ..driver import DistributedNvmeClient, NvmeManager
from ..driver.dmapool import local_pool
from ..scenarios.testbed import PcieTestbed
from ..workloads import FioJob, fio_generator, run_fio
from .sanitizer import (DET_DMA_FREED, DET_DOUBLE_COMPLETION,
                        DET_FOREIGN_WINDOW, DET_MISDELIVERY, DET_PHASE,
                        DET_STALE_DOORBELL, ShareSan)


def _sharing_cluster(n_hosts: int, seed: int = 71):
    """A testbed + started manager with one shared-QP reserve, ShareSan
    attached before anything runs (same ordering as the builders)."""
    cfg = SimulationConfig()
    cfg = dataclasses.replace(
        cfg, sharing=dataclasses.replace(cfg.sharing, reserved_qps=1))
    bed = PcieTestbed(n_hosts=n_hosts, with_nvme=True, seed=seed,
                      config=cfg)
    san = ShareSan(bed.sim).attach(controllers=[bed.nvme],
                                   ntbs=bed.ntbs, hosts=bed.hosts)
    manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                          bed.nvme_device_id, bed.config)
    san.attach(managers=[manager])
    bed.sim.run(until=bed.sim.process(manager.start()))
    return bed, manager, san


def _client(bed, san: ShareSan, host_index: int,
            **kwargs) -> DistributedNvmeClient:
    client = DistributedNvmeClient(bed.sim, bed.smartio,
                                   bed.node(host_index),
                                   bed.nvme_device_id, bed.config,
                                   slot_index=host_index - 1,
                                   name=f"host{host_index}-nvme",
                                   **kwargs)
    san.attach(clients=[client])
    bed.sim.run(until=bed.sim.process(client.start()))
    return client


def foreign_window_write(seed: int = 71) -> ShareSan:
    """Use-after-handoff: the manager revokes a tenant's window, the
    tenant (which never heard) keeps submitting into it."""
    bed, manager, san = _sharing_cluster(3, seed=seed)
    tenant = _client(bed, san, 1, sharing="force")
    # The bug: a revocation path that forgets to notify the tenant.
    manager._release_window(tenant.slot_index)
    job = FioJob(name="foreign", rw="randread", total_ios=1, iodepth=1,
                 seed_stream="fx-foreign")
    bed.sim.process(fio_generator(tenant, job))
    # The orphaned command never completes; run to a horizon instead.
    bed.sim.run(until=bed.sim.timeout(5_000_000))
    return san


def stale_doorbell(seed: int = 71) -> ShareSan:
    """A doorbell rung for a window whose lease already expired (no
    accompanying SQE store, so only the doorbell is at fault)."""
    bed, manager, san = _sharing_cluster(3, seed=seed)
    tenant = _client(bed, san, 1, sharing="force")
    manager._release_window(tenant.slot_index)
    tenant._ring_shared_sq_doorbell(None)
    bed.sim.run(until=bed.sim.timeout(1_000_000))
    return san


def cqe_misdelivery(seed: int = 71) -> ShareSan:
    """Broken handoff: the window moves to a successor while the
    predecessor's commands are still in flight *and* the drain barrier
    is skipped, so their CQEs demux into the successor's mailbox."""
    bed, manager, san = _sharing_cluster(4, seed=seed)
    first = _client(bed, san, 1, sharing="force")
    job = FioJob(name="misdeliver", rw="randread", total_ios=4,
                 iodepth=4, seed_stream="fx-misdeliver")
    bed.sim.process(fio_generator(first, job))
    for _ in range(10_000):
        if len(first._inflight) >= 4:
            break
        bed.sim.run(until=bed.sim.timeout(200))
    assert len(first._inflight) >= 4, "fixture never got commands in flight"
    # The bug: revoke with commands outstanding, then drop the
    # quarantine so the next tenant is admitted into a live window.
    manager._release_window(first.slot_index)
    qp = manager._shared_qps[first.qid]
    qp.draining.clear()
    _client(bed, san, 2, sharing="force")
    bed.sim.run(until=bed.sim.timeout(10_000_000))
    return san


def double_completion(seed: int = 71) -> ShareSan:
    """Firmware fault: every I/O command is completed twice."""
    bed, manager, san = _sharing_cluster(2, seed=seed)
    client = _client(bed, san, 1)
    real = bed.nvme._complete

    def twice(sq, sqe, status, result, win=None):
        yield from real(sq, sqe, status, result, win=win)
        yield from real(sq, sqe, status, result, win=win)

    # Patch after start() so queue setup (admin phase) stays clean.
    bed.nvme._complete = twice
    run_fio(client, FioJob(name="double", rw="randread", total_ios=2,
                           iodepth=1, seed_stream="fx-double"))
    # Drain the trailing duplicate of the final command.
    bed.sim.run(until=bed.sim.timeout(1_000_000))
    return san


def phase_violation(seed: int = 71) -> ShareSan:
    """A CQ consumer rewound mid-run re-walks slots the protocol says
    are behind it (fewer I/Os than one ring lap, so the re-walk meets
    already-consumed entries, not fresh ones)."""
    bed, manager, san = _sharing_cluster(2, seed=seed)
    client = _client(bed, san, 1)
    run_fio(client, FioJob(name="phase", rw="randread", total_ios=10,
                           iodepth=2, seed_stream="fx-phase"))
    assert client.cq.head == 10 < client.cq.entries
    # The bug: the consumer's position resets (say, a botched resync).
    client.cq.head = 0
    run_fio(client, FioJob(name="phase2", rw="randread", total_ios=1,
                           iodepth=1, seed_stream="fx-phase2"))
    return san


def dma_freed_buffer(seed: int = 71) -> ShareSan:
    """A store lands in a dmapool allocation after it was freed."""
    bed = PcieTestbed(n_hosts=2, with_nvme=False, seed=seed)
    san = ShareSan(bed.sim).attach(hosts=bed.hosts)
    pool = local_pool(bed.hosts[0], 64 * 1024)
    cpu, _dev = pool.alloc(4096)
    pool.free(cpu)
    bed.hosts[0].memory.write(cpu + 64, b"\x5a" * 64)
    return san


#: detector name -> fixture proving that detector fires (and only it)
FIXTURES: dict[str, t.Callable[..., ShareSan]] = {
    DET_FOREIGN_WINDOW: foreign_window_write,
    DET_STALE_DOORBELL: stale_doorbell,
    DET_MISDELIVERY: cqe_misdelivery,
    DET_DOUBLE_COMPLETION: double_completion,
    DET_PHASE: phase_violation,
    DET_DMA_FREED: dma_freed_buffer,
}


def selftest(seed: int = 71) -> dict[str, dict[str, t.Any]]:
    """Run every fixture; report which detectors fired vs. expected."""
    out = {}
    for name, fixture in FIXTURES.items():
        san = fixture(seed=seed)
        fired = sorted(san.detectors_fired())
        out[name] = {"fired": fired, "ok": fired == [name],
                     "findings": len(san.findings)}
    return out
