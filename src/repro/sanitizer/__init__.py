"""ShareSan: cross-host ownership/race sanitizer (docs/sanitizer.md).

Import-light on purpose: ``memory.physmem`` and ``nvme.queues`` pull
:data:`NULL_SANITIZER` from here at module load, so only the dependency-
free ``hooks`` module is imported eagerly.  The hub and helpers resolve
lazily (PEP 562).
"""

from __future__ import annotations

from .hooks import NULL_SANITIZER, NullSanitizer

__all__ = ["NULL_SANITIZER", "NullSanitizer", "ShareSan", "Finding",
           "DETECTORS", "build_report", "render_json", "render_text",
           "run_scenario", "SANITIZE_SCENARIOS", "SanitizeRun",
           "FIXTURES", "selftest"]

_LAZY = {
    "ShareSan": "sanitizer",
    "Finding": "sanitizer",
    "DETECTORS": "sanitizer",
    "build_report": "report",
    "render_json": "report",
    "render_text": "report",
    "run_scenario": "runner",
    "SANITIZE_SCENARIOS": "runner",
    "SanitizeRun": "runner",
    "FIXTURES": "fixtures",
    "selftest": "fixtures",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}")
    import importlib
    return getattr(importlib.import_module(f".{module}", __name__), name)
