"""NULL-object half of ShareSan (see ``repro.sanitizer.sanitizer``).

Every instrumented object carries a ``sanitizer`` attribute that
defaults to :data:`NULL_SANITIZER`.  Hot paths guard each hook with::

    san = self.sanitizer
    if san.enabled:
        san.on_mem_write(self, addr, length)

so the disabled cost is one attribute load and a falsy class-attribute
test — the same discipline ``repro.telemetry`` uses.  This module must
import nothing from the rest of the package: ``memory.physmem`` and
``nvme.queues`` import it at module load.
"""

from __future__ import annotations


def _noop(*_args, **_kwargs) -> None:
    return None


class NullSanitizer:
    """Inert stand-in wired into every hook point by default.

    ``enabled`` is a class attribute so the guard costs no per-instance
    dict lookup.  Any ``on_*`` hook resolves to a shared no-op, which
    keeps this object signature-compatible with ``ShareSan`` without
    duplicating its hook list.
    """

    enabled = False

    def __getattr__(self, name: str):
        if name.startswith("on_"):
            return _noop
        raise AttributeError(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullSanitizer>"


NULL_SANITIZER = NullSanitizer()
