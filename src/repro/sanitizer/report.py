"""Render a ShareSan run as JSON (CI artifact) or text (humans)."""

from __future__ import annotations

import json
import typing as t

from .sanitizer import ShareSan


def build_report(san: ShareSan, scenario: str = "",
                 seed: int | None = None,
                 extra: dict[str, t.Any] | None = None) -> dict[str, t.Any]:
    """The JSON-shaped summary of one sanitized run."""
    report: dict[str, t.Any] = {
        "scenario": scenario,
        "seed": seed,
        "clean": san.clean,
        "time_ns": san.sim.now,
        "findings": [f.as_dict() for f in san.findings],
        "stats": dict(sorted(san.stats.items())),
        "windows": san.window_map(),
        "regions": [r.as_dict() for r in san.regions],
    }
    if extra:
        report.update(extra)
    return report


def render_json(report: dict[str, t.Any]) -> str:
    return json.dumps(report, indent=2, sort_keys=False)


def render_text(report: dict[str, t.Any]) -> str:
    lines = [f"sharesan: scenario={report['scenario'] or '-'} "
             f"seed={report['seed']} time={report['time_ns']}ns"]
    stats = report["stats"]
    checked = " ".join(f"{key}={stats[key]}" for key in
                       ("mem_writes", "mem_reads", "ntb_translations",
                        "cq_produced", "cq_consumed", "doorbells")
                       if key in stats)
    if checked:
        lines.append(f"validated: {checked}")
    lines.append(f"regions tracked: {len(report['regions'])}, "
                 f"windows: {len(report['windows'])}")
    findings = report["findings"]
    if not findings:
        lines.append("clean: no ownership or race violations")
        return "\n".join(lines)
    lines.append(f"FINDINGS: {len(findings)} distinct")
    for found in findings:
        count = (f" (x{found['count']})"
                 if found.get("count", 1) > 1 else "")
        lines.append(f"  [{found['detector']}] t={found['time_ns']}ns"
                     f"{count}: {found['message']}")
        span = found.get("span")
        if span:
            lines.append(f"      span #{span['index']} {span['op']} "
                         f"lba={span['lba']} on {span['device']}")
    return "\n".join(lines)
