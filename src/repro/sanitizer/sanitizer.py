"""ShareSan: a cross-host ownership/race sanitizer for shared device
memory (docs/sanitizer.md).

The paper's design point — many hosts driving one controller's queues,
doorbells and bounce buffers through NTB windows — means every access
to *simulated physical memory* has an implicit owner: the tenant whose
lease and slot window currently cover it.  ShareSan makes that
ownership explicit.  It maintains a map of regions and windows keyed by
(host slot, lease, QP-window epoch) and validates accesses at the
choke points every byte already flows through: ``memory/physmem.py``
read/write, ``pcie/ntb.py`` translation, ``nvme/queues.py`` ring-state
transitions, doorbell rings, and the manager's grant/revoke/handoff
path.

Detectors (see docs/sanitizer.md for the catalog):

``foreign-window-write``
    a tenant submits into a shared-SQ window it does not own (use
    after handoff, or a quarantined window still draining a
    predecessor's commands);
``stale-doorbell``
    a doorbell rung for a window whose lease expired or was handed to
    a successor;
``cqe-misdelivery``
    the manager forwards a CQE to a tenant that did not issue the
    command (CID-namespace violation);
``double-completion``
    one command id delivered twice to the same client;
``phase-violation``
    a CQ ring's producer or consumer departs from the phase/position
    sequence the NVMe protocol mandates (shadowed per ring);
``dma-freed-buffer``
    a CPU store or device DMA lands in a ``dmapool`` allocation after
    it was freed.

Zero perturbation: ShareSan is pure observation — it adds no simulator
events, draws no random numbers and never touches simulated state, so
any run is bit-identical with the sanitizer on or off.  Off is the
default via :data:`repro.sanitizer.hooks.NULL_SANITIZER`.
"""

from __future__ import annotations

import dataclasses
import typing as t

DET_FOREIGN_WINDOW = "foreign-window-write"
DET_STALE_DOORBELL = "stale-doorbell"
DET_MISDELIVERY = "cqe-misdelivery"
DET_DOUBLE_COMPLETION = "double-completion"
DET_PHASE = "phase-violation"
DET_DMA_FREED = "dma-freed-buffer"

DETECTORS = (DET_FOREIGN_WINDOW, DET_STALE_DOORBELL, DET_MISDELIVERY,
             DET_DOUBLE_COMPLETION, DET_PHASE, DET_DMA_FREED)

#: Distinct findings kept verbatim; repeats of a signature only bump
#: its count, and wholly new signatures beyond the cap only bump
#: ``stats["findings_overflow"]`` (keeps a pathological run bounded).
MAX_FINDINGS = 256


@dataclasses.dataclass
class Finding:
    """One distinct ownership/race violation (repeats are counted)."""

    detector: str
    message: str
    time_ns: int
    actor: str = ""
    qid: int | None = None
    window: int | None = None
    epoch: int | None = None
    cid: int | None = None
    count: int = 1
    span: dict | None = None

    def as_dict(self) -> dict[str, t.Any]:
        out = {"detector": self.detector, "message": self.message,
               "time_ns": self.time_ns, "count": self.count}
        for key in ("actor", "qid", "window", "epoch", "cid", "span"):
            value = getattr(self, key)
            if value not in ("", None):
                out[key] = value
        return out


@dataclasses.dataclass
class _Window:
    """Ownership record of one shared-SQ slot window.

    ``epoch`` increments on every grant, so a finding names *which*
    tenancy of the window was violated; ``quarantined`` mirrors the
    manager's draining set (released with commands outstanding)."""

    qid: int
    index: int
    owner: int | None = None        # owning client's lease slot
    epoch: int = 0
    quarantined: bool = False
    grants: int = 0


@dataclasses.dataclass
class Region:
    """One tracked region of simulated physical memory."""

    host: str
    start: int
    end: int
    kind: str
    owner: str

    def as_dict(self) -> dict[str, t.Any]:
        return {"host": self.host, "start": self.start, "end": self.end,
                "kind": self.kind, "owner": self.owner}


class ShareSan:
    """The sanitizer hub: ownership map, detectors and counters.

    Wire it up exactly like ``Telemetry``::

        san = ShareSan(sim).attach(managers=[manager],
                                   controllers=[bed.nvme],
                                   ntbs=bed.ntbs, hosts=bed.hosts)
        ...
        assert san.findings == []
    """

    enabled = True

    def __init__(self, sim, telemetry=None) -> None:
        self.sim = sim
        self.telemetry = telemetry
        self.findings: list[Finding] = []
        self.stats: dict[str, int] = {}
        self.regions: list[Region] = []
        self._index: dict[tuple, Finding] = {}
        #: (qid, window index) -> ownership record
        self._windows: dict[tuple[int, int], _Window] = {}
        #: (qid, cid) -> (issuer slot, window epoch, already flagged as
        #: foreign at submit) for in-flight shared commands
        self._inflight: dict[tuple[int, int], tuple[int, int, bool]] = {}
        #: delivered command ids per client (cleared on cid reuse)
        self._completed: set[tuple[int, int]] = set()
        #: (actor, qid, window, epoch) whose submit already produced a
        #: foreign-window-write — the doorbell that follows it is the
        #: same root cause, not a second finding
        self._flagged: set[tuple[str, int, int, int]] = set()
        #: CQ ring shadows: id(state) -> [state, position, phase].  The
        #: state reference pins the object so ids cannot be recycled.
        self._cq_producers: dict[int, list] = {}
        self._cq_consumers: dict[int, list] = {}
        #: rings with a reported phase-violation: resync, don't cascade
        self._poisoned: set[int] = set()
        #: display names for ring states (deterministic, no id() leaks)
        self._ring_names: dict[int, str] = {}
        #: id(host memory) -> (memory, [(start, end, label), ...])
        self._hazards: dict[int, tuple[t.Any, list]] = {}
        #: id(pool) -> (pool, {cpu_addr: size})
        self._pools: dict[int, tuple[t.Any, dict[int, int]]] = {}

    # -- wiring --------------------------------------------------------------

    def attach(self, managers=(), controllers=(), clients=(),
               ntbs=(), hosts=(), memories=(), telemetry=None):
        """Point every instrumented object's ``sanitizer`` at us.

        Ring states created later (queue creation, tenant admission)
        are wired by the corresponding hooks, so attaching before
        ``manager.start()``/``client.start()`` covers everything."""
        if telemetry is not None:
            self.telemetry = telemetry
        for obj in (*managers, *controllers, *ntbs, *clients):
            obj.sanitizer = self
        for host in hosts:
            host.memory.sanitizer = self
        for mem in memories:
            mem.sanitizer = self
        return self

    @property
    def clean(self) -> bool:
        return not self.findings

    def detectors_fired(self) -> set[str]:
        return {f.detector for f in self.findings}

    # -- reporting -----------------------------------------------------------

    def _bump(self, key: str, by: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + by

    def _span_context(self, qid, cid) -> dict | None:
        tele = self.telemetry
        if tele is None or not getattr(tele, "enabled", False) \
                or qid is None or cid is None:
            return None
        span = tele.spans._active.get((qid, cid))
        if span is None:
            return None
        return {"index": span.index, "device": span.device,
                "op": span.op, "lba": span.lba}

    def _report(self, detector: str, message: str, *, actor: str = "",
                qid: int | None = None, window: int | None = None,
                epoch: int | None = None, cid: int | None = None) -> None:
        key = (detector, actor, qid, window, epoch, cid)
        found = self._index.get(key)
        if found is not None:
            found.count += 1
            return
        if len(self.findings) >= MAX_FINDINGS:
            self._bump("findings_overflow")
            return
        found = Finding(detector=detector, message=message,
                        time_ns=self.sim.now, actor=actor, qid=qid,
                        window=window, epoch=epoch, cid=cid,
                        span=self._span_context(qid, cid))
        self._index[key] = found
        self.findings.append(found)

    def _add_region(self, host: str, start: int, length: int, kind: str,
                    owner: str) -> None:
        self.regions.append(Region(host=host, start=start,
                                   end=start + length, kind=kind,
                                   owner=owner))

    def _track_ring(self, state, name: str) -> None:
        state.sanitizer = self
        self._ring_names[id(state)] = name

    def _ring_name(self, state) -> str:
        return self._ring_names.get(id(state), f"ring:qid{state.qid}")

    # -- physical memory ------------------------------------------------------

    def on_mem_read(self, memory, addr: int, length: int) -> None:
        self._bump("mem_reads")

    def on_mem_write(self, memory, addr: int, length: int) -> None:
        self._bump("mem_writes")
        entry = self._hazards.get(id(memory))
        if entry is None:
            return
        end = addr + length
        for start, stop, label in entry[1]:
            if addr < stop and end > start:
                self._report(
                    DET_DMA_FREED,
                    f"{length}-byte write to {addr:#x} lands in freed "
                    f"{label} allocation [{start:#x}, {stop:#x})",
                    actor=label)
                return

    def on_ntb_translate(self, ntb, bar: int, addr: int,
                         length: int) -> None:
        self._bump("ntb_translations")

    # -- dmapool lifecycle ----------------------------------------------------

    def on_pool_created(self, pool) -> None:
        self._bump("pools")
        self._pools[id(pool)] = (pool, {})
        self._add_region(pool.host.name, pool.cpu_base, pool.size,
                         "dmapool", pool.name)

    def on_pool_alloc(self, pool, cpu_addr: int, size: int) -> None:
        self._bump("pool_allocs")
        entry = self._pools.get(id(pool))
        if entry is None:
            self.on_pool_created(pool)
            entry = self._pools[id(pool)]
        entry[1][cpu_addr] = size
        hazards = self._hazards.get(id(pool.host.memory))
        if hazards is not None:
            end = cpu_addr + size
            hazards[1][:] = [h for h in hazards[1]
                             if not (cpu_addr < h[1] and end > h[0])]

    def on_pool_free(self, pool, cpu_addr: int) -> None:
        self._bump("pool_frees")
        entry = self._pools.get(id(pool))
        size = entry[1].pop(cpu_addr, None) if entry is not None else None
        if size is None:
            # Unknown (or double) free: the allocator raises its own
            # ValueError; nothing to quarantine.
            return
        mem = pool.host.memory
        hazards = self._hazards.get(id(mem))
        if hazards is None:
            hazards = (mem, [])
            self._hazards[id(mem)] = hazards
        hazards[1].append((cpu_addr, cpu_addr + size, pool.name))

    # -- queue-ring transitions ----------------------------------------------

    def on_sq_advance(self, state) -> None:
        self._bump("sq_submissions")

    def on_sq_fetch(self, state) -> None:
        self._bump("sq_fetches")

    def on_window_fetch(self, state) -> None:
        self._bump("window_fetches")

    def on_cq_produce(self, state) -> None:
        self._bump("cq_produced")
        self._check_ring(state, self._cq_producers, "producer",
                         state.tail)

    def on_cq_consume(self, state) -> None:
        self._bump("cq_consumed")
        self._check_ring(state, self._cq_consumers, "consumer",
                         state.head)

    def _check_ring(self, state, shadows: dict[int, list], side: str,
                    position: int) -> None:
        """Verify-then-advance one side of a CQ ring against its shadow.

        The hook runs *before* the state mutates, so the shadow holds
        exactly the (position, phase) the protocol mandates now.  On a
        mismatch the ring is reported once, poisoned (downstream
        detectors skip it — one root cause, one finding) and the shadow
        resynchronised."""
        key = id(state)
        shadow = shadows.get(key)
        if shadow is None:
            shadows[key] = shadow = [state, position, state.phase]
        elif key not in self._poisoned and (shadow[1] != position
                                            or shadow[2] != state.phase):
            self._report(
                DET_PHASE,
                f"{self._ring_name(state)} {side} at "
                f"(slot {position}, phase {state.phase}); the protocol "
                f"mandates (slot {shadow[1]}, phase {shadow[2]})",
                actor=self._ring_name(state), qid=state.qid)
            self._poisoned.add(key)
        if key in self._poisoned:
            shadow[1], shadow[2] = position, state.phase
        next_pos = (position + 1) % state.entries
        shadow[1] = next_pos
        shadow[2] = state.phase ^ 1 if next_pos == 0 else state.phase

    # -- controller ----------------------------------------------------------

    def on_doorbell(self, controller, qid: int, is_cq: bool,
                    value: int) -> None:
        self._bump("cq_doorbells" if is_cq else "sq_doorbells")

    def on_queue_created(self, controller, kind: str, state,
                         shared: bool = False, windows=None) -> None:
        self._bump("controller_queues")
        self._track_ring(state, f"nvme/{kind}{state.qid}")
        if windows is not None:
            for win in windows:
                win.sanitizer = self
        entry_bytes = 64 if kind == "sq" else 16
        self._add_region(controller.host.name, state.base_addr,
                         state.entries * entry_bytes,
                         f"shared-{kind}-ring" if shared
                         else f"{kind}-ring", "controller")

    # -- client --------------------------------------------------------------

    def on_client_started(self, client) -> None:
        self._bump("clients")
        self._track_ring(client.sq, f"{client.name}/sq{client.qid}")
        self._track_ring(client.cq, f"{client.name}/cq{client.qid}")
        self._add_region(client.node.host.name,
                         client._cq_seg.phys_addr, client._cq_seg.size,
                         "shared-cq-mailbox" if client._shared
                         else "cq-ring", client.name)
        self._add_region(client.node.host.name,
                         client._bounce_seg.phys_addr,
                         client._bounce_seg.size, "bounce", client.name)

    def on_client_submit(self, client, cid: int, slot: int) -> None:
        self._bump("submissions")
        self._completed.discard((id(client), cid))
        if not client._shared:
            return
        qid, widx = client.qid, client._tenant
        win = self._windows.get((qid, widx))
        if win is None:
            return
        foreign = win.quarantined or win.owner != client.slot_index
        if foreign:
            owner = ("quarantined (draining a predecessor)"
                     if win.quarantined and win.owner is None
                     else f"owned by slot {win.owner}"
                     if win.owner is not None else "released")
            self._report(
                DET_FOREIGN_WINDOW,
                f"{client.name} (slot {client.slot_index}) wrote SQE "
                f"{cid:#x} into window {widx} of shared qid {qid}, "
                f"which is {owner} at epoch {win.epoch}",
                actor=client.name, qid=qid, window=widx,
                epoch=win.epoch)
            self._flagged.add((client.name, qid, widx, win.epoch))
        self._inflight[(qid, cid)] = (client.slot_index, win.epoch,
                                      foreign)

    def on_client_doorbell(self, client) -> None:
        self._bump("doorbells")
        win = self._windows.get((client.qid, client._tenant))
        if win is None or (not win.quarantined
                           and win.owner == client.slot_index):
            return
        if (client.name, client.qid, client._tenant,
                win.epoch) in self._flagged:
            return   # companion of an already-reported foreign write
        holder = ("expired" if win.owner is None
                  else f"granted to slot {win.owner}")
        self._report(
            DET_STALE_DOORBELL,
            f"{client.name} (slot {client.slot_index}) rang the shared "
            f"doorbell for window {win.index} of qid {client.qid}, but "
            f"its lease on the window is {holder} (epoch {win.epoch})",
            actor=client.name, qid=client.qid, window=win.index,
            epoch=win.epoch)

    def on_client_dispatch(self, client, cqe) -> None:
        self._bump("dispatches")
        if id(client.cq) in self._poisoned:
            return   # the phase-violation already owns this ring
        key = (id(client), cqe.cid)
        if key in self._completed:
            self._report(
                DET_DOUBLE_COMPLETION,
                f"{client.name} received a second completion for cid "
                f"{cqe.cid:#x} (status {cqe.status:#x})",
                actor=client.name, qid=client.qid, cid=cqe.cid)
        else:
            self._completed.add(key)

    def on_client_dead(self, client, reason: str) -> None:
        self._bump(f"clients_{reason}")

    # -- manager -------------------------------------------------------------

    def on_manager_started(self, manager) -> None:
        self._bump("managers")
        seg = manager.metadata_segment
        self._add_region(manager.node.host.name, seg.phys_addr, seg.size,
                         "metadata", "manager")
        admin = manager.admin
        if admin is not None and hasattr(admin, "sq"):
            self._track_ring(admin.sq, "manager/adminsq")
            self._track_ring(admin.cq, "manager/admincq")

    def on_shared_qp(self, manager, qp) -> None:
        self._bump("shared_qps")
        self._track_ring(qp.cq, f"manager/sharedcq{qp.qid}")
        for widx in range(qp.nwindows):
            self._windows[(qp.qid, widx)] = _Window(qid=qp.qid,
                                                    index=widx)
        self._add_region(manager.node.host.name, qp.sq_seg.phys_addr,
                         qp.sq_seg.size, "shared-sq-ring", "manager")
        self._add_region(manager.node.host.name, qp.cq_seg.phys_addr,
                         qp.cq_seg.size, "shared-cq-ring", "manager")

    def on_window_granted(self, manager, qp, widx: int, slot: int,
                          ring) -> None:
        self._bump("window_grants")
        win = self._windows.setdefault((qp.qid, widx),
                                       _Window(qid=qp.qid, index=widx))
        win.owner = slot
        win.epoch += 1
        win.grants += 1
        win.quarantined = False
        self._track_ring(ring, f"manager/qid{qp.qid}/win{widx}")

    def on_window_released(self, manager, qp, widx: int, slot: int,
                           draining: bool) -> None:
        self._bump("window_releases")
        win = self._windows.get((qp.qid, widx))
        if win is not None:
            win.owner = None
            win.quarantined = draining

    def on_window_drained(self, manager, qp, widx: int) -> None:
        self._bump("windows_drained")
        win = self._windows.get((qp.qid, widx))
        if win is not None:
            win.quarantined = False

    def on_cqe_forwarded(self, manager, qp, widx: int, slot: int,
                         cqe) -> None:
        self._bump("cqes_forwarded")
        issued = self._inflight.pop((qp.qid, cqe.cid), None)
        if issued is None or issued[2]:
            return   # untracked, or the submit was already the finding
        issuer, epoch, _ = issued
        if issuer != slot:
            self._report(
                DET_MISDELIVERY,
                f"CQE for cid {cqe.cid:#x} (issued by slot {issuer} at "
                f"window epoch {epoch}) was forwarded to slot {slot} "
                f"in window {widx} of qid {qp.qid}",
                actor=f"slot{slot}", qid=qp.qid, window=widx,
                epoch=epoch, cid=cqe.cid)

    def on_cqe_orphaned(self, manager, qp, cqe) -> None:
        self._bump("cqes_orphaned")
        self._inflight.pop((qp.qid, cqe.cid), None)

    def on_lease_revoked(self, manager, slot: int) -> None:
        self._bump("leases_revoked")

    # -- summaries -----------------------------------------------------------

    def window_map(self) -> list[dict[str, t.Any]]:
        out = []
        for (qid, widx) in sorted(self._windows):
            win = self._windows[(qid, widx)]
            out.append({"qid": qid, "window": widx, "owner": win.owner,
                        "epoch": win.epoch, "grants": win.grants,
                        "quarantined": win.quarantined})
        return out
