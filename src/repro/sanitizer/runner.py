"""One-call sanitized runs over the repo's canonical scenarios.

Used by the ``repro sanitize`` CLI subcommand and the CI smoke job:
build a scenario with ShareSan wired in, drive a deterministic
workload, and hand back the sanitizer plus a JSON-shaped report.
Everything is seeded, so two calls with the same arguments produce
byte-identical reports — and because ShareSan is pure observation,
identical traces to the same run with the sanitizer off.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..faults import FaultPlan
from ..scenarios import chaos_cluster, multihost, scale_out_cluster
from ..workloads import FioJob, fio_generator, run_fio_many
from .report import build_report
from .sanitizer import ShareSan

#: Scenario names accepted by :func:`run_scenario`.
SANITIZE_SCENARIOS: tuple[str, ...] = ("scale-out", "chaos", "multihost")

#: Simulated horizon + settle time for the chaos scenario (mirrors the
#: telemetry runner: covers the fault plan and the retry tail).
_CHAOS_HORIZON_NS = 200_000_000
_CHAOS_SETTLE_NS = 5_000_000


@dataclasses.dataclass
class SanitizeRun:
    """A finished sanitized run."""

    scenario: str
    seed: int
    sanitizer: ShareSan
    results: list[t.Any]          # FioResult per workload

    @property
    def clean(self) -> bool:
        return self.sanitizer.clean

    def report(self) -> dict[str, t.Any]:
        return build_report(
            self.sanitizer, scenario=self.scenario, seed=self.seed,
            extra={"ios": sum(r.ios for r in self.results),
                   "errors": sum(r.errors for r in self.results)})


def run_scenario(name: str, ios: int = 50, seed: int = 7,
                 iodepth: int = 4, clients: int | None = None
                 ) -> SanitizeRun:
    """Run one named scenario under ShareSan and return the run.

    ``scale-out`` is the beyond-31-hosts cluster (64 clients on 31 QPs
    by default) — the densest shared-window traffic the repo has.
    ``chaos`` adds a seeded random fault plan on top of a 4-client
    cluster, so recovery paths (lease reclaim, window quarantine,
    CQ resync) are validated too.  ``multihost`` is the plain
    private-QP cluster.
    """
    if name == "chaos":
        return _run_chaos(ios=ios, seed=seed, iodepth=iodepth,
                          n_clients=clients or 4)
    if name == "scale-out":
        sc = scale_out_cluster(clients or 64, seed=seed,
                               queue_depth=iodepth, sanitizer=True)
    elif name == "multihost":
        sc = multihost(clients or 4, seed=seed, queue_depth=iodepth,
                       sanitizer=True)
    else:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"pick one of {SANITIZE_SCENARIOS}")
    jobs = [(client, FioJob(name=f"j{i}", rw="randrw", bs=4096,
                            iodepth=iodepth, total_ios=ios,
                            seed_stream=f"fio{i}"))
            for i, client in enumerate(sc.clients)]
    results = run_fio_many(jobs)
    assert sc.sanitizer is not None
    return SanitizeRun(scenario=name, seed=seed,
                       sanitizer=sc.sanitizer, results=results)


def _run_chaos(ios: int, seed: int, iodepth: int,
               n_clients: int) -> SanitizeRun:
    sc = chaos_cluster(n_clients=n_clients, seed=seed, sanitizer=True)
    # A seeded random plan from the run's own registry (private
    # "sanitize-chaos" stream — the workload's draws are untouched).
    # The device host's link is spared so the cluster always drains.
    plan = FaultPlan.random(
        sc.sim.rng, "sanitize-chaos", horizon_ns=3_000_000,
        link_points=sc.link_points()[1:],
        ctrl_points=[sc.ctrl_point],
        n_events=6, max_outage_ns=400_000, max_drop_probability=0.1)
    sc.injector.plan = plan
    sc.injector.start()
    procs = []
    for i, client in enumerate(sc.clients):
        job = FioJob(name=f"j{i}", rw="randrw", bs=4096,
                     iodepth=iodepth, total_ios=ios,
                     seed_stream=f"fio{i}")
        procs.append(sc.sim.process(fio_generator(client, job)))
    sc.sim.run(until=sc.sim.timeout(_CHAOS_HORIZON_NS))
    if not all(p.triggered for p in procs):
        raise RuntimeError("chaos workload did not drain by the horizon")
    sc.sim.run(until=sc.sim.timeout(_CHAOS_SETTLE_NS))
    assert sc.sanitizer is not None
    return SanitizeRun(scenario="chaos", seed=seed,
                       sanitizer=sc.sanitizer,
                       results=[p.value for p in procs])
