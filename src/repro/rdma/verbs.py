"""Verbs-like RDMA primitives: memory regions, completion queues, work
requests and reliable-connected queue pairs.

The model keeps InfiniBand's structural essentials — the ones NVMe-oF's
design exploits (paper Sec. II):

* work queues live in host memory and are written by software without
  kernel involvement;
* SEND consumes a receiver-posted buffer and generates a receive
  completion (this is how command capsules reach the target's bound SQ);
* RDMA_WRITE/RDMA_READ move data one-sided with no remote completion;
* completions are reaped by *polling* CQs.

Latency/bandwidth accounting happens in :mod:`repro.rdma.nic`.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as t

from ..pcie import Host
from ..sim import Signal, Simulator


class RdmaError(Exception):
    pass


class WrOpcode(enum.Enum):
    SEND = "send"
    RDMA_WRITE = "rdma-write"
    RDMA_READ = "rdma-read"


class WcStatus(enum.Enum):
    SUCCESS = 0
    LOCAL_ERROR = 1
    REMOTE_ACCESS_ERROR = 2


@dataclasses.dataclass(frozen=True)
class MemoryRegion:
    """A registered, DMA-able region of host memory."""

    host: Host
    addr: int
    length: int
    rkey: int

    def check(self, addr: int, length: int) -> None:
        if addr < self.addr or addr + length > self.addr + self.length:
            raise RdmaError(
                f"access [{addr:#x},+{length}) outside MR "
                f"[{self.addr:#x},+{self.length})")


@dataclasses.dataclass
class WorkCompletion:
    wr_id: int
    opcode: WrOpcode | None
    status: WcStatus
    byte_len: int = 0
    is_recv: bool = False


@dataclasses.dataclass
class SendWR:
    wr_id: int
    opcode: WrOpcode
    local_addr: int = 0
    length: int = 0
    remote_addr: int = 0
    rkey: int = 0
    inline_data: bytes | None = None   # small payloads skip the DMA fetch


@dataclasses.dataclass
class RecvWR:
    wr_id: int
    addr: int
    length: int


class CompletionQueue:
    """Polled completion queue."""

    def __init__(self, sim: Simulator, name: str = "cq") -> None:
        self.sim = sim
        self.name = name
        self._entries: list[WorkCompletion] = []
        self.signal = Signal(sim)

    def push(self, wc: WorkCompletion) -> None:
        self._entries.append(wc)
        self.signal.fire()

    def poll(self, max_entries: int = 16) -> list[WorkCompletion]:
        """Reap up to ``max_entries`` completions (non-blocking)."""
        out = self._entries[:max_entries]
        del self._entries[:max_entries]
        return out

    def __len__(self) -> int:
        return len(self._entries)


class ProtectionDomain:
    """Registers memory regions and hands out rkeys."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self._next_rkey = 0x1000
        self._regions: dict[int, MemoryRegion] = {}

    def register(self, addr: int, length: int) -> MemoryRegion:
        if length <= 0:
            raise RdmaError("MR length must be positive")
        if not self.host.memory.contains(addr, length):
            raise RdmaError("MR outside host DRAM")
        mr = MemoryRegion(self.host, addr, length, self._next_rkey)
        self._regions[self._next_rkey] = mr
        self._next_rkey += 1
        return mr

    def lookup(self, rkey: int) -> MemoryRegion:
        try:
            return self._regions[rkey]
        except KeyError:
            raise RdmaError(f"unknown rkey {rkey:#x}") from None


class QueuePair:
    """A reliable-connected QP bound to a NIC."""

    def __init__(self, nic, pd: ProtectionDomain, send_cq: CompletionQueue,
                 recv_cq: CompletionQueue, name: str = "qp") -> None:
        self.nic = nic
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.name = name
        self.peer: "QueuePair | None" = None
        self.recv_queue: list[RecvWR] = []

    def connect(self, peer: "QueuePair") -> None:
        if self.peer is not None or peer.peer is not None:
            raise RdmaError("QP already connected")
        self.peer = peer
        peer.peer = self

    def post_recv(self, wr: RecvWR) -> None:
        """Post a receive buffer (no simulated cost: done off-path)."""
        self.recv_queue.append(wr)

    def post_send(self, wr: SendWR) -> None:
        """Hand a send-side WQE to the NIC (the NIC engine charges the
        doorbell/processing costs and runs the wire protocol)."""
        if self.peer is None:
            raise RdmaError(f"{self.name}: QP not connected")
        if wr.opcode is WrOpcode.SEND and wr.inline_data is None \
                and wr.length > 0:
            self.pd.lookup_local(wr)   # validates below
        self.nic.enqueue(self, wr)


# Small helper used above: validate a local buffer belongs to *some* MR.
def _lookup_local(pd: ProtectionDomain, wr: SendWR) -> None:
    for mr in pd._regions.values():
        if wr.local_addr >= mr.addr and \
                wr.local_addr + wr.length <= mr.addr + mr.length:
            return
    raise RdmaError(
        f"local buffer [{wr.local_addr:#x},+{wr.length}) not registered")


ProtectionDomain.lookup_local = _lookup_local  # type: ignore[attr-defined]
