"""RDMA NIC engine and InfiniBand wire model.

A :class:`RdmaNic` is a PCIe endpoint in its host: WQE payload fetches
and receive-buffer placements are *real fabric DMAs* with full PCIe
accounting, on top of which the NIC adds its processing latencies and
the wire adds propagation + serialization (ConnectX-5-class constants in
:class:`~repro.config.RdmaConfig`).

Protocol handling per opcode:

* ``SEND`` — fetch payload (DMA read or inline), wire, match the peer's
  posted receive, DMA-write into it, receive completion at the peer,
  send completion at the sender;
* ``RDMA_WRITE`` — fetch payload, wire, DMA-write at ``remote_addr``
  (rkey-checked); no peer completion — one-sided;
* ``RDMA_READ`` — request over the wire, peer NIC DMA-reads the remote
  buffer, data returns, DMA-write locally; send completion carries the
  round trip.
"""

from __future__ import annotations

import typing as t

from ..config import RdmaConfig
from ..pcie.device import Bar, PCIeFunction
from ..sim import Resource, Simulator, Store
from ..units import serialize_ns
from .verbs import (CompletionQueue, QueuePair, RdmaError, SendWR,
                    WcStatus, WorkCompletion, WrOpcode)


class IbLink:
    """Point-to-point 100 Gb/s-class link between two NICs."""

    def __init__(self, sim: Simulator, config: RdmaConfig) -> None:
        self.sim = sim
        self.config = config
        self._dirs: dict[tuple, Resource] = {}

    def attach(self, a: "RdmaNic", b: "RdmaNic") -> None:
        a._link, a._peer_nic = self, b
        b._link, b._peer_nic = self, a
        self._dirs[(a, b)] = Resource(self.sim, 1)
        self._dirs[(b, a)] = Resource(self.sim, 1)

    def transfer(self, src: "RdmaNic", dst: "RdmaNic",
                 nbytes: int) -> t.Generator:
        """Occupy the direction for serialization, then propagate."""
        res = self._dirs[(src, dst)]
        req = res.request()
        yield req
        try:
            # ~2% framing/header overhead on the wire.
            wire_bytes = nbytes + max(32, nbytes // 64)
            yield self.sim.timeout(
                serialize_ns(wire_bytes, self.config.bandwidth))
        finally:
            res.release(req)
        yield self.sim.timeout(self.config.wire_latency_ns)


class RdmaNic(PCIeFunction):
    """ConnectX-5-class RDMA NIC endpoint."""

    def __init__(self, sim: Simulator, name: str,
                 config: RdmaConfig) -> None:
        super().__init__(sim, name)
        self.add_bar(0, 0x1000)   # doorbell page (cost modelled as consts)
        self.rdma_config = config
        self._wqes: Store = Store(sim)
        self._link: IbLink | None = None
        self._peer_nic: "RdmaNic | None" = None
        # Per-QP ordering chain for the receive/remote stage: RC
        # semantics demand e.g. an RDMA_WRITE's data is placed before a
        # following SEND's completion is visible.
        self._qp_chains: dict[QueuePair, t.Any] = {}
        self.sends = 0
        self.rdma_writes = 0
        self.rdma_reads = 0

    def on_installed(self) -> None:
        self.sim.process(self._engine())

    def mmio_read(self, bar: Bar, offset: int, length: int) -> bytes:
        return bytes(length)

    def mmio_write(self, bar: Bar, offset: int, data: bytes) -> None:
        pass  # doorbell cost is charged via config constants

    # -- software-facing ----------------------------------------------------

    def enqueue(self, qp: QueuePair, wr: SendWR) -> None:
        self._wqes.put((qp, wr))

    # -- engine ------------------------------------------------------------------

    def _engine(self) -> t.Generator:
        """Two-stage pipeline.

        The *tx stage* (WQE fetch, payload DMA, NIC tx processing, wire
        serialization) runs sequentially — it models the NIC's transmit
        context and sets the per-QP message rate.  The *remote stage*
        (peer NIC rx, placement DMA, completions, and for RDMA_READ the
        whole remote round trip) runs in a spawned process, chained
        per-QP so RC ordering holds while the tx engine moves on to the
        next WQE — without this overlap a NIC would cap out far below
        real message rates at high queue depth.
        """
        from ..sim import Event

        while True:
            qp, wr = yield self._wqes.get()
            link, peer_nic = self._link, self._peer_nic
            try:
                if link is None or peer_nic is None:
                    raise RdmaError(f"{self.name}: no link attached")
                payload = yield from self._tx_stage(qp, wr)
            except RdmaError:
                qp.send_cq.push(WorkCompletion(
                    wr.wr_id, wr.opcode, WcStatus.LOCAL_ERROR))
                continue
            prev = self._qp_chains.get(qp)
            done = Event(self.sim)
            self._qp_chains[qp] = done
            self.sim.process(self._remote_stage(qp, wr, payload, prev,
                                                done))

    def _tx_stage(self, qp: QueuePair, wr: SendWR) -> t.Generator:
        """Sender-side work: validate, fetch payload, transmit."""
        cfg = self.rdma_config
        link, peer_nic = self._link, self._peer_nic
        assert link is not None and peer_nic is not None
        peer = qp.peer
        assert peer is not None

        payload = b""
        if wr.opcode is WrOpcode.SEND:
            if wr.inline_data is not None:
                payload = wr.inline_data
            elif wr.length:
                payload = yield from self.dma_read(wr.local_addr,
                                                   wr.length)
            yield self.sim.timeout(cfg.nic_tx_ns)
            yield from link.transfer(self, peer_nic,
                                     max(len(payload), 64))
        elif wr.opcode is WrOpcode.RDMA_WRITE:
            remote_mr = peer.pd.lookup(wr.rkey)
            remote_mr.check(wr.remote_addr, wr.length)
            payload = yield from self.dma_read(wr.local_addr, wr.length)
            yield self.sim.timeout(cfg.nic_tx_ns)
            yield from link.transfer(self, peer_nic, wr.length)
        elif wr.opcode is WrOpcode.RDMA_READ:
            remote_mr = peer.pd.lookup(wr.rkey)
            remote_mr.check(wr.remote_addr, wr.length)
            yield self.sim.timeout(cfg.nic_tx_ns)
            yield from link.transfer(self, peer_nic, 64)  # read request
        else:  # pragma: no cover - enum is exhaustive
            raise RdmaError(f"unknown opcode {wr.opcode}")
        return payload

    def _remote_stage(self, qp: QueuePair, wr: SendWR, payload: bytes,
                      prev, done) -> t.Generator:
        """Receiver-side work, ordered per QP behind earlier WQEs."""
        cfg = self.rdma_config
        link, peer_nic = self._link, self._peer_nic
        assert link is not None and peer_nic is not None
        peer = qp.peer
        assert peer is not None
        if prev is not None and not prev.processed:
            yield prev
        try:
            if wr.opcode is WrOpcode.SEND:
                yield self.sim.timeout(cfg.nic_rx_ns)
                if not peer.recv_queue:
                    raise RdmaError("receiver-not-ready: no posted recv")
                recv = peer.recv_queue.pop(0)
                if len(payload) > recv.length:
                    raise RdmaError("recv buffer too small")
                if payload:
                    yield from peer_nic.dma_write(recv.addr, payload)
                peer.recv_cq.push(WorkCompletion(
                    recv.wr_id, WrOpcode.SEND, WcStatus.SUCCESS,
                    byte_len=len(payload), is_recv=True))
                qp.send_cq.push(WorkCompletion(
                    wr.wr_id, wr.opcode, WcStatus.SUCCESS,
                    byte_len=len(payload)))
                self.sends += 1
            elif wr.opcode is WrOpcode.RDMA_WRITE:
                yield self.sim.timeout(cfg.nic_rx_ns)
                yield from peer_nic.dma_write(wr.remote_addr, payload)
                qp.send_cq.push(WorkCompletion(
                    wr.wr_id, wr.opcode, WcStatus.SUCCESS,
                    byte_len=wr.length))
                self.rdma_writes += 1
            else:  # RDMA_READ
                yield self.sim.timeout(cfg.read_turnaround_ns)
                data = yield from peer_nic.dma_read(wr.remote_addr,
                                                    wr.length)
                yield from link.transfer(peer_nic, self, wr.length)
                yield self.sim.timeout(cfg.nic_rx_ns)
                yield from self.dma_write(wr.local_addr, data)
                qp.send_cq.push(WorkCompletion(
                    wr.wr_id, wr.opcode, WcStatus.SUCCESS,
                    byte_len=wr.length))
                self.rdma_reads += 1
        except RdmaError:
            qp.send_cq.push(WorkCompletion(
                wr.wr_id, wr.opcode, WcStatus.LOCAL_ERROR))
        finally:
            done.succeed()
