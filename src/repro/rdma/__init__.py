"""Verbs-like RDMA substrate (QPs, CQs, MRs) with a ConnectX-5-class NIC
and 100 Gb/s wire model — the transport under the NVMe-oF baseline."""

from .nic import IbLink, RdmaNic
from .verbs import (CompletionQueue, MemoryRegion, ProtectionDomain,
                    QueuePair, RdmaError, RecvWR, SendWR, WcStatus,
                    WorkCompletion, WrOpcode)

__all__ = [
    "RdmaNic", "IbLink",
    "QueuePair", "CompletionQueue", "ProtectionDomain", "MemoryRegion",
    "SendWR", "RecvWR", "WorkCompletion", "WcStatus", "WrOpcode",
    "RdmaError",
]
