"""Synthetic storage workloads: fio-like jobs plus realistic access
patterns (zipfian popularity, bursty arrivals, mixed-size profiles)."""

from .fio import FioJob, FioResult, fio_generator, run_fio, run_fio_many
from .open_loop import (ARRIVAL_MODELS, OpenLoopJob, OpenLoopResult,
                        arrival_times, open_loop_generator, peak_rate,
                        rate_at, run_open_loop, run_open_loop_many)
from .patterns import (BurstyArrivals, MixedBlockProfile, PatternResult,
                       PROFILES, ZipfianAccess, pattern_generator,
                       run_pattern)
from .replay import (TRACE_OPS, BlockTrace, RecordingDevice,
                     ReplayResult, TraceEntry, TraceError, replay_trace)

__all__ = ["FioJob", "FioResult", "fio_generator", "run_fio",
           "run_fio_many",
           "ARRIVAL_MODELS", "OpenLoopJob", "OpenLoopResult",
           "arrival_times", "open_loop_generator", "peak_rate",
           "rate_at", "run_open_loop", "run_open_loop_many",
           "ZipfianAccess", "BurstyArrivals", "MixedBlockProfile",
           "PROFILES", "PatternResult", "pattern_generator",
           "run_pattern",
           "BlockTrace", "TraceEntry", "TraceError", "TRACE_OPS",
           "RecordingDevice", "ReplayResult", "replay_trace"]
