"""Flexible-I/O-Tester-like synthetic workload generator.

Models the fio usage in the paper's evaluation (Sec. VI): random
read/write, configurable block size, queue depth and duration, per-I/O
completion-latency recording.  ``iodepth`` is implemented the way fio's
async engines behave: that many I/Os are kept outstanding at all times.

The paper runs 60-second wall-clock tests; simulated runs are configured
by I/O count or simulated time instead — QD1 latency distributions on a
consistent device converge after a few thousand samples (the media
jitter model is stationary), which tests assert.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from ..driver.blockdev import BlockDevice, BlockRequest
from ..sim import BoxplotStats, LatencyRecorder, Simulator


@dataclasses.dataclass(frozen=True)
class FioJob:
    """A synthetic workload specification (fio-style)."""

    name: str = "job"
    rw: str = "randread"          # randread|randwrite|randrw|read|write
    bs: int = 4096                # bytes per I/O
    iodepth: int = 1
    total_ios: int | None = 1000  # stop after this many I/Os…
    runtime_ns: int | None = None  # …or after this much simulated time
    rwmixread: int = 50           # % reads for randrw
    region_lbas: int | None = None  # working-set bound (default: device)
    ramp_ios: int = 0             # warm-up I/Os excluded from stats
    seed_stream: str = "fio"
    verify: bool = False          # re-read and compare after writes

    def __post_init__(self) -> None:
        if self.rw not in ("randread", "randwrite", "randrw", "read",
                           "write"):
            raise ValueError(f"unknown rw mode: {self.rw}")
        if self.bs <= 0 or self.iodepth <= 0:
            raise ValueError("bs and iodepth must be positive")
        if self.total_ios is None and self.runtime_ns is None:
            raise ValueError("need total_ios or runtime_ns")
        if not 0 <= self.rwmixread <= 100:
            raise ValueError("rwmixread must be 0..100")


@dataclasses.dataclass
class FioResult:
    """Measurements from one job run."""

    job: FioJob
    device_name: str
    ios: int
    bytes_moved: int
    elapsed_ns: int
    read_latencies: LatencyRecorder
    write_latencies: LatencyRecorder
    errors: int = 0

    @property
    def iops(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.ios / (self.elapsed_ns / 1e9)

    @property
    def bandwidth_bytes_per_s(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.bytes_moved / (self.elapsed_ns / 1e9)

    def summary(self, op: str = "read") -> BoxplotStats:
        rec = (self.read_latencies if op == "read"
               else self.write_latencies)
        return rec.summary()

    def all_latencies(self) -> np.ndarray:
        return np.concatenate([self.read_latencies.values(),
                               self.write_latencies.values()])


def fio_generator(device: BlockDevice, job: FioJob
                  ) -> t.Generator[t.Any, t.Any, FioResult]:
    """Process body running one fio job against a block device.

    Use :func:`run_fio` for the common single-job case; compose this
    directly for simultaneous multi-device workloads.
    """
    sim = device.sim
    lba_per_io = max(1, job.bs // device.lba_bytes)
    if job.bs % device.lba_bytes:
        raise ValueError(f"bs {job.bs} not a multiple of the LBA size")
    region = job.region_lbas or device.capacity_lbas
    region = min(region, device.capacity_lbas)
    max_slot = region // lba_per_io
    if max_slot < 1:
        raise ValueError("region smaller than one I/O")
    rng = sim.rng.stream(f"{job.seed_stream}:{job.name}:{device.name}")

    result = FioResult(
        job=job, device_name=device.name, ios=0, bytes_moved=0,
        elapsed_ns=0,
        read_latencies=LatencyRecorder(f"{job.name}-read"),
        write_latencies=LatencyRecorder(f"{job.name}-write"))

    # One reusable payload; the first 16 bytes are patched per-I/O so
    # verify mode can detect misdirected writes without regenerating
    # kilobytes of random data per request (see HPC guide: no per-op
    # allocation in hot loops).
    base_payload = bytes(rng.integers(0, 256, size=job.bs,
                                      dtype=np.uint8))

    start = sim.now
    deadline = (start + job.runtime_ns if job.runtime_ns is not None
                else None)
    state = {"issued": 0, "done": 0, "stop": False}

    def pick_op() -> str:
        if job.rw in ("randread", "read"):
            return "read"
        if job.rw in ("randwrite", "write"):
            return "write"
        return "read" if rng.integers(0, 100) < job.rwmixread else "write"

    def pick_lba(seq_index: int) -> int:
        if job.rw in ("read", "write"):          # sequential modes
            return (seq_index % max_slot) * lba_per_io
        return int(rng.integers(0, max_slot)) * lba_per_io

    def should_stop() -> bool:
        if job.total_ios is not None and state["issued"] >= job.total_ios:
            return True
        if deadline is not None and sim.now >= deadline:
            return True
        return False

    def worker(sim: Simulator) -> t.Generator:
        while not should_stop():
            index = state["issued"]
            state["issued"] += 1
            op = pick_op()
            lba = pick_lba(index)
            if op == "write":
                payload = (index.to_bytes(8, "little")
                           + lba.to_bytes(8, "little")
                           + base_payload[16:])
                request = BlockRequest("write", lba=lba, data=payload)
            else:
                request = BlockRequest("read", lba=lba,
                                       nblocks=lba_per_io)
            completed = yield device.submit(request)
            state["done"] += 1
            if not completed.ok:
                result.errors += 1
                continue
            if state["done"] > job.ramp_ios:
                if op == "read":
                    result.read_latencies.record(completed.latency_ns)
                else:
                    result.write_latencies.record(completed.latency_ns)
                result.ios += 1
                result.bytes_moved += job.bs
            if job.verify and op == "write":
                check = yield device.submit(
                    BlockRequest("read", lba=lba, nblocks=lba_per_io))
                if check.ok and check.result != request.data:
                    raise AssertionError(
                        f"verify failed at lba {lba}: data corrupted")

    workers = [sim.process(worker(sim)) for _ in range(job.iodepth)]
    yield sim.all_of(workers)
    result.elapsed_ns = sim.now - start
    return result


def run_fio(device: BlockDevice, job: FioJob) -> FioResult:
    """Run one job to completion on the device's simulator."""
    sim = device.sim
    proc = sim.process(fio_generator(device, job))
    return sim.run(until=proc)


def run_fio_many(pairs: t.Sequence[tuple[BlockDevice, FioJob]]
                 ) -> list[FioResult]:
    """Run several jobs *simultaneously* (multi-host workloads).

    All devices must share one simulator.
    """
    if not pairs:
        return []
    sim = pairs[0][0].sim
    for device, _job in pairs:
        if device.sim is not sim:
            raise ValueError("all devices must share a simulator")
    procs = [sim.process(fio_generator(device, job))
             for device, job in pairs]
    done = sim.all_of(procs)
    sim.run(until=done)
    return [proc.value for proc in procs]
