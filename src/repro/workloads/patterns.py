"""Realistic workload patterns (the paper's future-work validation:
"performing experiments using our driver for more general use, such as
... realistic workloads").

Beyond fio's uniform-random synthetic load, these model the access
patterns real deployments put on shared block storage:

* :class:`ZipfianAccess` — skewed hot/cold block popularity (content
  stores, page caches under databases);
* :class:`BurstyArrivals` — ON/OFF traffic with think times instead of
  closed-loop saturation (interactive services);
* presets mirroring fio's classic profiles (``oltp``, ``webserver``,
  ``backup``) with mixed block sizes and read/write ratios.

All of it composes with any :class:`~repro.driver.blockdev.BlockDevice`.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from ..driver.blockdev import BlockDevice, BlockRequest
from ..sim import LatencyRecorder, Simulator


@dataclasses.dataclass(frozen=True)
class ZipfianAccess:
    """Zipf-distributed block popularity over a working set."""

    region_lbas: int
    alpha: float = 1.2
    hot_slots: int = 4096

    def sampler(self, rng: np.random.Generator,
                lba_per_io: int) -> t.Callable[[], int]:
        slots = min(self.hot_slots, self.region_lbas // lba_per_io)
        if slots < 1:
            raise ValueError("region too small for one I/O")
        # Precompute the pmf once (guides: vectorise, no per-op setup).
        ranks = np.arange(1, slots + 1, dtype=np.float64)
        pmf = ranks ** -self.alpha
        pmf /= pmf.sum()
        # Random permutation so "hot" blocks are scattered over the
        # region rather than clustered at LBA 0.
        placement = rng.permutation(slots)

        def sample() -> int:
            rank = rng.choice(slots, p=pmf)
            return int(placement[rank]) * lba_per_io

        return sample


@dataclasses.dataclass(frozen=True)
class BurstyArrivals:
    """ON/OFF arrival process: bursts of back-to-back I/Os separated by
    exponential think times."""

    burst_len_mean: float = 8.0
    think_time_mean_ns: float = 200_000.0

    def next_burst(self, rng: np.random.Generator) -> tuple[int, int]:
        burst = max(1, int(rng.geometric(1.0 / self.burst_len_mean)))
        think = int(rng.exponential(self.think_time_mean_ns))
        return burst, think


@dataclasses.dataclass(frozen=True)
class MixedBlockProfile:
    """A named profile: (bs, weight, read_fraction) triples."""

    name: str
    mix: tuple[tuple[int, float, float], ...]

    def sampler(self, rng: np.random.Generator
                ) -> t.Callable[[], tuple[int, bool]]:
        sizes = np.array([m[0] for m in self.mix])
        weights = np.array([m[1] for m in self.mix], dtype=np.float64)
        weights /= weights.sum()
        read_fracs = np.array([m[2] for m in self.mix])

        def sample() -> tuple[int, bool]:
            i = rng.choice(len(sizes), p=weights)
            is_read = rng.random() < read_fracs[i]
            return int(sizes[i]), bool(is_read)

        return sample


#: fio-style classic profiles.
PROFILES = {
    # OLTP: small random I/O, ~70/30 read/write
    "oltp": MixedBlockProfile("oltp", ((8192, 1.0, 0.7),)),
    # webserver: mostly reads, mixed sizes
    "webserver": MixedBlockProfile("webserver",
                                   ((4096, 0.65, 1.0),
                                    (16384, 0.25, 1.0),
                                    (65536, 0.10, 0.95))),
    # backup: large sequentialish writes
    "backup": MixedBlockProfile("backup", ((131072, 1.0, 0.05),)),
}


@dataclasses.dataclass
class PatternResult:
    name: str
    device_name: str
    ios: int
    bytes_moved: int
    elapsed_ns: int
    latencies: LatencyRecorder
    errors: int = 0

    @property
    def iops(self) -> float:
        return self.ios / (self.elapsed_ns / 1e9) if self.elapsed_ns else 0.0

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return (self.bytes_moved / (self.elapsed_ns / 1e9)
                if self.elapsed_ns else 0.0)


def pattern_generator(device: BlockDevice, profile: MixedBlockProfile,
                      total_ios: int,
                      access: ZipfianAccess | None = None,
                      arrivals: BurstyArrivals | None = None,
                      concurrency: int = 4,
                      seed_stream: str = "pattern"
                      ) -> t.Generator[t.Any, t.Any, PatternResult]:
    """Run a profile against a device; returns a :class:`PatternResult`.

    ``concurrency`` bounds outstanding I/Os within a burst (open-loop
    up to that limit); with ``arrivals`` unset the load is closed-loop.
    """
    sim = device.sim
    rng = sim.rng.stream(f"{seed_stream}:{profile.name}:{device.name}")
    size_sampler = profile.sampler(rng)
    region = access.region_lbas if access else device.capacity_lbas
    region = min(region, device.capacity_lbas)

    result = PatternResult(profile.name, device.name, 0, 0, 0,
                           LatencyRecorder(profile.name))
    start = sim.now
    issued = {"n": 0}
    payload_cache: dict[int, bytes] = {}

    # Pre-bind the zipf sampler once (it precomputes a pmf); it samples
    # at the profile's smallest I/O granularity so every size stays
    # within the region.
    zipf_sample = None
    if access is not None:
        smallest_bs = min(m[0] for m in profile.mix)
        zipf_sample = access.sampler(rng,
                                     smallest_bs // device.lba_bytes)

    def make_request() -> BlockRequest:
        bs, is_read = size_sampler()
        lba_per_io = bs // device.lba_bytes
        if zipf_sample is not None:
            lba = zipf_sample()
            lba -= lba % lba_per_io            # align to this I/O's size
        else:
            max_slot = max(1, region // lba_per_io)
            lba = int(rng.integers(0, max_slot)) * lba_per_io
        if is_read:
            return BlockRequest("read", lba=lba, nblocks=lba_per_io)
        payload = payload_cache.get(bs)
        if payload is None:
            payload = bytes(rng.integers(0, 256, bs, dtype=np.uint8))
            payload_cache[bs] = payload
        return BlockRequest("write", lba=lba, data=payload)

    def worker(sim: Simulator) -> t.Generator:
        while issued["n"] < total_ios:
            if arrivals is not None:
                burst, think = arrivals.next_burst(rng)
            else:
                burst, think = total_ios, 0
            for _ in range(burst):
                if issued["n"] >= total_ios:
                    break
                issued["n"] += 1
                request = make_request()
                completed = yield device.submit(request)
                if completed.ok:
                    result.ios += 1
                    result.latencies.record(completed.latency_ns)
                    if request.op != "flush":
                        result.bytes_moved += (request.nblocks
                                               * device.lba_bytes)
                else:
                    result.errors += 1
            if think and issued["n"] < total_ios:
                yield sim.timeout(think)

    workers = [sim.process(worker(sim)) for _ in range(concurrency)]
    yield sim.all_of(workers)
    result.elapsed_ns = sim.now - start
    return result


def run_pattern(device: BlockDevice, profile: MixedBlockProfile,
                total_ios: int, **kwargs) -> PatternResult:
    sim = device.sim
    proc = sim.process(pattern_generator(device, profile, total_ios,
                                         **kwargs))
    return sim.run(until=proc)
