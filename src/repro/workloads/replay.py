"""Block-trace record and replay.

Records the I/O stream a workload produced (arrival time, op, lba,
size) and replays it — open-loop, honouring inter-arrival gaps — against
any block device.  This is how storage evaluations compare transports
under *identical* offered load rather than identical closed-loop
pressure: at QD1 a slower transport also slows the request stream down,
which flatters it; a replayed trace does not.
"""

from __future__ import annotations

import dataclasses
import json
import typing as t

import numpy as np

from ..driver.blockdev import BlockDevice, BlockRequest
from ..sim import Event, LatencyRecorder, Signal

#: the only ops a portable trace may carry
TRACE_OPS = ("read", "write")


class TraceError(ValueError):
    """A malformed trace record (parse- or validation-time)."""


@dataclasses.dataclass(frozen=True)
class TraceEntry:
    arrival_ns: int          # relative to trace start
    op: str                  # "read" | "write"
    lba: int
    nblocks: int

    #: exactly the wire fields, in canonical order
    FIELDS = ("arrival_ns", "op", "lba", "nblocks")

    def validate(self) -> "TraceEntry":
        if self.op not in TRACE_OPS:
            raise TraceError(f"unknown op {self.op!r} "
                             f"(expected one of {TRACE_OPS})")
        for field in ("arrival_ns", "lba", "nblocks"):
            value = getattr(self, field)
            # bool is an int subclass; a trace with "lba": true is junk.
            if not isinstance(value, int) or isinstance(value, bool):
                raise TraceError(f"{field} must be an integer, "
                                 f"got {value!r}")
            if value < 0:
                raise TraceError(f"{field} must be >= 0, got {value}")
        if self.nblocks == 0:
            raise TraceError("nblocks must be >= 1")
        return self


@dataclasses.dataclass
class BlockTrace:
    """An ordered stream of block I/Os."""

    entries: list[TraceEntry] = dataclasses.field(default_factory=list)

    def append(self, entry: TraceEntry) -> None:
        if self.entries and entry.arrival_ns < self.entries[-1].arrival_ns:
            raise TraceError(
                f"record {len(self.entries) + 1}: arrival_ns "
                f"{entry.arrival_ns} earlier than predecessor "
                f"{self.entries[-1].arrival_ns} — trace entries must "
                f"be time-ordered")
        self.entries.append(entry)

    def validate_order(self) -> "BlockTrace":
        """Check monotone arrivals, naming the offending record.

        ``append`` enforces ordering incrementally, but a trace built
        by passing a list straight to the constructor bypasses it; the
        replayer calls this so such a trace fails loudly instead of
        being silently replayed out of order.
        """
        prev = None
        for i, entry in enumerate(self.entries, start=1):
            if prev is not None and entry.arrival_ns < prev:
                raise TraceError(
                    f"record {i}: arrival_ns {entry.arrival_ns} earlier "
                    f"than predecessor {prev} — trace entries must be "
                    f"time-ordered")
            prev = entry.arrival_ns
        return self

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def duration_ns(self) -> int:
        return self.entries[-1].arrival_ns if self.entries else 0

    def scaled(self, factor: float) -> "BlockTrace":
        """Time-dilated copy (factor < 1 compresses = more load)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return BlockTrace([dataclasses.replace(
            e, arrival_ns=int(e.arrival_ns * factor))
            for e in self.entries])

    # -- portable form -----------------------------------------------------

    def as_dicts(self) -> list[dict]:
        """Plain-data view: one dict per entry, canonical field order."""
        return [{f: getattr(e, f) for f in TraceEntry.FIELDS}
                for e in self.entries]

    @classmethod
    def from_dicts(cls, records: t.Iterable[dict]) -> "BlockTrace":
        """Rebuild a trace from plain dicts, validating every record.

        Raises :class:`TraceError` naming the offending record number
        for unknown/missing fields, bad types, negative values, an op
        outside :data:`TRACE_OPS`, or out-of-order arrivals.
        """
        trace = cls()
        for i, record in enumerate(records, start=1):
            if not isinstance(record, dict):
                raise TraceError(f"record {i}: expected an object, "
                                 f"got {type(record).__name__}")
            unknown = set(record) - set(TraceEntry.FIELDS)
            if unknown:
                raise TraceError(f"record {i}: unknown field(s) "
                                 f"{sorted(unknown)}")
            missing = set(TraceEntry.FIELDS) - set(record)
            if missing:
                raise TraceError(f"record {i}: missing field(s) "
                                 f"{sorted(missing)}")
            try:
                entry = TraceEntry(**record).validate()
                trace.append(entry)
            except TraceError as exc:
                raise TraceError(f"record {i}: {exc}") from None
            except ValueError as exc:
                raise TraceError(f"record {i}: {exc}") from None
        return trace

    def to_jsonl(self) -> str:
        """One JSON object per line — the interchange format."""
        return "".join(json.dumps(rec, sort_keys=True) + "\n"
                       for rec in self.as_dicts())

    @classmethod
    def from_jsonl(cls, text: str) -> "BlockTrace":
        """Parse :meth:`to_jsonl` output, validating each line.

        Blank lines are tolerated; anything else malformed raises
        :class:`TraceError` with the 1-based line number.
        """
        records: list[dict] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise TraceError(f"line {lineno}: invalid JSON "
                                 f"({exc.msg})") from None
        return cls.from_dicts(records)


class RecordingDevice(BlockDevice):
    """Wraps a device, recording every request's arrival into a trace."""

    def __init__(self, inner: BlockDevice) -> None:
        self.inner = inner
        self.trace = BlockTrace()
        self._t0: int | None = None
        super().__init__(inner.sim, f"{inner.name}+rec",
                         lba_bytes=inner.lba_bytes,
                         capacity_lbas=inner.capacity_lbas,
                         queue_depth=inner.queue_depth)

    def _driver_submit(self, request: BlockRequest) -> t.Generator:
        if self._t0 is None:
            self._t0 = self.sim.now
        if request.op in ("read", "write"):
            self.trace.append(TraceEntry(self.sim.now - self._t0,
                                         request.op, request.lba,
                                         request.nblocks))
        inner_request = _clone(request)
        completed = yield self.inner.submit(inner_request)
        request.status = completed.status
        request.result = completed.result


def _clone(request: BlockRequest) -> BlockRequest:
    if request.op in BlockRequest.DATA_OUT_OPS:
        return BlockRequest(request.op, lba=request.lba,
                            data=request.data)
    if request.op == "flush":
        return BlockRequest("flush")
    return BlockRequest(request.op, lba=request.lba,
                        nblocks=request.nblocks)


@dataclasses.dataclass
class ReplayResult:
    issued: int
    completed: int
    errors: int
    elapsed_ns: int
    latencies: LatencyRecorder
    #: queueing delay between scheduled arrival and actual issue —
    #: nonzero when the device cannot keep up with the offered load
    max_backlog_ns: int = 0


def replay_trace(device: BlockDevice, trace: BlockTrace,
                 payload_byte: int = 0x5A, *,
                 speedup: float = 1.0,
                 inflight_cap: int | None = None,
                 open_loop: bool = False) -> ReplayResult:
    """Replay a trace open-loop against a device.

    Arrivals are scheduled at their recorded times (divided by
    ``speedup`` — 2.0 offers the same stream twice as fast); an I/O
    whose predecessor backlog pushes it past its arrival time is issued
    late and the lateness reported (``max_backlog_ns``).

    ``inflight_cap`` bounds outstanding requests the way a real
    driver's queue resources would: an arrival past the cap waits for a
    completion.  With ``open_loop=True`` latency is measured from the
    *scheduled* arrival instead of the actual submission, so software
    backlog (cap waits, late issues) shows up in the distribution
    rather than hiding in a stalled issuer.

    The trace's arrival order is validated up front: non-monotonic
    timestamps raise a record-numbered :class:`TraceError` instead of
    being silently replayed out of order.
    """
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    if inflight_cap is not None and inflight_cap < 1:
        raise ValueError("inflight_cap must be >= 1")
    trace.validate_order()
    sim = device.sim
    result = ReplayResult(0, 0, 0, 0, LatencyRecorder("replay"))
    start = sim.now
    state = {"inflight": 0}
    free = Signal(sim)
    record_open = open_loop or inflight_cap is not None

    def completer(sim, done: Event, scheduled_at: int) -> t.Generator:
        request = yield done
        state["inflight"] -= 1
        free.fire()
        result.completed += 1
        if request.ok:
            result.latencies.record(sim.now - scheduled_at if open_loop
                                    else request.latency_ns)
        else:
            result.errors += 1

    def issuer(sim) -> t.Generator:
        done_events: list[Event] = []
        for entry in trace.entries:
            offset = (entry.arrival_ns if speedup == 1.0
                      else int(entry.arrival_ns / speedup))
            target = start + offset
            if sim.now < target:
                yield sim.timeout(target - sim.now)
            if (inflight_cap is not None
                    and state["inflight"] >= inflight_cap):
                while state["inflight"] >= inflight_cap:
                    yield free.wait()
            if sim.now > target:
                result.max_backlog_ns = max(result.max_backlog_ns,
                                            sim.now - target)
            if entry.op == "write":
                payload = bytes([payload_byte]) * (entry.nblocks
                                                   * device.lba_bytes)
                request = BlockRequest("write", lba=entry.lba,
                                       data=payload)
            else:
                request = BlockRequest("read", lba=entry.lba,
                                       nblocks=entry.nblocks)
            result.issued += 1
            state["inflight"] += 1
            done = device.submit(request)
            if record_open:
                done_events.append(sim.process(
                    completer(sim, done, target)))
            else:
                done_events.append(done)
        if not record_open:
            # Historical path: record device latencies in issue order
            # once everything lands (byte-identical to the original
            # replayer for default arguments).
            if done_events:
                outcome = yield sim.all_of(done_events)
                for request in outcome.values():
                    result.completed += 1
                    if request.ok:
                        result.latencies.record(request.latency_ns)
                    else:
                        result.errors += 1
        elif done_events:
            yield sim.all_of(done_events)
        result.elapsed_ns = sim.now - start

    sim.run(until=sim.process(issuer(sim)))
    return result
