"""Layered metrics registry: counters, gauges and summaries.

Deterministic by construction: every value is derived from simulation
state (integer sim-time, component accounting counters, seeded RNG
draws already made by the model) — the registry itself never reads
wall-clock time or draws randomness.  Histogram-style instruments are
backed by :class:`~repro.sim.stats.LatencyRecorder` and summarised with
:class:`~repro.sim.stats.BoxplotStats`, the exact classes the
benchmarks use, so benchmark output and telemetry agree by
construction.

Naming follows Prometheus conventions: ``repro_<layer>_<what>_<unit>``
with ``_total`` for counters; label sets distinguish series within a
family (e.g. ``repro_fabric_tlps_total{kind="posted"}``).
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..sim.stats import BoxplotStats, LatencyRecorder

#: Instrument kinds (Prometheus ``# TYPE`` names).
COUNTER = "counter"
GAUGE = "gauge"
SUMMARY = "summary"
HISTOGRAM = "histogram"

LabelDict = t.Mapping[str, t.Any]
_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: LabelDict) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclasses.dataclass
class MetricFamily:
    """One named metric and all its labelled series."""

    name: str
    kind: str
    help: str = ""
    unit: str = ""
    #: label-key -> int/float (counter, gauge) or LatencyRecorder /
    #: BoxplotStats (summary)
    series: dict[_LabelKey, t.Any] = dataclasses.field(default_factory=dict)

    def samples(self) -> list[tuple[_LabelKey, t.Any]]:
        return sorted(self.series.items())


class MetricsError(Exception):
    pass


class MetricsRegistry:
    """All instruments of one simulation, keyed by family name."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    # -- family management -------------------------------------------------

    def _family(self, name: str, kind: str, help: str,
                unit: str) -> MetricFamily:
        fam = self._families.get(name)
        if fam is None:
            fam = MetricFamily(name=name, kind=kind, help=help, unit=unit)
            self._families[name] = fam
        elif fam.kind != kind:
            raise MetricsError(
                f"metric {name!r} is a {fam.kind}, not a {kind}")
        else:
            if help and not fam.help:
                fam.help = help
            if unit and not fam.unit:
                fam.unit = unit
        return fam

    def families(self) -> list[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str, **labels: t.Any) -> t.Any:
        """Current value of one series (None when absent)."""
        fam = self._families.get(name)
        if fam is None:
            return None
        return fam.series.get(_label_key(labels))

    # -- instruments -------------------------------------------------------

    def counter_add(self, name: str, value: int = 1, help: str = "",
                    **labels: t.Any) -> None:
        """Add to a monotonic counter series (creating it at 0)."""
        if value < 0:
            raise MetricsError(f"counter {name} decremented by {value}")
        fam = self._family(name, COUNTER, help, "")
        key = _label_key(labels)
        fam.series[key] = fam.series.get(key, 0) + value

    def counter_set(self, name: str, value: int, help: str = "",
                    **labels: t.Any) -> None:
        """Set a counter series to an externally-accumulated total
        (component accounting ints collected at snapshot time)."""
        fam = self._family(name, COUNTER, help, "")
        fam.series[_label_key(labels)] = value

    def gauge_set(self, name: str, value: float, help: str = "",
                  **labels: t.Any) -> None:
        fam = self._family(name, GAUGE, help, "")
        fam.series[_label_key(labels)] = value

    def observe(self, name: str, value_ns: int, help: str = "",
                **labels: t.Any) -> None:
        """Record one observation into a summary series (integer ns)."""
        fam = self._family(name, SUMMARY, help, "ns")
        key = _label_key(labels)
        rec = fam.series.get(key)
        if rec is None or not isinstance(rec, LatencyRecorder):
            rec = LatencyRecorder(name)
            fam.series[key] = rec
        rec.record(value_ns)

    def summary_set(self, name: str, stats: BoxplotStats, help: str = "",
                    **labels: t.Any) -> None:
        """Publish a precomputed summary (e.g. a benchmark recorder's
        :class:`BoxplotStats`) as a series."""
        fam = self._family(name, SUMMARY, help, "ns")
        fam.series[_label_key(labels)] = stats

    def histogram_set(self, name: str, hist: t.Any, help: str = "",
                      **labels: t.Any) -> None:
        """Publish a :class:`~repro.telemetry.hist.LogHistogram` as a
        classic Prometheus histogram series (set-style: collect() may
        repeat without double counting)."""
        fam = self._family(name, HISTOGRAM, help, "ns")
        fam.series[_label_key(labels)] = hist

    # -- snapshot ----------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, t.Any]]:
        """Plain-data view: family -> {kind, help, series: [...]}.
        Summary series are resolved to :class:`BoxplotStats`."""
        out: dict[str, dict[str, t.Any]] = {}
        for fam in self.families():
            series = []
            for key, value in fam.samples():
                if isinstance(value, LatencyRecorder):
                    value = value.summary()
                series.append({"labels": dict(key), "value": value})
            out[fam.name] = {"kind": fam.kind, "help": fam.help,
                             "unit": fam.unit, "series": series}
        return out
