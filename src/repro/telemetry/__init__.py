"""Observability for the simulated cluster (ISSUE 3 tentpole).

Three pieces:

* **Spans** (:mod:`.spans`) — per-I/O stage boundaries threaded from
  block-layer submit through SQ/doorbell/fetch/media/CQE back to the
  completion poll; stage durations telescope to the end-to-end latency
  exactly.
* **Metrics** (:mod:`.metrics`) — a deterministic registry of counters,
  gauges and summaries scraped from component accounting by the
  :class:`~repro.telemetry.hub.Telemetry` hub.
* **Exporters** (:mod:`.perfetto`, :mod:`.prometheus`) — Chrome/Perfetto
  trace-event JSON and Prometheus text exposition, both byte-identical
  across identical runs.

The ISSUE-8 time-series layer builds on those:

* **Histograms** (:mod:`.hist`) — mergeable log-bucketed latency
  histograms per ``(tenant, op, device)``;
* **Time series** (:mod:`.timeseries`) — a sim-clock-driven windowed
  sampler snapshotting gauges, rates and windowed quantiles into
  ring-buffered series (JSONL / Perfetto counter-track exports);
* **SLOs** (:mod:`.slo`) — latency objectives with multi-window
  burn-rate alerting over the sampled windows.

Everything is off by default: components carry a ``telemetry``
attribute pointing at :data:`NULL_TELEMETRY`, and the hot paths pay one
attribute/None check when disabled (the :class:`~repro.sim.Tracer`
discipline); histograms/sampler/SLO are further opt-ins on a live hub
(``enable_histograms`` / ``enable_sampler`` / ``enable_slo``).

``run_scenario`` / ``run_slo`` and friends live in :mod:`.runner` and
are loaded lazily here — the runner pulls in the scenario builders,
which import the driver stack, which imports this package; importing it
eagerly would make that cycle load-order sensitive.
"""

from .hist import (DEFAULT_SUB_BITS, QUANTILES, HistogramError,
                   LatencyHistograms, LogHistogram)
from .hub import NULL_TELEMETRY, NullTelemetry, Telemetry
from .metrics import (COUNTER, GAUGE, HISTOGRAM, SUMMARY, MetricFamily,
                      MetricsError, MetricsRegistry)
from .perfetto import COUNTER_PID, counter_events, span_events, \
    spans_to_perfetto
from .prometheus import registry_to_prometheus
from .slo import SloAlert, SloEngine, SloSpec
from .spans import BOUNDARIES, STAGES, IoSpan, SpanRecorder
from .timeseries import SeriesBank, TelemetrySampler, TimeSeries

__all__ = [
    "BOUNDARIES", "COUNTER", "COUNTER_PID", "DEFAULT_SUB_BITS", "GAUGE",
    "HISTOGRAM", "QUANTILES", "SUMMARY", "STAGES",
    "HistogramError", "IoSpan", "LatencyHistograms", "LogHistogram",
    "MetricFamily", "MetricsError", "MetricsRegistry",
    "NULL_TELEMETRY", "NullTelemetry", "SeriesBank", "SloAlert",
    "SloEngine", "SloSpec", "SpanRecorder", "Telemetry",
    "TelemetrySampler", "TelemetryRun", "TimeSeries",
    "TELEMETRY_SCENARIOS", "SloRun",
    "counter_events", "registry_to_prometheus", "run_scenario",
    "run_slo", "span_events", "spans_to_perfetto",
]

_LAZY = ("run_scenario", "TelemetryRun", "TELEMETRY_SCENARIOS",
         "run_slo", "SloRun")


def __getattr__(name: str):
    if name in _LAZY:
        from . import runner
        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
