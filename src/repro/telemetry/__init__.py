"""Observability for the simulated cluster (ISSUE 3 tentpole).

Three pieces:

* **Spans** (:mod:`.spans`) — per-I/O stage boundaries threaded from
  block-layer submit through SQ/doorbell/fetch/media/CQE back to the
  completion poll; stage durations telescope to the end-to-end latency
  exactly.
* **Metrics** (:mod:`.metrics`) — a deterministic registry of counters,
  gauges and summaries scraped from component accounting by the
  :class:`~repro.telemetry.hub.Telemetry` hub.
* **Exporters** (:mod:`.perfetto`, :mod:`.prometheus`) — Chrome/Perfetto
  trace-event JSON and Prometheus text exposition, both byte-identical
  across identical runs.

Everything is off by default: components carry a ``telemetry``
attribute pointing at :data:`NULL_TELEMETRY`, and the hot paths pay one
attribute/None check when disabled (the :class:`~repro.sim.Tracer`
discipline).

``run_scenario`` / ``TelemetryRun`` / ``TELEMETRY_SCENARIOS`` live in
:mod:`.runner` and are loaded lazily here — the runner pulls in the
scenario builders, which import the driver stack, which imports this
package; importing it eagerly would make that cycle load-order
sensitive.
"""

from .hub import NULL_TELEMETRY, NullTelemetry, Telemetry
from .metrics import (COUNTER, GAUGE, SUMMARY, MetricFamily, MetricsError,
                      MetricsRegistry)
from .perfetto import span_events, spans_to_perfetto
from .prometheus import registry_to_prometheus
from .spans import BOUNDARIES, STAGES, IoSpan, SpanRecorder

__all__ = [
    "BOUNDARIES", "COUNTER", "GAUGE", "SUMMARY", "STAGES",
    "IoSpan", "MetricFamily", "MetricsError", "MetricsRegistry",
    "NULL_TELEMETRY", "NullTelemetry", "SpanRecorder", "Telemetry",
    "TelemetryRun", "TELEMETRY_SCENARIOS",
    "registry_to_prometheus", "run_scenario", "span_events",
    "spans_to_perfetto",
]

_LAZY = ("run_scenario", "TelemetryRun", "TELEMETRY_SCENARIOS")


def __getattr__(name: str):
    if name in _LAZY:
        from . import runner
        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
