"""Prometheus text exposition of a metrics-registry snapshot.

Standard text format (``# HELP`` / ``# TYPE`` headers, one
``name{labels} value`` line per series).  Summaries render as the
Prometheus *summary* type: ``{quantile="..."}`` lines from the
:class:`~repro.sim.stats.BoxplotStats` five-number summary plus
``_min`` / ``_max`` / ``_sum`` / ``_count`` companions.

Output is deterministic: families sorted by name, series by label set,
label keys alphabetical; values format via :func:`_fmt` so identical
runs produce byte-identical text.
"""

from __future__ import annotations

import typing as t

from ..sim.stats import BoxplotStats
from .hist import LogHistogram
from .metrics import COUNTER, GAUGE, HISTOGRAM, SUMMARY, MetricsRegistry

#: BoxplotStats field -> exported quantile label
_QUANTILES = (("q1", "0.25"), ("median", "0.5"),
              ("q3", "0.75"), ("p99", "0.99"))


def _fmt(value: t.Any) -> str:
    """Canonical number rendering (ints without a trailing ``.0``)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape(value: str) -> str:
    """Escape a label value per the text exposition format: backslash,
    double quote and newline must be ``\\\\``, ``\\"`` and ``\\n``."""
    return (str(value).replace("\\", "\\\\")
            .replace('"', '\\"').replace("\n", "\\n"))


def _labels(pairs: t.Mapping[str, str],
            extra: t.Sequence[tuple[str, str]] = ()) -> str:
    items = sorted(pairs.items())
    items += list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _summary_lines(name: str, labels: t.Mapping[str, str],
                   stats: BoxplotStats) -> list[str]:
    lines = []
    for field, quantile in _QUANTILES:
        value = getattr(stats, field) if stats.count else 0
        lines.append(f"{name}{_labels(labels, (('quantile', quantile),))} "
                     f"{_fmt(value)}")
    lines.append(f"{name}_min{_labels(labels)} {_fmt(stats.minimum)}")
    lines.append(f"{name}_max{_labels(labels)} {_fmt(stats.maximum)}")
    lines.append(f"{name}_sum{_labels(labels)} "
                 f"{_fmt(stats.mean * stats.count)}")
    lines.append(f"{name}_count{_labels(labels)} {_fmt(stats.count)}")
    return lines


def _histogram_lines(name: str, labels: t.Mapping[str, str],
                     hist: LogHistogram) -> list[str]:
    """Classic histogram exposition: cumulative ``_bucket{le=...}``
    lines (one per *occupied* log bucket — exact and bounded), the
    mandatory ``le="+Inf"`` bucket, then ``_sum`` and ``_count``."""
    lines = []
    seen = 0
    for idx, count in hist.buckets():
        seen += count
        le = ("le", str(hist.bucket_upper(idx)))
        lines.append(f"{name}_bucket{_labels(labels, (le,))} {seen}")
    lines.append(f"{name}_bucket{_labels(labels, (('le', '+Inf'),))} "
                 f"{hist.count}")
    lines.append(f"{name}_sum{_labels(labels)} {_fmt(hist.total)}")
    lines.append(f"{name}_count{_labels(labels)} {_fmt(hist.count)}")
    return lines


def registry_to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry as Prometheus text exposition format."""
    lines: list[str] = []
    for name, family in registry.snapshot().items():
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for sample in family["series"]:
            labels, value = sample["labels"], sample["value"]
            if family["kind"] == SUMMARY:
                assert isinstance(value, BoxplotStats)
                lines.extend(_summary_lines(name, labels, value))
            elif family["kind"] == HISTOGRAM:
                assert isinstance(value, LogHistogram)
                lines.extend(_histogram_lines(name, labels, value))
            else:
                assert family["kind"] in (COUNTER, GAUGE)
                lines.append(f"{name}{_labels(labels)} {_fmt(value)}")
    return "\n".join(lines) + "\n"
