"""The telemetry hub: one object threaded through every layer.

A :class:`Telemetry` instance bundles the span recorder and the metrics
registry and knows which live components to scrape when a snapshot is
taken.  Components hold a ``telemetry`` attribute that defaults to
:data:`NULL_TELEMETRY`; instrumented code pays exactly one attribute
check when telemetry is off::

    tele = self.telemetry
    if tele.enabled:
        tele.spans.mark_cmd(qid, cid, "fetched", self.sim.now)

Wiring is one call: ``telemetry.attach(fabric=..., controllers=[...],
clients=[...], managers=[...], ntbs=[...], faults=...)`` both registers
the components for metric collection and sets their ``telemetry``
attribute.

Metric collection is pull-based: the hot paths keep their existing
cheap integer accounting (``fabric.posted_writes``,
``client.retries``, ...) and :meth:`Telemetry.collect` scrapes those
into the registry on demand — so enabling metrics adds no per-I/O cost
beyond the span marks.
"""

from __future__ import annotations

import typing as t

from ..sim.stats import iops as _iops
from .hist import QUANTILES, LatencyHistograms, LogHistogram
from .metrics import MetricsRegistry
from .perfetto import spans_to_perfetto
from .prometheus import registry_to_prometheus
from .slo import SloEngine, SloSpec
from .spans import SpanRecorder
from .timeseries import (DEFAULT_CAPACITY, DEFAULT_INTERVAL_NS, SeriesBank,
                         TelemetrySampler)

if t.TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator


class NullTelemetry:
    """No-op stand-in used when telemetry is disabled (the default)."""

    enabled = False
    spans: SpanRecorder | None = None
    metrics: MetricsRegistry | None = None
    hists: LatencyHistograms | None = None
    sampler: TelemetrySampler | None = None
    slo: SloEngine | None = None


NULL_TELEMETRY = NullTelemetry()


class Telemetry:
    """Spans + metrics + the component set they are collected from."""

    enabled = True

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.spans = SpanRecorder()
        self.metrics = MetricsRegistry()
        #: per-(tenant, op, device) latency histograms — opt-in
        #: (:meth:`enable_histograms`), like everything time-series
        self.hists: LatencyHistograms | None = None
        #: windowed sampler over the attached components — opt-in
        self.sampler: TelemetrySampler | None = None
        #: SLO burn-rate engine riding on the sampler — opt-in
        self.slo: SloEngine | None = None
        self._fabric: t.Any = None
        self._ntbs: list[t.Any] = []
        self._controllers: list[t.Any] = []
        self._clients: list[t.Any] = []
        self._devices: list[t.Any] = []
        self._managers: list[t.Any] = []
        self._volumes: list[t.Any] = []
        self._faults: t.Any = None
        #: (name, kind) -> last cumulative count, for windowed rates
        self._rate_prev: dict[tuple[str, str], tuple[int, int]] = {}
        #: hist key -> snapshot at the previous tick, for window diffs
        self._hist_prev: dict[tuple[str, str, str], LogHistogram] = {}

    # -- wiring ------------------------------------------------------------

    def attach(self, fabric: t.Any = None,
               ntbs: t.Iterable[t.Any] = (),
               controllers: t.Iterable[t.Any] = (),
               clients: t.Iterable[t.Any] = (),
               devices: t.Iterable[t.Any] = (),
               managers: t.Iterable[t.Any] = (),
               volumes: t.Iterable[t.Any] = (),
               faults: t.Any = None) -> "Telemetry":
        """Register components for collection and point their
        ``telemetry`` attribute here.  Idempotent per component."""
        if fabric is not None:
            self._fabric = fabric
        if faults is not None:
            self._faults = faults
        for ntb in ntbs:
            self._add(self._ntbs, ntb)
        for ctrl in controllers:
            self._add(self._controllers, ctrl)
        for client in clients:
            self._add(self._clients, client)
            self._add(self._devices, client)   # clients are block devices
        for dev in devices:
            self._add(self._devices, dev)
        for mgr in managers:
            self._add(self._managers, mgr)
        for vol in volumes:
            self._add(self._volumes, vol)
            self._add(self._devices, vol)      # volumes are block devices
        return self

    def _add(self, bucket: list[t.Any], obj: t.Any) -> None:
        if obj not in bucket:
            bucket.append(obj)
        if hasattr(obj, "telemetry"):
            obj.telemetry = self

    # -- time-series / SLO opt-ins -----------------------------------------

    def enable_histograms(self, sub_bits: int | None = None
                          ) -> LatencyHistograms:
        """Turn on per-(tenant, op, device) latency histograms."""
        if self.hists is None:
            self.hists = (LatencyHistograms(sub_bits)
                          if sub_bits is not None else LatencyHistograms())
        return self.hists

    def enable_sampler(self, interval_ns: int = DEFAULT_INTERVAL_NS,
                       capacity: int = DEFAULT_CAPACITY,
                       start: bool = True) -> TelemetrySampler:
        """Turn on the windowed time-series sampler with the default
        source set (component gauges/rates plus, when histograms are
        enabled, windowed latency quantiles).  ``start=True`` begins
        ticking immediately; remember :meth:`TelemetrySampler.stop`
        before a queue-draining ``sim.run()``."""
        if self.sampler is None:
            self.sampler = TelemetrySampler(self.sim, interval_ns, capacity)
            self.sampler.add_source(self._sample_components)
            self.sampler.add_source(self._sample_hists)
        if start:
            self.sampler.start()
        return self.sampler

    def enable_slo(self, spec: SloSpec | None = None) -> SloEngine:
        """Turn on SLO burn-rate evaluation (implies histograms and the
        sampler — the engine is one more sampler source)."""
        if self.slo is None:
            hists = self.enable_histograms()
            sampler = self.enable_sampler(start=False)
            self.slo = SloEngine(spec or SloSpec(), hists)
            sampler.add_source(self.slo.sample)
        return self.slo

    # -- sampler sources ---------------------------------------------------

    def _windowed_rate(self, key: tuple[str, str], count: int,
                       now: int) -> float | None:
        """Per-second rate of a cumulative count since the last tick
        (None on the first tick — no window yet)."""
        prev = self._rate_prev.get(key)
        self._rate_prev[key] = (now, count)
        if prev is None or now <= prev[0]:
            return None
        return round((count - prev[1]) * 1e9 / (now - prev[0]), 3)

    def _sample_components(self, bank: SeriesBank, now: int) -> None:
        """Default source: gauges and windowed rates of the attached
        component set (pure reads — the determinism contract)."""
        if self._fabric is not None:
            fabric = self._fabric
            bank.series("fabric_bytes_total", kind="posted").append(
                now, fabric.posted_bytes)
            bank.series("fabric_bytes_total", kind="nonposted").append(
                now, fabric.read_bytes)
        for dev in self._devices:
            bank.series("io_completed_total",
                        device=dev.name).append(now, dev.completed)
            rate = self._windowed_rate(("iops", dev.name),
                                       dev.completed, now)
            if rate is not None:
                bank.series("io_iops", device=dev.name).append(now, rate)
        for client in self._clients:
            bank.series("client_inflight", client=client.name).append(
                now, len(client._inflight))
        for ctrl in self._controllers:
            sq_total, cq_total = ctrl.queue_occupancy()
            bank.series("nvme_queue_occupancy", ctrl=ctrl.name,
                        queue="sq").append(now, sq_total)
            bank.series("nvme_queue_occupancy", ctrl=ctrl.name,
                        queue="cq").append(now, cq_total)
        for vol in self._volumes:
            bank.series("cluster_paths_live", volume=vol.name).append(
                now, vol.live_paths)
            for device_id, health in zip(vol.layout.devices,
                                         vol.path_health()):
                bank.series("cluster_path_health", volume=vol.name,
                            device_id=device_id).append(now, health)

    def _sample_hists(self, bank: SeriesBank, now: int) -> None:
        """Default source: windowed latency quantiles per histogram key
        (snapshot diff since the previous tick; empty windows emit
        nothing — there was no traffic to summarise)."""
        if self.hists is None:
            return
        for key in self.hists.keys():
            hist = self.hists.hist(*key)
            if hist is None:
                continue
            prev = self._hist_prev.get(key)
            window = hist.diff(prev) if prev is not None else hist
            self._hist_prev[key] = hist.copy()
            if not window.count:
                continue
            tenant, op, device = key
            for q, label in QUANTILES:
                bank.series(f"latency_{label}_ns", tenant=tenant, op=op,
                            device=device).append(now, window.quantile(q))

    # -- collection --------------------------------------------------------

    def collect(self) -> MetricsRegistry:
        """Scrape every attached component into the metrics registry."""
        m = self.metrics
        m.gauge_set("repro_sim_time_ns", self.sim.now,
                    help="current simulation time")
        if self._fabric is not None:
            self._collect_fabric(self._fabric)
        for ntb in self._ntbs:
            self._collect_ntb(ntb)
        for ctrl in self._controllers:
            self._collect_controller(ctrl)
        for dev in self._devices:
            self._collect_device(dev)
        for client in self._clients:
            self._collect_client(client)
        for mgr in self._managers:
            self._collect_manager(mgr)
        for vol in self._volumes:
            self._collect_volume(vol)
        if self._faults is not None:
            self._collect_faults(self._faults)
        if self.hists is not None:
            self._collect_hists(self.hists)
        return m

    def _collect_fabric(self, fabric: t.Any) -> None:
        m = self.metrics
        m.counter_set("repro_fabric_tlps_total", fabric.posted_writes,
                      help="transactions routed through the PCIe fabric",
                      kind="posted")
        m.counter_set("repro_fabric_tlps_total", fabric.reads,
                      kind="nonposted")
        m.counter_set("repro_fabric_bytes_total", fabric.posted_bytes,
                      help="payload bytes moved through the fabric",
                      kind="posted")
        m.counter_set("repro_fabric_bytes_total", fabric.read_bytes,
                      kind="nonposted")
        m.counter_set("repro_fabric_dropped_writes_total",
                      fabric.dropped_writes,
                      help="posted writes lost to injected faults")
        m.counter_set("repro_fabric_read_timeouts_total",
                      fabric.timed_out_reads,
                      help="non-posted reads that hit completion timeout")

    def _collect_ntb(self, ntb: t.Any) -> None:
        m = self.metrics
        m.counter_set("repro_ntb_translations_total", ntb.translations,
                      help="address translations through NTB LUT windows",
                      adapter=ntb.name)
        m.counter_set("repro_ntb_bytes_total", ntb.bytes_forwarded,
                      help="payload bytes crossing NTB windows",
                      adapter=ntb.name)
        m.gauge_set("repro_ntb_link_up", 1 if ntb.link_up else 0,
                    help="adapter cable state", adapter=ntb.name)
        m.counter_set("repro_ntb_link_transitions_total",
                      ntb.link_transitions,
                      help="cable down/up transitions", adapter=ntb.name)
        m.gauge_set("repro_ntb_windows", ntb.window_count(),
                    help="mapped LUT windows", adapter=ntb.name)

    def _collect_controller(self, ctrl: t.Any) -> None:
        m = self.metrics
        name = ctrl.name
        m.counter_set("repro_nvme_commands_completed_total",
                      ctrl.commands_completed,
                      help="commands completed by the controller",
                      ctrl=name)
        m.counter_set("repro_nvme_sqe_fetches_total", ctrl.fetches,
                      help="SQE fetch DMA reads issued", ctrl=name)
        m.counter_set("repro_nvme_fetch_retries_total",
                      ctrl.fetch_retries,
                      help="SQE fetches retried after fabric faults",
                      ctrl=name)
        m.counter_set("repro_nvme_bad_doorbells_total",
                      ctrl.bad_doorbells,
                      help="doorbell writes to dead or invalid queues",
                      ctrl=name)
        m.counter_set("repro_media_accesses_total", ctrl.media.reads,
                      help="media channel accesses", ctrl=name,
                      kind="read")
        m.counter_set("repro_media_accesses_total", ctrl.media.writes,
                      ctrl=name, kind="write")
        for qid in sorted(ctrl.sqs):
            sq = ctrl.sqs[qid]
            depth = (sq.db_tail - sq.state.head) % sq.state.entries
            m.gauge_set("repro_nvme_sq_depth",
                        depth, help="submission-queue backlog "
                        "(doorbell tail - fetch head)",
                        ctrl=name, qid=qid)
            arb = sq.arbiter
            if arb is not None:
                # QoS fetch arbitration (docs/qos.md): per-window grant
                # counts.  Only qos-enabled runs carry an arbiter, so
                # qos-off exports stay byte-identical.
                for widx, grants in enumerate(arb.grant_counts):
                    m.counter_set(
                        "repro_qos_grants_total", grants,
                        help="shared-SQ fetch grants per tenant window",
                        ctrl=name, qid=qid, window=widx,
                        policy=arb.policy)
        for qid in sorted(ctrl.cqs):
            cq = ctrl.cqs[qid]
            depth = (cq.state.tail - cq.db_head) % cq.state.entries
            m.gauge_set("repro_nvme_cq_depth",
                        depth, help="completion-queue entries not yet "
                        "acknowledged by the host", ctrl=name, qid=qid)

    def _collect_device(self, dev: t.Any) -> None:
        m = self.metrics
        m.counter_set("repro_io_completed_total", dev.completed,
                      help="block-layer requests completed",
                      device=dev.name)
        m.counter_set("repro_io_errors_total", dev.errors,
                      help="block-layer requests that failed",
                      device=dev.name)
        m.counter_set("repro_io_bytes_total", dev.bytes_moved,
                      help="payload bytes moved for successful I/O",
                      device=dev.name)
        if len(dev.latencies):
            m.summary_set("repro_io_latency_ns", dev.latencies.summary(),
                          help="block-layer end-to-end request latency",
                          device=dev.name)
        m.gauge_set("repro_io_iops", _iops(dev.completed, self.sim.now),
                    help="completed requests per simulated second",
                    device=dev.name)

    def _collect_client(self, client: t.Any) -> None:
        m = self.metrics
        name = client.name
        m.counter_set("repro_client_timeouts_total", client.timeouts,
                      help="commands that hit the client timeout",
                      client=name)
        m.counter_set("repro_client_retries_total", client.retries,
                      help="commands re-issued with a fresh cid",
                      client=name)
        m.counter_set("repro_client_stale_completions_total",
                      client.stale_completions,
                      help="late CQEs for already-retired cids",
                      client=name)
        m.gauge_set("repro_client_inflight", len(client._inflight),
                    help="commands awaiting completion", client=name)
        if client.qos_window is not None or client.throttled_ios:
            # Admission throttle (docs/qos.md); series appear only once
            # a clamp was ever applied, keeping qos-off exports
            # byte-identical.
            m.counter_set("repro_client_throttled_total",
                          client.throttled_ios,
                          help="submissions parked by the admission "
                          "throttle", client=name,
                          tenant=client.tenant)
            m.gauge_set("repro_client_qos_window",
                        client.qos_window if client.qos_window is not None
                        else 0,
                        help="current outstanding-command clamp "
                        "(0 = unthrottled)", client=name,
                        tenant=client.tenant)

    def _collect_manager(self, mgr: t.Any) -> None:
        m = self.metrics
        # Single-manager hubs keep the historical unlabeled series;
        # cluster hubs (several managers) label by device so the
        # per-backend series do not clobber each other.
        extra = ({"device_id": mgr.device_id}
                 if len(self._managers) > 1 else {})
        m.counter_set("repro_manager_rpcs_total", mgr.rpcs_served,
                      help="admin mailbox RPCs served", **extra)
        m.counter_set("repro_manager_leases_reclaimed_total",
                      mgr.leases_reclaimed,
                      help="dead clients reclaimed by the lease watchdog",
                      **extra)
        m.gauge_set("repro_manager_queues_in_use", mgr.queues_in_use,
                    help="I/O queue pairs currently allocated to clients",
                    **extra)
        m.counter_set("repro_manager_admission_rejections_total",
                      mgr.admission_rejections,
                      help="queue-pair requests refused with RPC_NO_QUEUES",
                      **extra)
        m.counter_set("repro_qp_cqes_forwarded_total", mgr.cqes_forwarded,
                      help="shared-CQ entries demuxed into tenant mailboxes",
                      **extra)
        m.counter_set("repro_qp_cqes_orphaned_total", mgr.cqes_orphaned,
                      help="shared-CQ entries for dead/unknown tenants",
                      **extra)
        for qid in sorted(mgr.shared_qps):
            qp = mgr.shared_qps[qid]
            m.gauge_set("repro_qp_tenants", qp.tenant_count,
                        help="tenants admitted onto a shared queue pair",
                        qid=qid, **extra)
            m.gauge_set("repro_qp_windows_free", qp.free_windows,
                        help="unreserved slot windows on a shared queue pair",
                        qid=qid, **extra)

    def _collect_volume(self, vol: t.Any) -> None:
        m = self.metrics
        name = vol.name
        m.counter_set("repro_cluster_failovers_total", vol.failovers,
                      help="reads redirected to a surviving replica",
                      volume=name)
        m.counter_set("repro_cluster_path_errors_total", vol.path_errors,
                      help="host-status failures observed on member paths",
                      volume=name)
        m.counter_set("repro_cluster_degraded_writes_total",
                      vol.degraded_writes,
                      help="writes that landed on fewer replicas than "
                      "configured", volume=name)
        m.gauge_set("repro_cluster_paths_live", vol.live_paths,
                    help="member paths in the ANA optimized state",
                    volume=name)
        m.gauge_set("repro_cluster_paths", vol.layout.width,
                    help="member paths configured", volume=name)

    def _collect_faults(self, faults: t.Any) -> None:
        m = self.metrics
        for kind in sorted(faults.injected):
            m.counter_set("repro_faults_injected_total",
                          faults.injected[kind],
                          help="fault decisions taken by the registry",
                          kind=kind)

    def _collect_hists(self, hists: LatencyHistograms) -> None:
        m = self.metrics
        for key in hists.keys():
            tenant, op, device = key
            hist = hists.hist(*key)
            if hist is not None:
                m.histogram_set("repro_io_latency_hist_ns", hist,
                                help="per-tenant end-to-end request "
                                "latency (log-bucketed)",
                                tenant=tenant, op=op, device=device)
            errors = hists.errors(*key)
            if errors:
                m.counter_set("repro_io_tenant_errors_total", errors,
                              help="failed requests per tenant/op/device",
                              tenant=tenant, op=op, device=device)

    # -- export ------------------------------------------------------------

    def perfetto_json(self) -> str:
        """Span timelines — plus sampled series as counter tracks when
        the sampler is on — as Chrome/Perfetto trace-event JSON."""
        bank = self.sampler.bank if self.sampler is not None else None
        return spans_to_perfetto(self.spans.spans, bank)

    def prometheus_text(self, collect: bool = True) -> str:
        """Metrics snapshot as Prometheus text exposition."""
        if collect:
            self.collect()
        return registry_to_prometheus(self.metrics)

    def timeseries_jsonl(self) -> str:
        """Sampled series as JSONL (one line per sample; empty string
        when the sampler was never enabled)."""
        if self.sampler is None:
            return ""
        return self.sampler.bank.to_jsonl()

    def slo_report_json(self) -> str:
        """The SLO engine's compliance report as pretty JSON (empty
        string when SLO evaluation was never enabled)."""
        if self.slo is None:
            return ""
        return self.slo.report_json()
