"""Sim-clock-driven time-series sampling over the telemetry hub.

PR 3's telemetry produces *end-of-run* snapshots; this module adds the
time axis: a :class:`TelemetrySampler` is a simulation process that
ticks at a configurable interval and snapshots live component state
(IOPS, in-flight per QP, controller queue occupancy, fabric bytes,
live paths, windowed latency quantiles) into ring-buffered
:class:`TimeSeries`.

Determinism contract (the sampling-interval contract the tests pin):

* the sampler schedules plain ``sim.timeout`` events, so it *does* add
  entries to the event queue — but its tick body only **reads**
  component state: it never mutates model state, never draws from any
  RNG stream, and never blocks another process.  Relative order of all
  model events is unchanged (the heap key's sequence numbers shift
  uniformly), so every modeled result — latency series, completion
  order, exported spans — is **bit-identical** with sampling on or
  off (``tests/test_slo.py`` asserts this);
* two runs with the same seed and the same sampling interval produce
  byte-identical JSONL/Perfetto/Prometheus exports;
* sampling at a different interval changes *which instants* are
  observed, never what the model did.

A live sampler keeps the event queue non-empty forever; runs that
drain the queue (plain ``sim.run()``) must :meth:`~TelemetrySampler.stop`
it first.  ``sim.run(until=...)`` deadline/event runs need no special
care.
"""

from __future__ import annotations

import collections
import json
import typing as t

from ..sim import Interrupt

if t.TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator

#: default sampling interval: 1 ms of simulated time
DEFAULT_INTERVAL_NS = 1_000_000
#: default ring capacity per series (points beyond it evict the oldest)
DEFAULT_CAPACITY = 4096

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: t.Mapping[str, t.Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class TimeSeries:
    """One named, labelled series of ``(t_ns, value)`` samples in a
    bounded ring buffer."""

    __slots__ = ("name", "labels", "_points")

    def __init__(self, name: str, labels: _LabelKey,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.name = name
        self.labels = labels
        self._points: collections.deque[tuple[int, t.Any]] = \
            collections.deque(maxlen=capacity)

    def append(self, t_ns: int, value: t.Any) -> None:
        self._points.append((t_ns, value))

    def points(self) -> list[tuple[int, t.Any]]:
        return list(self._points)

    def values(self) -> list[t.Any]:
        return [v for _t, v in self._points]

    def __len__(self) -> int:
        return len(self._points)

    @property
    def last(self) -> tuple[int, t.Any] | None:
        return self._points[-1] if self._points else None


class SeriesBank:
    """All series of one sampler, keyed by ``(name, labels)``."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._series: dict[tuple[str, _LabelKey], TimeSeries] = {}

    def series(self, name: str, **labels: t.Any) -> TimeSeries:
        """The series for ``(name, labels)``, created on first use."""
        key = (name, _label_key(labels))
        ts = self._series.get(key)
        if ts is None:
            ts = TimeSeries(name, key[1], self.capacity)
            self._series[key] = ts
        return ts

    def get(self, name: str, **labels: t.Any) -> TimeSeries | None:
        return self._series.get((name, _label_key(labels)))

    def all_series(self) -> list[TimeSeries]:
        """Every series, sorted by (name, labels) — deterministic."""
        return [self._series[key] for key in sorted(self._series)]

    def __len__(self) -> int:
        return len(self._series)

    def to_jsonl(self) -> str:
        """One JSON object per line, one line per sample.

        Lines are ordered by (series name, labels, time); keys are
        sorted and numbers render via ``json`` defaults, so identical
        runs serialise byte-identically.
        """
        lines = []
        for ts in self.all_series():
            labels = dict(ts.labels)
            for t_ns, value in ts.points():
                lines.append(json.dumps(
                    {"name": ts.name, "labels": labels,
                     "t_ns": t_ns, "value": value},
                    sort_keys=True, separators=(",", ":")))
        return "\n".join(lines) + ("\n" if lines else "")


class TelemetrySampler:
    """A sim process that snapshots registered sources every tick.

    Sources are callables ``fn(bank, now_ns)`` that read component
    state and append to series; the telemetry hub installs the default
    set (:meth:`~repro.telemetry.hub.Telemetry.enable_sampler`) and the
    SLO engine rides along as one more source.
    """

    def __init__(self, sim: "Simulator",
                 interval_ns: int = DEFAULT_INTERVAL_NS,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive: {interval_ns}")
        self.sim = sim
        self.interval_ns = interval_ns
        self.bank = SeriesBank(capacity)
        self.ticks = 0
        self._sources: list[t.Callable[[SeriesBank, int], None]] = []
        self._proc: t.Any = None

    # -- wiring ------------------------------------------------------------

    def add_source(self, fn: t.Callable[[SeriesBank, int], None]) -> None:
        self._sources.append(fn)

    @property
    def running(self) -> bool:
        return self._proc is not None and self._proc.is_alive

    def start(self) -> None:
        """Start ticking (first sample at the current sim time)."""
        if self.running:
            return
        self._proc = self.sim.process(self._loop())

    def stop(self, final_sample: bool = True) -> None:
        """Stop the tick process (so queue-draining runs terminate);
        optionally take one last sample at the stop instant."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt()
        self._proc = None
        if final_sample:
            self.sample_once()

    # -- sampling ----------------------------------------------------------

    def sample_once(self) -> None:
        """Run every source once at the current sim time (read-only)."""
        now = self.sim.now
        for fn in self._sources:
            fn(self.bank, now)
        self.ticks += 1

    def _loop(self) -> t.Generator:
        try:
            while True:
                self.sample_once()
                yield self.sim.timeout(self.interval_ns)
        except Interrupt:
            return
