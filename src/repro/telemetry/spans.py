"""Per-I/O spans: sim-time-stamped stage boundaries for one request.

A span is opened by the block layer when a request is submitted and
closed when it completes; in between, the driver client and the NVMe
controller stamp *boundary marks* as the command moves through the
stack.  The canonical boundary sequence for the distributed driver's
data path is:

========================  =====================================================
boundary                  instant it is stamped at
========================  =====================================================
(span start)              request entered the block layer (``submit_time``)
``sqe-issued``            client posts the SQE store toward SQ memory
``sqe-delivered``         the SQE store lands in SQ memory (across the NTB)
``doorbell-delivered``    the SQ tail doorbell lands in the controller BAR
``fetched``               controller fetched and decoded the SQE
``media-done``            the media access for the command finished
``cqe-delivered``         the CQE posted write landed in CQ memory
(span end)                request completed at the block layer
========================  =====================================================

Consecutive boundaries telescope into the seven named **stages** of
:data:`STAGES` (submit, sq-ntb-write, doorbell, fetch, media,
cq-ntb-write, poll), so per-stage durations sum to the end-to-end
latency *exactly*, by construction.

Recording follows the :class:`~repro.sim.trace.Tracer` discipline: when
telemetry is disabled the hot path pays one attribute check and zero
heap allocations.
"""

from __future__ import annotations

import typing as t

#: Canonical boundary marks, in data-path order (between start and end).
BOUNDARIES: tuple[str, ...] = (
    "sqe-issued", "sqe-delivered", "doorbell-delivered",
    "fetched", "media-done", "cqe-delivered",
)

#: Canonical stage names; stage ``i`` spans boundary ``i-1`` -> ``i``
#: (with the span start before the first and the span end after the
#: last boundary).
STAGES: tuple[str, ...] = (
    "submit",        # span start      -> sqe-issued
    "sq-ntb-write",  # sqe-issued      -> sqe-delivered
    "doorbell",      # sqe-delivered   -> doorbell-delivered
    "fetch",         # doorbell-deliv. -> fetched
    "media",         # fetched         -> media-done
    "cq-ntb-write",  # media-done      -> cqe-delivered
    "poll",          # cqe-delivered   -> span end
)


class IoSpan:
    """One request's journey through the stack (plain data, no sim ref)."""

    __slots__ = ("device", "op", "lba", "nbytes", "start_ns", "end_ns",
                 "qid", "cid", "marks", "index")

    def __init__(self, index: int, device: str, op: str, lba: int,
                 nbytes: int, start_ns: int) -> None:
        self.index = index
        self.device = device
        self.op = op
        self.lba = lba
        self.nbytes = nbytes
        self.start_ns = start_ns
        self.end_ns = -1
        self.qid = -1
        self.cid = -1
        self.marks: list[tuple[str, int]] = []

    def mark(self, boundary: str, time_ns: int) -> None:
        self.marks.append((boundary, time_ns))

    @property
    def finished(self) -> bool:
        return self.end_ns >= 0

    @property
    def duration_ns(self) -> int:
        if not self.finished:
            raise ValueError("span not finished")
        return self.end_ns - self.start_ns

    @property
    def clean(self) -> bool:
        """True when the span followed the canonical path exactly once:
        every boundary of :data:`BOUNDARIES` stamped once, in order
        (no retries, drops or resyncs)."""
        return (self.finished
                and tuple(name for name, _t in self.marks) == BOUNDARIES)

    def boundaries(self) -> list[tuple[str, int]]:
        """All boundaries including the implicit start and end."""
        out = [("start", self.start_ns)]
        out.extend(self.marks)
        if self.finished:
            out.append(("end", self.end_ns))
        return out

    def stage_durations(self) -> dict[str, int] | None:
        """The seven canonical stage durations, or None for a span that
        strayed from the canonical path (retries, faults, non-NVMe
        devices).  The values always sum to :attr:`duration_ns`."""
        if not self.clean:
            return None
        times = ([self.start_ns] + [t_ns for _n, t_ns in self.marks]
                 + [self.end_ns])
        return {name: times[i + 1] - times[i]
                for i, name in enumerate(STAGES)}

    def as_dict(self) -> dict[str, t.Any]:
        return {
            "index": self.index, "device": self.device, "op": self.op,
            "lba": self.lba, "nbytes": self.nbytes, "qid": self.qid,
            "cid": self.cid, "start_ns": self.start_ns,
            "end_ns": self.end_ns, "marks": list(self.marks),
        }


class SpanRecorder:
    """Creates, indexes and collects :class:`IoSpan` objects.

    ``bind(qid, cid, span)`` publishes a span under its on-the-wire
    identity so layers that only see NVMe commands (the controller) can
    stamp boundaries via :meth:`mark_cmd`; the binding is dropped when
    the command completes or its cid is retired by a timeout.
    """

    def __init__(self) -> None:
        self.spans: list[IoSpan] = []
        self._active: dict[tuple[int, int], IoSpan] = {}
        self._next_index = 0

    def begin(self, device: str, op: str, lba: int, nbytes: int,
              start_ns: int) -> IoSpan:
        span = IoSpan(self._next_index, device, op, lba, nbytes, start_ns)
        self._next_index += 1
        self.spans.append(span)
        return span

    def finish(self, span: IoSpan, end_ns: int) -> None:
        span.end_ns = end_ns

    # -- command-identity marks (controller side) --------------------------

    def bind(self, qid: int, cid: int, span: IoSpan) -> None:
        span.qid = qid
        span.cid = cid
        self._active[(qid, cid)] = span

    def unbind(self, qid: int, cid: int) -> None:
        self._active.pop((qid, cid), None)

    def mark_cmd(self, qid: int, cid: int, boundary: str,
                 time_ns: int) -> None:
        """Stamp a boundary on the span bound to ``(qid, cid)``; a miss
        (admin command, retired cid) is a silent no-op."""
        span = self._active.get((qid, cid))
        if span is not None:
            span.mark(boundary, time_ns)

    # -- queries -----------------------------------------------------------

    def finished(self) -> list[IoSpan]:
        return [s for s in self.spans if s.finished]

    def clean_spans(self) -> list[IoSpan]:
        return [s for s in self.spans if s.clean]

    def clear(self) -> None:
        self.spans.clear()
        self._active.clear()
        self._next_index = 0
