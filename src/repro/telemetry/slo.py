"""SLO specs and multi-window burn-rate evaluation over sim time.

An :class:`SloSpec` states the objective — "``target`` of requests
complete within ``objective_ns``" — and the alerting policy: the
classic multi-window burn-rate rule (fast window catches sharp
regressions quickly, slow window keeps one bad sampling tick from
paging).  *Burn rate* is the ratio of the observed bad fraction to the
error budget ``1 - target``; burn 1.0 spends the budget exactly,
burn 20 spends it twenty times too fast.

The :class:`SloEngine` is one more sampler source
(:meth:`SloEngine.sample` has the ``fn(bank, now)`` shape
:class:`~repro.telemetry.timeseries.TelemetrySampler` expects): each
tick it folds the per-``(tenant, op, device)`` histograms down to
per-tenant cumulative ``(good, total)`` counters — a request is *good*
when it succeeded within the objective; an error is always *bad*, no
matter how fast it failed — keeps a bounded history of those counters,
and evaluates trailing-window burn rates against the threshold.  Alert
fire/resolve transitions carry exact sim timestamps, so a chaos test
can assert the victim tenant's alert fired inside the kill window.

Everything here is pure integer/bucket arithmetic on monotone
counters; two runs with identical seeds produce identical timelines,
alerts, and reports.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import typing as t

from .hist import LatencyHistograms

if t.TYPE_CHECKING:  # pragma: no cover
    from .timeseries import SeriesBank


@dataclasses.dataclass(frozen=True)
class SloSpec:
    """A latency SLO: ``target`` of requests within ``objective_ns``."""

    name: str = "latency"
    objective_ns: int = 1_000_000          # requests should finish within
    target: float = 0.99                   # ...for this fraction of them
    fast_window_ns: int = 5_000_000        # sharp-regression window
    slow_window_ns: int = 25_000_000       # sustained-regression window
    burn_threshold: float = 4.0            # alert when BOTH windows exceed

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1): {self.target}")
        if self.objective_ns <= 0:
            raise ValueError(f"objective_ns must be positive")
        if not 0 < self.fast_window_ns <= self.slow_window_ns:
            raise ValueError(
                f"need 0 < fast_window_ns <= slow_window_ns "
                f"({self.fast_window_ns} vs {self.slow_window_ns})")

    @property
    def budget(self) -> float:
        """The error budget, ``1 - target``."""
        return 1.0 - self.target


@dataclasses.dataclass
class SloAlert:
    """One fire(/resolve) transition of a tenant's burn-rate alert."""

    spec: str
    tenant: str
    fired_at_ns: int
    burn_fast: float
    burn_slow: float
    resolved_at_ns: int | None = None

    @property
    def active(self) -> bool:
        return self.resolved_at_ns is None

    def as_dict(self) -> dict[str, t.Any]:
        return {"spec": self.spec, "tenant": self.tenant,
                "fired_at_ns": self.fired_at_ns,
                "resolved_at_ns": self.resolved_at_ns,
                "burn_fast": round(self.burn_fast, 6),
                "burn_slow": round(self.burn_slow, 6)}


class _TenantState:
    """Per-tenant counter history and alert state."""

    __slots__ = ("samples", "alert")

    def __init__(self, capacity: int) -> None:
        #: (t_ns, cumulative good, cumulative total), oldest first
        self.samples: collections.deque[tuple[int, int, int]] = \
            collections.deque(maxlen=capacity)
        self.alert: SloAlert | None = None


def _window_burn(samples: collections.deque, now: int,
                 window_ns: int, budget: float) -> tuple[float, int]:
    """(burn rate, total requests) over the trailing window.

    The window baseline is the most recent sample at or before
    ``now - window_ns`` (so the window covers *at least* ``window_ns``
    once enough history exists); with no sample that old yet, the
    oldest sample is the baseline — the cold-start window is simply
    shorter.  An empty window burns nothing.
    """
    cutoff = now - window_ns
    base = samples[0]
    for sample in samples:
        if sample[0] > cutoff:
            break
        base = sample
    last = samples[-1]
    good = last[1] - base[1]
    total = last[2] - base[2]
    if total <= 0:
        return 0.0, 0
    return ((total - good) / total) / budget, total


class SloEngine:
    """Evaluates one :class:`SloSpec` per tenant from live histograms."""

    def __init__(self, spec: SloSpec, hists: LatencyHistograms,
                 history: int = 4096) -> None:
        self.spec = spec
        self.hists = hists
        self.history = history
        self.alerts: list[SloAlert] = []
        self._tenants: dict[str, _TenantState] = {}

    # -- counter folding ---------------------------------------------------

    def _tenant_counters(self) -> dict[str, tuple[int, int]]:
        """Cumulative per-tenant ``(good, total)`` right now."""
        out: dict[str, tuple[int, int]] = {}
        objective = self.spec.objective_ns
        for key in self.hists.keys():
            tenant = key[0]
            hist = self.hists.hist(*key)
            ok, errors = self.hists.totals(key)
            good = hist.rank_le(objective) if hist is not None else 0
            prev_good, prev_total = out.get(tenant, (0, 0))
            out[tenant] = (prev_good + good, prev_total + ok + errors)
        return out

    # -- sampler source ----------------------------------------------------

    def sample(self, bank: "SeriesBank", now: int) -> None:
        """One evaluation tick (registered as a sampler source)."""
        spec = self.spec
        for tenant, (good, total) in sorted(self._tenant_counters().items()):
            state = self._tenants.get(tenant)
            if state is None:
                state = self._tenants[tenant] = _TenantState(self.history)
            state.samples.append((now, good, total))

            fast, n_fast = _window_burn(state.samples, now,
                                        spec.fast_window_ns, spec.budget)
            slow, _ = _window_burn(state.samples, now,
                                   spec.slow_window_ns, spec.budget)
            compliance = good / total if total else 1.0

            bank.series("slo_burn_fast", slo=spec.name,
                        tenant=tenant).append(now, round(fast, 6))
            bank.series("slo_burn_slow", slo=spec.name,
                        tenant=tenant).append(now, round(slow, 6))
            bank.series("slo_compliance", slo=spec.name,
                        tenant=tenant).append(now, round(compliance, 6))

            firing = (fast > spec.burn_threshold
                      and slow > spec.burn_threshold
                      and n_fast > 0)
            if firing and state.alert is None:
                state.alert = SloAlert(spec=spec.name, tenant=tenant,
                                       fired_at_ns=now, burn_fast=fast,
                                       burn_slow=slow)
                self.alerts.append(state.alert)
            elif not firing and state.alert is not None:
                state.alert.resolved_at_ns = now
                state.alert = None

    # -- reporting ---------------------------------------------------------

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    def compliance(self, tenant: str) -> float:
        """Whole-run compliance for one tenant (1.0 when idle)."""
        state = self._tenants.get(tenant)
        if state is None or not state.samples:
            return 1.0
        _, good, total = state.samples[-1]
        return good / total if total else 1.0

    def alerts_for(self, tenant: str) -> list[SloAlert]:
        return [a for a in self.alerts if a.tenant == tenant]

    def report(self) -> dict[str, t.Any]:
        """Deterministic compliance report (JSON-serialisable)."""
        tenants = {}
        for tenant in self.tenants():
            state = self._tenants[tenant]
            last = state.samples[-1]
            tenants[tenant] = {
                "good": last[1], "total": last[2],
                "compliance": round(self.compliance(tenant), 6),
                "met": self.compliance(tenant) >= self.spec.target,
                "alerts": [a.as_dict() for a in self.alerts_for(tenant)],
            }
        return {
            "spec": {"name": self.spec.name,
                     "objective_ns": self.spec.objective_ns,
                     "target": self.spec.target,
                     "fast_window_ns": self.spec.fast_window_ns,
                     "slow_window_ns": self.spec.slow_window_ns,
                     "burn_threshold": self.spec.burn_threshold},
            "tenants": tenants,
            "alerts": [a.as_dict() for a in self.alerts],
        }

    def report_json(self) -> str:
        return json.dumps(self.report(), indent=2, sort_keys=True) + "\n"
