"""Mergeable log-bucketed latency histograms (HDR-style).

:class:`LogHistogram` stores integer-nanosecond observations in
*log-linear* buckets: values below ``2**sub_bits`` land in exact
single-value buckets, larger values in buckets whose relative width is
bounded by ``2 / 2**sub_bits`` (1.5625 % at the default ``sub_bits=7``).
Bucketing is pure integer arithmetic on the value's bit length, so two
runs that record the same values produce bit-identical histograms — no
floating point, no platform-dependent rounding.

Histograms are *mergeable* (:meth:`merge` adds counts) and
*subtractable* (:meth:`diff` against an earlier snapshot of the same
histogram yields the window in between) — the property the windowed
sampler (:mod:`.timeseries`) and the SLO burn-rate engine (:mod:`.slo`)
are built on: the hot path only ever increments a bucket counter, and
p50/p95/p99/p999 over any window fall out of snapshot differences at
sampling time.

Quantiles are deterministic by construction: :meth:`quantile` walks the
cumulative counts to the nearest-rank sample and returns that bucket's
exact integer upper bound.  The reported value therefore overstates the
true sample quantile by at most one bucket width (the documented
relative-error bound); it never understates it.

:class:`LatencyHistograms` keys one histogram per
``(tenant, op, device)`` and is what the telemetry hub exposes as
``Telemetry.hists``; per-command recording happens in the block layer
(:meth:`~repro.driver.blockdev.BlockDevice._run`) with the tenant label
the driver client assigned.
"""

from __future__ import annotations

import typing as t

#: default sub-bucket resolution: 2**7 = 128 linear buckets per octave
#: below 128 ns, 64 per octave above -> <= 1.5625 % relative error.
DEFAULT_SUB_BITS = 7

#: exported quantiles: (fraction, series label)
QUANTILES: tuple[tuple[float, str], ...] = (
    (0.50, "p50"), (0.95, "p95"), (0.99, "p99"), (0.999, "p999"),
)


class HistogramError(Exception):
    pass


class LogHistogram:
    """Sparse log-linear histogram of non-negative integer values."""

    __slots__ = ("sub_bits", "_n_sub", "_half", "counts", "count", "total")

    def __init__(self, sub_bits: int = DEFAULT_SUB_BITS) -> None:
        if not 1 <= sub_bits <= 20:
            raise HistogramError(f"sub_bits {sub_bits} out of range")
        self.sub_bits = sub_bits
        self._n_sub = 1 << sub_bits
        self._half = self._n_sub >> 1
        #: bucket index -> observation count (sparse)
        self.counts: dict[int, int] = {}
        self.count = 0       # total observations
        self.total = 0       # exact integer sum of observed values

    # -- bucket arithmetic -------------------------------------------------

    def bucket_index(self, value: int) -> int:
        """Deterministic bucket index for an integer value."""
        if value < 0:
            raise HistogramError(f"negative value: {value}")
        if value < self._n_sub:
            return value
        exp = value.bit_length() - self.sub_bits
        return self._n_sub + (exp - 1) * self._half \
            + ((value >> exp) - self._half)

    def bucket_upper(self, index: int) -> int:
        """Largest value that maps to bucket ``index`` (exact inverse)."""
        if index < self._n_sub:
            return index
        exp = 1 + (index - self._n_sub) // self._half
        mantissa = self._half + (index - self._n_sub) % self._half
        return ((mantissa + 1) << exp) - 1

    # -- recording ---------------------------------------------------------

    def record(self, value_ns: int, count: int = 1) -> None:
        """Record ``count`` observations of an integer-ns value."""
        idx = self.bucket_index(value_ns)
        self.counts[idx] = self.counts.get(idx, 0) + count
        self.count += count
        self.total += value_ns * count

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return self.count

    def buckets(self) -> list[tuple[int, int]]:
        """Occupied ``(index, count)`` pairs in ascending index order."""
        return sorted(self.counts.items())

    def quantile(self, q: float) -> int:
        """Nearest-rank quantile as the sample's bucket upper bound.

        Returns 0 for an empty histogram.  ``q`` is clamped to [0, 1];
        ``q == 0`` returns the smallest occupied bucket's upper bound.
        """
        if not self.count:
            return 0
        q = min(max(q, 0.0), 1.0)
        # Nearest-rank (1-based): ceil(q * count), at least 1.  The
        # fraction is quantised to micro-units first so the ceiling is
        # computed in exact integer arithmetic — 0.999 * 1000 must give
        # rank 999, not drift to 1000 through float representation.
        q_micro = int(q * 1_000_000)
        rank = max(1, (q_micro * self.count + 999_999) // 1_000_000)
        seen = 0
        for idx, cnt in self.buckets():
            seen += cnt
            if seen >= rank:
                return self.bucket_upper(idx)
        # Unreachable when counts are consistent; defensive:
        return self.bucket_upper(self.buckets()[-1][0])

    def rank_le(self, value: int) -> int:
        """Observations in buckets at or below ``value``'s bucket.

        Exact at bucket granularity: every recorded value shares its
        bucket, so the answer can overcount true ``<= value`` by at
        most the occupancy of ``value``'s own bucket.
        """
        limit = self.bucket_index(value)
        return sum(cnt for idx, cnt in self.counts.items() if idx <= limit)

    @property
    def minimum(self) -> int:
        """Upper bound of the smallest occupied bucket (0 when empty)."""
        return self.bucket_upper(min(self.counts)) if self.counts else 0

    @property
    def maximum(self) -> int:
        """Upper bound of the largest occupied bucket (0 when empty)."""
        return self.bucket_upper(max(self.counts)) if self.counts else 0

    # -- merge / diff ------------------------------------------------------

    def _check_compatible(self, other: "LogHistogram") -> None:
        if other.sub_bits != self.sub_bits:
            raise HistogramError(
                f"sub_bits mismatch: {self.sub_bits} vs {other.sub_bits}")

    def merge(self, other: "LogHistogram") -> None:
        """Add another histogram's counts into this one."""
        self._check_compatible(other)
        for idx, cnt in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + cnt
        self.count += other.count
        self.total += other.total

    def copy(self) -> "LogHistogram":
        dup = LogHistogram(self.sub_bits)
        dup.counts = dict(self.counts)
        dup.count = self.count
        dup.total = self.total
        return dup

    def diff(self, earlier: "LogHistogram") -> "LogHistogram":
        """The window between an earlier snapshot of *this* histogram
        and now (``self - earlier``).  Counts are monotone, so every
        per-bucket difference must be non-negative."""
        self._check_compatible(earlier)
        out = LogHistogram(self.sub_bits)
        for idx, prev in earlier.counts.items():
            if self.counts.get(idx, 0) < prev:
                raise HistogramError(
                    f"diff against a non-ancestor snapshot (bucket "
                    f"{idx}: {self.counts.get(idx, 0)} < {prev})")
        for idx, cnt in self.counts.items():
            delta = cnt - earlier.counts.get(idx, 0)
            if delta:
                out.counts[idx] = delta
        out.count = self.count - earlier.count
        out.total = self.total - earlier.total
        return out

    def as_dict(self) -> dict[str, t.Any]:
        return {"sub_bits": self.sub_bits, "count": self.count,
                "total": self.total, "buckets": self.buckets()}


#: histogram key: (tenant, op, device)
HistKey = tuple[str, str, str]


class LatencyHistograms:
    """Per-``(tenant, op, device)`` latency histograms plus error counts.

    Successful requests record their end-to-end latency; failed ones
    only bump the error counter (their latency is a property of the
    failure path, not of the service the tenant received).  The SLO
    engine counts an error as a burnt-budget event regardless of how
    fast it failed.
    """

    def __init__(self, sub_bits: int = DEFAULT_SUB_BITS) -> None:
        self.sub_bits = sub_bits
        self._hists: dict[HistKey, LogHistogram] = {}
        self._errors: dict[HistKey, int] = {}

    def record_io(self, tenant: str, op: str, device: str,
                  value_ns: int, ok: bool = True) -> None:
        """Record one completed request (hot path: dict lookup + int)."""
        key = (tenant, op, device)
        if not ok:
            self._errors[key] = self._errors.get(key, 0) + 1
            return
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = LogHistogram(self.sub_bits)
        hist.record(value_ns)

    def keys(self) -> list[HistKey]:
        """Every key that recorded anything, sorted (deterministic)."""
        return sorted(set(self._hists) | set(self._errors))

    def hist(self, tenant: str, op: str, device: str
             ) -> LogHistogram | None:
        return self._hists.get((tenant, op, device))

    def errors(self, tenant: str, op: str, device: str) -> int:
        return self._errors.get((tenant, op, device), 0)

    def totals(self, key: HistKey) -> tuple[int, int]:
        """(successful observations, errors) for one key."""
        hist = self._hists.get(key)
        return (hist.count if hist is not None else 0,
                self._errors.get(key, 0))
