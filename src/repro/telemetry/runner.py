"""One-call telemetry runs over the repo's canonical scenarios.

Used by the ``repro telemetry`` CLI subcommand and the determinism
tests: build a scenario with the hub wired in, drive a deterministic
workload, and hand back the telemetry ready for export.  Everything is
seeded, so two calls with the same arguments produce byte-identical
Perfetto JSON and Prometheus text.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..config import ReliabilityConfig
from ..faults import FaultEvent, FaultPlan
from ..scenarios import (FIG10_SCENARIOS, build_fig10_scenario, chaos_cluster,
                         cluster)
from ..workloads import FioJob, fio_generator, run_fio
from .hub import Telemetry
from .slo import SloSpec

#: Scenario names accepted by :func:`run_scenario`.
TELEMETRY_SCENARIOS: tuple[str, ...] = FIG10_SCENARIOS + ("chaos",)

#: Simulated horizon for the chaos scenario (covers the fault plan and
#: the workload's tail under retries).
_CHAOS_HORIZON_NS = 200_000_000
#: Post-horizon settle time so lease reclaims land before the snapshot.
_CHAOS_SETTLE_NS = 5_000_000


@dataclasses.dataclass
class TelemetryRun:
    """A finished instrumented run."""

    scenario: str
    telemetry: Telemetry
    results: list[t.Any]          # FioResult per workload

    def perfetto_json(self) -> str:
        return self.telemetry.perfetto_json()

    def prometheus_text(self) -> str:
        return self.telemetry.prometheus_text()


def run_scenario(name: str, ios: int = 200, seed: int = 7,
                 iodepth: int = 4, bs: int = 4096,
                 n_clients: int = 3) -> TelemetryRun:
    """Run one named scenario with telemetry on and return the run.

    ``chaos`` builds an ``n_clients``-host cluster, derives a seeded
    random fault plan from the run's own RNG registry (an independent
    stream, so the plan never perturbs the workload's draws), and runs
    one fio job per client to a fixed horizon.  The four Fig. 10 names
    run a single fault-free job on the scenario's device.
    """
    if name == "chaos":
        return _run_chaos(ios=ios, seed=seed, iodepth=iodepth, bs=bs,
                          n_clients=n_clients)
    if name not in FIG10_SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"pick one of {TELEMETRY_SCENARIOS}")
    scenario = build_fig10_scenario(name, seed=seed, telemetry=True)
    tele = scenario.telemetry
    assert tele is not None
    job = FioJob(name="telemetry", rw="randread", bs=bs,
                 iodepth=iodepth, total_ios=ios)
    result = run_fio(scenario.device, job)
    tele.collect()
    return TelemetryRun(scenario=name, telemetry=tele, results=[result])


#: Reliability profile for the SLO chaos run: snappier than
#: CHAOS_RELIABILITY so a killed device resolves to fast-failing
#: NO_PATH within ~1.2 ms of simulated time instead of ~10.
SLO_RELIABILITY = ReliabilityConfig(
    command_timeout_ns=500_000,
    max_retries=1,
    retry_backoff_ns=100_000,
    heartbeat_interval_ns=100_000,
    lease_timeout_ns=1_000_000,
    lease_check_interval_ns=250_000,
)

#: Default SLO for :func:`run_slo`: 95 % of requests within 300 us,
#: multi-window burn alerting tuned to the run's millisecond scale.
DEFAULT_SLO = SloSpec(name="latency", objective_ns=300_000, target=0.95,
                      fast_window_ns=600_000, slow_window_ns=2_000_000,
                      burn_threshold=2.0)


@dataclasses.dataclass
class SloRun:
    """A finished SLO-instrumented chaos run."""

    telemetry: Telemetry
    results: list[t.Any]          # FioResult per drained workload, else None
    kill_at_ns: int               # absolute sim time of the device kill
    killed: str                   # fault point that was killed ("" if none)
    victims: list[str]            # tenants whose volumes span the dead device
    report: dict[str, t.Any]      # the SLO engine's compliance report

    def perfetto_json(self) -> str:
        return self.telemetry.perfetto_json()

    def prometheus_text(self) -> str:
        return self.telemetry.prometheus_text()

    def timeseries_jsonl(self) -> str:
        return self.telemetry.timeseries_jsonl()

    def slo_report_json(self) -> str:
        return self.telemetry.slo_report_json()


def run_slo(n_clients: int = 4, n_devices: int = 2, ios: int = 400,
            seed: int = 7, iodepth: int = 4, bs: int = 4096,
            width: int = 1, replicas: int = 1,
            interval_ns: int = 200_000, kill_ns: int = 1_000_000,
            horizon_ns: int = 6_000_000, kill: bool = True,
            spec: SloSpec | None = None) -> SloRun:
    """The acceptance story: a device-kill chaos run under SLO watch.

    Builds an ``n_clients`` x ``n_devices`` cluster, enables histograms
    + sampler + SLO engine, permanently stalls the last controller at
    ``kill_ns``, and runs one fio job per tenant to the horizon.  The
    volume shape decides how the kill manifests:

    * default ``width=1, replicas=1`` — placement alternates devices,
      so the kill splits tenants into victims and bystanders; victims'
      requests time out, retry, then fail fast with NO_PATH once ANA
      demotes the dead path — a sustained error burn that fires the
      burn-rate alert within the retry-resolution window;
    * ``replicas=2`` — victims' reads fail over to the surviving
      replica and writes degrade: slow *successes* that spike the
      victims' windowed p99 series instead of erroring.

    Fully seeded and sampler-read-only, so two calls with identical
    arguments produce byte-identical exports.
    """
    sc = cluster(n_clients=n_clients, n_devices=n_devices, width=width,
                 replicas=replicas, seed=seed, faults=kill, telemetry=True,
                 reliability=SLO_RELIABILITY)
    tele = sc.telemetry
    assert tele is not None
    tele.enable_histograms()
    slo = tele.enable_slo(spec or DEFAULT_SLO)
    sampler = tele.enable_sampler(interval_ns=interval_ns)

    killed = ""
    kill_at = -1
    victims: list[str] = []
    if kill:
        assert sc.injector is not None
        killed = sc.ctrl_points()[-1]
        dead_device = list(sc.managers)[-1]   # insertion order = ctrl order
        victims = sorted({vol.tenant for vol in sc.volumes
                          if dead_device in vol.layout.devices})
        sc.injector.plan = FaultPlan(
            (FaultEvent(kill_ns, "ctrl_stall", killed, duration_ns=0),))
        kill_at = sc.sim.now + kill_ns
        sc.injector.start()

    procs = []
    for i, volume in enumerate(sc.volumes):
        job = FioJob(name=f"t{i}", rw="randrw", bs=bs, iodepth=iodepth,
                     total_ios=ios, seed_stream=f"slo{i}")
        procs.append(sc.sim.process(fio_generator(volume, job)))
    sc.sim.run(until=sc.sim.timeout(horizon_ns))
    sampler.stop()
    tele.collect()
    return SloRun(telemetry=tele,
                  results=[p.value if p.triggered else None for p in procs],
                  kill_at_ns=kill_at, killed=killed, victims=victims,
                  report=slo.report())


def _run_chaos(ios: int, seed: int, iodepth: int, bs: int,
               n_clients: int) -> TelemetryRun:
    sc = chaos_cluster(n_clients=n_clients, seed=seed, telemetry=True)
    tele = sc.telemetry
    assert tele is not None
    # A seeded random plan drawn from this run's own registry; the
    # "telemetry-chaos" stream is private, so identical seeds replay
    # identically.  The device host's link is spared so the cluster
    # always finishes the workload.
    plan = FaultPlan.random(
        sc.sim.rng, "telemetry-chaos", horizon_ns=3_000_000,
        link_points=sc.link_points()[1:],
        ctrl_points=[sc.ctrl_point],
        n_events=6, max_outage_ns=400_000, max_drop_probability=0.1)
    sc.injector.plan = plan
    sc.injector.start()
    procs = []
    for i, client in enumerate(sc.clients):
        job = FioJob(name=f"j{i}", rw="randrw", bs=bs, iodepth=iodepth,
                     total_ios=ios, seed_stream=f"fio{i}")
        procs.append(sc.sim.process(fio_generator(client, job)))
    sc.sim.run(until=sc.sim.timeout(_CHAOS_HORIZON_NS))
    if not all(p.triggered for p in procs):
        raise RuntimeError("chaos workload did not drain by the horizon")
    sc.sim.run(until=sc.sim.timeout(_CHAOS_SETTLE_NS))
    tele.collect()
    return TelemetryRun(scenario="chaos", telemetry=tele,
                        results=[p.value for p in procs])
