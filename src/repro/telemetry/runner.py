"""One-call telemetry runs over the repo's canonical scenarios.

Used by the ``repro telemetry`` CLI subcommand and the determinism
tests: build a scenario with the hub wired in, drive a deterministic
workload, and hand back the telemetry ready for export.  Everything is
seeded, so two calls with the same arguments produce byte-identical
Perfetto JSON and Prometheus text.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..faults import FaultPlan
from ..scenarios import FIG10_SCENARIOS, build_fig10_scenario, chaos_cluster
from ..workloads import FioJob, fio_generator, run_fio
from .hub import Telemetry

#: Scenario names accepted by :func:`run_scenario`.
TELEMETRY_SCENARIOS: tuple[str, ...] = FIG10_SCENARIOS + ("chaos",)

#: Simulated horizon for the chaos scenario (covers the fault plan and
#: the workload's tail under retries).
_CHAOS_HORIZON_NS = 200_000_000
#: Post-horizon settle time so lease reclaims land before the snapshot.
_CHAOS_SETTLE_NS = 5_000_000


@dataclasses.dataclass
class TelemetryRun:
    """A finished instrumented run."""

    scenario: str
    telemetry: Telemetry
    results: list[t.Any]          # FioResult per workload

    def perfetto_json(self) -> str:
        return self.telemetry.perfetto_json()

    def prometheus_text(self) -> str:
        return self.telemetry.prometheus_text()


def run_scenario(name: str, ios: int = 200, seed: int = 7,
                 iodepth: int = 4, bs: int = 4096,
                 n_clients: int = 3) -> TelemetryRun:
    """Run one named scenario with telemetry on and return the run.

    ``chaos`` builds an ``n_clients``-host cluster, derives a seeded
    random fault plan from the run's own RNG registry (an independent
    stream, so the plan never perturbs the workload's draws), and runs
    one fio job per client to a fixed horizon.  The four Fig. 10 names
    run a single fault-free job on the scenario's device.
    """
    if name == "chaos":
        return _run_chaos(ios=ios, seed=seed, iodepth=iodepth, bs=bs,
                          n_clients=n_clients)
    if name not in FIG10_SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"pick one of {TELEMETRY_SCENARIOS}")
    scenario = build_fig10_scenario(name, seed=seed, telemetry=True)
    tele = scenario.telemetry
    assert tele is not None
    job = FioJob(name="telemetry", rw="randread", bs=bs,
                 iodepth=iodepth, total_ios=ios)
    result = run_fio(scenario.device, job)
    tele.collect()
    return TelemetryRun(scenario=name, telemetry=tele, results=[result])


def _run_chaos(ios: int, seed: int, iodepth: int, bs: int,
               n_clients: int) -> TelemetryRun:
    sc = chaos_cluster(n_clients=n_clients, seed=seed, telemetry=True)
    tele = sc.telemetry
    assert tele is not None
    # A seeded random plan drawn from this run's own registry; the
    # "telemetry-chaos" stream is private, so identical seeds replay
    # identically.  The device host's link is spared so the cluster
    # always finishes the workload.
    plan = FaultPlan.random(
        sc.sim.rng, "telemetry-chaos", horizon_ns=3_000_000,
        link_points=sc.link_points()[1:],
        ctrl_points=[sc.ctrl_point],
        n_events=6, max_outage_ns=400_000, max_drop_probability=0.1)
    sc.injector.plan = plan
    sc.injector.start()
    procs = []
    for i, client in enumerate(sc.clients):
        job = FioJob(name=f"j{i}", rw="randrw", bs=bs, iodepth=iodepth,
                     total_ios=ios, seed_stream=f"fio{i}")
        procs.append(sc.sim.process(fio_generator(client, job)))
    sc.sim.run(until=sc.sim.timeout(_CHAOS_HORIZON_NS))
    if not all(p.triggered for p in procs):
        raise RuntimeError("chaos workload did not drain by the horizon")
    sc.sim.run(until=sc.sim.timeout(_CHAOS_SETTLE_NS))
    tele.collect()
    return TelemetryRun(scenario="chaos", telemetry=tele,
                        results=[p.value for p in procs])
