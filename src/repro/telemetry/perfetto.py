"""Chrome/Perfetto trace-event JSON export for span timelines.

Emits the legacy Chrome ``traceEvents`` JSON that Perfetto
(https://ui.perfetto.dev) loads directly:

* one *process* per block device (``pid`` = stable device index, named
  via an ``M`` metadata event);
* one *thread* per NVMe queue pair (``tid`` = qid; qid -1 — spans that
  never reached a queue — lands on tid 0);
* one enclosing ``X`` (complete) slice per I/O span, labelled
  ``<op> <bytes>B``;
* one nested ``X`` slice per stage between consecutive boundaries —
  canonical stage names for clean spans, ``-> <boundary>`` labels for
  irregular ones (retries, faults), so chaos runs stay inspectable.

Timestamps are microseconds (the trace-event convention); simulation
integer nanoseconds convert exactly to thousandths.  Output is fully
deterministic — keys sorted, spans in creation order — so two
identical runs serialise byte-identically.
"""

from __future__ import annotations

import json
import typing as t

from .spans import BOUNDARIES, STAGES, IoSpan

if t.TYPE_CHECKING:  # pragma: no cover
    from .timeseries import SeriesBank

#: dedicated pid for sampled counter tracks — far above the device
#: pids (0..n_devices-1) so span processes never collide with it.
COUNTER_PID = 9999

#: boundary -> canonical stage name that *ends* at it
_STAGE_ENDING_AT = dict(zip(BOUNDARIES + ("end",), STAGES))


def _us(ns: int) -> float:
    """Exact microsecond value for an integer-ns timestamp."""
    return ns / 1000.0


def span_events(span: IoSpan, pid: int) -> list[dict[str, t.Any]]:
    """Trace events for one finished span."""
    tid = span.qid if span.qid >= 0 else 0
    events: list[dict[str, t.Any]] = [{
        "name": f"{span.op} {span.nbytes}B",
        "cat": "io",
        "ph": "X",
        "ts": _us(span.start_ns),
        "dur": _us(span.end_ns - span.start_ns),
        "pid": pid,
        "tid": tid,
        "args": {"index": span.index, "lba": span.lba,
                 "qid": span.qid, "cid": span.cid,
                 "clean": span.clean},
    }]
    clean = span.clean
    bounds = span.boundaries()
    for i in range(len(bounds) - 1):
        _from_name, t0 = bounds[i]
        to_name, t1 = bounds[i + 1]
        name = (_STAGE_ENDING_AT[to_name] if clean
                else f"-> {to_name}")
        events.append({
            "name": name,
            "cat": "stage",
            "ph": "X",
            "ts": _us(t0),
            "dur": _us(t1 - t0),
            "pid": pid,
            "tid": tid,
            "args": {"index": span.index},
        })
    return events


def counter_events(bank: "SeriesBank") -> list[dict[str, t.Any]]:
    """Counter-track (``"ph": "C"``) events for every sampled series.

    Each series becomes one counter track on the dedicated
    :data:`COUNTER_PID` process, named ``<series>{k=v,...}``; Perfetto
    renders these as stacked value-over-time tracks alongside the span
    timelines.  Non-numeric samples are skipped (counter tracks only
    plot numbers).
    """
    events: list[dict[str, t.Any]] = []
    for ts in bank.all_series():
        label = ts.name
        if ts.labels:
            label += "{" + ",".join(f"{k}={v}" for k, v in ts.labels) + "}"
        for t_ns, value in ts.points():
            if not isinstance(value, (int, float)):
                continue
            events.append({
                "name": label,
                "cat": "counter",
                "ph": "C",
                "ts": _us(t_ns),
                "pid": COUNTER_PID,
                "tid": 0,
                "args": {"value": value},
            })
    return events


def spans_to_perfetto(spans: t.Sequence[IoSpan],
                      bank: "SeriesBank | None" = None) -> str:
    """Serialise finished spans (plus, optionally, a sampler's series
    as counter tracks) as a Chrome trace-event JSON document."""
    devices: list[str] = []
    pids: dict[str, int] = {}
    events: list[dict[str, t.Any]] = []
    for span in spans:
        if not span.finished:
            continue
        pid = pids.get(span.device)
        if pid is None:
            pid = len(devices)
            pids[span.device] = pid
            devices.append(span.device)
        events.extend(span_events(span, pid))
    meta = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": device},
    } for device, pid in sorted(pids.items(), key=lambda kv: kv[1])]
    if bank is not None and len(bank):
        meta.append({
            "name": "process_name", "ph": "M", "pid": COUNTER_PID,
            "tid": 0, "args": {"name": "telemetry counters"},
        })
        events.extend(counter_events(bank))
    doc = {
        "displayTimeUnit": "ns",
        "traceEvents": meta + events,
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
