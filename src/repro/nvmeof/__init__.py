"""NVMe-oF over RDMA: capsule formats, SPDK-like polling target and the
kernel-like interrupt-driven initiator (the paper's comparison baseline)."""

from .capsules import CommandCapsule, ResponseCapsule
from .initiator import NvmeofInitiator
from .target import SpdkTarget

__all__ = ["CommandCapsule", "ResponseCapsule", "SpdkTarget",
           "NvmeofInitiator"]
