"""SPDK-like NVMe-oF target (paper Fig. 9a, right side).

A userspace, polling storage target on the device's host:

* owns the local NVMe controller through its own userspace driver
  (admin bring-up + one I/O queue pair per fabric connection);
* binds each connection's receive queue to that NVMe SQ: command
  capsules land in target memory by RDMA, the poller decodes them and
  submits to the controller with minimal processing — "the target driver
  can start I/O operations as soon as commands are enqueued";
* completions flow back as RDMA_WRITE (read data) + SEND (response
  capsule), again discovered by polling — SPDK never takes interrupts.

The target's costs are the paper's point: even with a polling,
zero-interrupt design, *software remains in the I/O path*, adding the
microseconds the PCIe/NTB driver avoids.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..config import SimulationConfig
from ..nvme import (CompletionEntry, CompletionQueueState, SubmissionEntry,
                    SubmissionQueueState, cq_doorbell_offset,
                    sq_doorbell_offset)
from ..pcie import Fabric, Host
from ..rdma import (CompletionQueue, ProtectionDomain, QueuePair, RdmaNic,
                    RecvWR, SendWR, WrOpcode)
from ..sim import Event, Simulator
from ..driver.adminq import AdminQueues
from ..driver.prputil import prps_for_contiguous
from .capsules import CommandCapsule, ResponseCapsule

#: data buffer per outstanding command: one PRP-list page + 128 KiB.
SLOT_DATA_BYTES = 128 * 1024
SLOT_BYTES = 4096 + SLOT_DATA_BYTES


@dataclasses.dataclass
class _Connection:
    qp: QueuePair
    nvme_sq: SubmissionQueueState
    nvme_cq: CompletionQueueState
    slots: list[int]                      # free slot base addresses
    inflight: dict[int, dict]             # cid -> context
    next_cid: int = 0


class SpdkTarget:
    """Polling NVMe-oF target bound to one local NVMe controller."""

    QUEUE_ENTRIES = 128

    def __init__(self, sim: Simulator, fabric: Fabric, host: Host,
                 nvme_bar: int, nic: RdmaNic,
                 config: SimulationConfig) -> None:
        self.sim = sim
        self.fabric = fabric
        self.host = host
        self.nvme_bar = nvme_bar
        self.nic = nic
        self.config = config
        self.admin = AdminQueues(sim, fabric, host, nvme_bar, config)
        self.pd = ProtectionDomain(host)
        self.connections: list[_Connection] = []
        self.lba_bytes = 512
        self.capacity_lbas = 0
        self._next_qid = 1
        self._started = False
        self.commands_served = 0

    # -- bring-up ------------------------------------------------------------

    def start(self) -> t.Generator:
        yield from self.admin.enable_controller()
        ident = yield from self.admin.identify_namespace(1)
        self.lba_bytes = ident.lba_bytes
        self.capacity_lbas = ident.nsze
        self._started = True

    # -- connection management ---------------------------------------------------

    def add_connection(self, queue_depth: int = 32) -> t.Generator:
        """Create an NVMe queue pair + fabric QP for one initiator.

        Returns the target-side :class:`QueuePair` the initiator must
        connect to.
        """
        assert self._started, "target not started"
        qid = self._next_qid
        self._next_qid += 1

        cq_mem = self.host.alloc_dma(self.QUEUE_ENTRIES * 16)
        sq_mem = self.host.alloc_dma(self.QUEUE_ENTRIES * 64)
        yield from self.admin.create_io_cq(qid, self.QUEUE_ENTRIES, cq_mem)
        yield from self.admin.create_io_sq(qid, self.QUEUE_ENTRIES, sq_mem,
                                           cqid=qid)

        send_cq = CompletionQueue(self.sim, f"tgt{qid}-send")
        recv_cq = CompletionQueue(self.sim, f"tgt{qid}-recv")
        qp = QueuePair(self.nic, self.pd, send_cq, recv_cq,
                       name=f"tgt-qp{qid}")

        # Receive buffers for command capsules (header+SQE+inline 4 KiB).
        capsule_bytes = 8192
        for _ in range(queue_depth * 2):
            addr = self.host.alloc_dma(capsule_bytes)
            self.pd.register(addr, capsule_bytes)
            qp.post_recv(RecvWR(wr_id=addr, addr=addr,
                                length=capsule_bytes))

        # Data slots the NVMe controller DMAs to/from.
        slots = []
        for i in range(queue_depth):
            slots.append(self.host.alloc_dma(SLOT_BYTES))

        conn = _Connection(
            qp=qp,
            nvme_sq=SubmissionQueueState(qid=qid, base_addr=sq_mem,
                                         entries=self.QUEUE_ENTRIES,
                                         cqid=qid),
            nvme_cq=CompletionQueueState(qid=qid, base_addr=cq_mem,
                                         entries=self.QUEUE_ENTRIES),
            slots=slots, inflight={})
        self.connections.append(conn)
        self.sim.process(self._recv_poller(conn))
        self.sim.process(self._nvme_poller(conn))
        self.sim.process(self._send_poller(conn))
        return qp

    def _send_poller(self, conn: _Connection) -> t.Generator:
        """Reap send-side completions; RDMA_READ pulls unblock waiting
        write capsules, other completions are bookkeeping only."""
        while True:
            completions = conn.qp.send_cq.poll()
            if not completions:
                yield conn.qp.send_cq.signal.wait()
                continue
            for wc in completions:
                if 0x1_0000 <= wc.wr_id < 0x2_0000:   # pull finished
                    waiter = conn.inflight.pop(
                        ("pull", wc.wr_id - 0x1_0000), None)
                    if waiter is not None:
                        waiter.succeed(wc)

    # -- fabric-side poller ---------------------------------------------------------

    def _recv_poller(self, conn: _Connection) -> t.Generator:
        """Busy-poll the receive CQ for command capsules."""
        cfg = self.config.nvmeof
        while True:
            completions = conn.qp.recv_cq.poll()
            if not completions:
                yield conn.qp.recv_cq.signal.wait()
                # Poll-granularity: SPDK notices on its next spin.
                delay = self.sim.rng.uniform_ns(
                    "spdk-recv-poll", 0, cfg.target_poll_interval_ns)
                if delay:
                    yield self.sim.timeout(delay)
                continue
            for wc in completions:
                yield self.sim.timeout(self.config.rdma.cq_poll_ns)
                yield from self._handle_capsule(conn, wc.wr_id,
                                                wc.byte_len)

    def _handle_capsule(self, conn: _Connection, buf_addr: int,
                        length: int) -> t.Generator:
        cfg = self.config.nvmeof
        raw = self.host.memory.read(buf_addr, length)
        capsule = CommandCapsule.unpack(raw)
        yield self.sim.timeout(cfg.target_process_ns)

        if not conn.slots:
            # No free data slot: initiator exceeded the negotiated depth.
            yield from self._respond(conn, CompletionEntry(
                cid=capsule.sqe.cid, status=0x06, phase=0), None)
            return
        slot = conn.slots.pop()
        sqe = capsule.sqe
        nbytes = (sqe.nlb + 1) * self.lba_bytes if sqe.opcode != 0 else 0
        data_addr = slot + 4096

        if sqe.opcode == 0x01 and nbytes:        # WRITE: stage the data
            if capsule.inline_data:
                self.host.memory.write(data_addr, capsule.inline_data)
            else:
                # Pull from the initiator with RDMA READ.
                pull_done = Event(self.sim)
                conn.inflight[("pull", sqe.cid)] = pull_done
                conn.qp.post_send(SendWR(
                    wr_id=_pull_id(sqe.cid), opcode=WrOpcode.RDMA_READ,
                    local_addr=data_addr, length=nbytes,
                    remote_addr=capsule.buffer_addr, rkey=capsule.rkey))
                yield pull_done

        if nbytes:
            prp1, prp2 = prps_for_contiguous(
                data_addr, nbytes, slot,
                lambda blob: self.host.memory.write(slot, blob))
            sqe.prp1, sqe.prp2 = prp1, prp2

        conn.inflight[sqe.cid] = {
            "slot": slot, "capsule": capsule, "nbytes": nbytes,
            "opcode": sqe.opcode,
        }
        # Submit on the bound NVMe SQ (userspace driver: local stores +
        # a posted doorbell; cost inside target_process_ns).
        sq_slot = conn.nvme_sq.advance_tail()
        self.host.memory.write(conn.nvme_sq.slot_addr(sq_slot), sqe.pack())
        self.fabric.post_write(
            self.host.rc, self.host,
            self.nvme_bar + sq_doorbell_offset(conn.nvme_sq.qid),
            conn.nvme_sq.tail.to_bytes(4, "little"))
        # Re-post the capsule buffer for the next command.
        conn.qp.post_recv(RecvWR(wr_id=buf_addr, addr=buf_addr,
                                 length=8192))

    # -- NVMe-side poller ---------------------------------------------------------------

    def _nvme_poller(self, conn: _Connection) -> t.Generator:
        """Busy-poll the NVMe CQ; ship completions back to the initiator."""
        cfg = self.config.nvmeof
        mem = self.host.memory
        base = conn.nvme_cq.base_addr
        wp = mem.watch(base, conn.nvme_cq.entries * 16)
        try:
            while True:
                raw = mem.read(conn.nvme_cq.slot_addr(conn.nvme_cq.head),
                               16)
                cqe = CompletionEntry.unpack(raw)
                if cqe.phase != conn.nvme_cq.consumer_phase():
                    yield wp.signal.wait()
                    delay = self.sim.rng.uniform_ns(
                        "spdk-nvme-poll", 0, cfg.target_poll_interval_ns)
                    if delay:
                        yield self.sim.timeout(delay)
                    continue
                conn.nvme_cq.consume()
                conn.nvme_sq.head = cqe.sq_head
                self.fabric.post_write(
                    self.host.rc, self.host,
                    self.nvme_bar + cq_doorbell_offset(conn.nvme_cq.qid),
                    conn.nvme_cq.head.to_bytes(4, "little"))
                yield from self._complete_io(conn, cqe)
        finally:
            mem.unwatch(wp)

    def _complete_io(self, conn: _Connection,
                     cqe: CompletionEntry) -> t.Generator:
        cfg = self.config.nvmeof
        ctx = conn.inflight.pop(cqe.cid, None)
        if ctx is None:
            return
        yield self.sim.timeout(cfg.target_complete_ns)
        capsule: CommandCapsule = ctx["capsule"]
        if ctx["opcode"] == 0x02 and cqe.ok and ctx["nbytes"]:
            # READ: push the data to the initiator's buffer, then the
            # response capsule; RC ordering keeps data ahead of it.
            conn.qp.post_send(SendWR(
                wr_id=_data_id(cqe.cid), opcode=WrOpcode.RDMA_WRITE,
                local_addr=ctx["slot"] + 4096, length=ctx["nbytes"],
                remote_addr=capsule.buffer_addr, rkey=capsule.rkey))
        yield from self._respond(conn, cqe, ctx)
        self.commands_served += 1

    def _respond(self, conn: _Connection, cqe: CompletionEntry,
                 ctx: dict | None) -> t.Generator:
        rsp = ResponseCapsule(cqe)
        conn.qp.post_send(SendWR(
            wr_id=_rsp_id(cqe.cid), opcode=WrOpcode.SEND,
            inline_data=rsp.pack(), length=rsp.wire_size))
        if ctx is not None:
            conn.slots.append(ctx["slot"])
        yield self.sim.timeout(0)


def _pull_id(cid: int) -> int:
    return 0x1_0000 + cid


def _data_id(cid: int) -> int:
    return 0x2_0000 + cid


def _rsp_id(cid: int) -> int:
    return 0x3_0000 + cid
