"""Kernel nvme-rdma initiator model (paper Fig. 9a, left side).

A block driver that encapsulates NVMe commands into capsules and posts
them over an RDMA QP — the stock Linux behaviour the paper benchmarks:

* writes up to ``in_capsule_data_size`` travel inline in the capsule;
  larger writes are pulled by the target with RDMA_READ;
* reads carry a buffer descriptor (address + rkey); the target pushes
  data back with RDMA_WRITE before the response capsule;
* response handling is *interrupt-driven* (the kernel initiator arms
  the recv CQ and sleeps), adding the usual IRQ + softirq latency.
"""

from __future__ import annotations

import typing as t

from ..config import SimulationConfig
from ..nvme import CompletionEntry, IoOpcode, SubmissionEntry
from ..pcie import Host
from ..rdma import (CompletionQueue, ProtectionDomain, QueuePair, RdmaNic,
                    RecvWR, SendWR, WrOpcode)
from ..sim import Event, Simulator, Store
from .capsules import CommandCapsule, ResponseCapsule
from .target import SpdkTarget
from ..driver.blockdev import BlockDevice, BlockError, BlockRequest

#: per-request staging area: capsule header+SQE+inline, plus data buffer.
SLOT_DATA_BYTES = 128 * 1024
SLOT_BYTES = 8192 + SLOT_DATA_BYTES


class NvmeofInitiator(BlockDevice):
    """NVMe-oF block device over RDMA."""

    def __init__(self, sim: Simulator, host: Host, nic: RdmaNic,
                 config: SimulationConfig, queue_depth: int = 32,
                 name: str = "nvme-of") -> None:
        self.host = host
        self.nic = nic
        self.config = config
        super().__init__(sim, name, lba_bytes=512, capacity_lbas=0,
                         queue_depth=queue_depth)
        self.pd = ProtectionDomain(host)
        self.qp: QueuePair | None = None
        self._slots: Store = Store(sim)
        self._slot_mr = None
        self._inflight: dict[int, Event] = {}
        self._cid = 0
        self._running = False

    # -- connection setup -------------------------------------------------------

    def connect(self, target: SpdkTarget) -> t.Generator:
        """Establish the fabric connection and queue binding."""
        self.lba_bytes = target.lba_bytes
        self.capacity_lbas = target.capacity_lbas

        send_cq = CompletionQueue(self.sim, f"{self.name}-send")
        recv_cq = CompletionQueue(self.sim, f"{self.name}-recv")
        self.qp = QueuePair(self.nic, self.pd, send_cq, recv_cq,
                            name=f"{self.name}-qp")
        target_qp = yield from target.add_connection(
            queue_depth=self.queue_depth)
        self.qp.connect(target_qp)

        # Response-capsule receive buffers.
        for _ in range(self.queue_depth * 2):
            addr = self.host.alloc_dma(256)
            self.pd.register(addr, 256)
            self.qp.post_recv(RecvWR(wr_id=addr, addr=addr, length=256))

        # Per-request staging slots (registered once, reused).
        for _ in range(self.queue_depth):
            addr = self.host.alloc_dma(SLOT_BYTES)
            mr = self.pd.register(addr, SLOT_BYTES)
            self._slots.put((addr, mr))

        self._running = True
        self.sim.process(self._response_handler())

    # -- data path -------------------------------------------------------------

    def _driver_submit(self, request: BlockRequest) -> t.Generator:
        if not self._running:
            raise BlockError("initiator not connected")
        assert self.qp is not None
        cfg = self.config.nvmeof
        host_cfg = self.config.host
        nbytes = (request.nblocks * self.lba_bytes
                  if request.op != "flush" else 0)
        if nbytes > SLOT_DATA_BYTES:
            raise BlockError("request exceeds the initiator slot size; "
                             "split it in the workload layer")

        # Kernel submission path: blk-mq + nvme-rdma encapsulation.
        yield self.sim.timeout(host_cfg.block_submit_ns
                               + cfg.initiator_submit_ns)

        slot_addr, slot_mr = yield self._slots.get()
        data_addr = slot_addr + 8192

        sqe = SubmissionEntry(nsid=1)
        self._cid = (self._cid + 1) % 0x10000
        sqe.cid = self._cid
        if request.op == "flush":
            sqe.opcode = IoOpcode.FLUSH
        else:
            sqe.opcode = (IoOpcode.READ if request.op == "read"
                          else IoOpcode.WRITE)
            sqe.slba = request.lba
            sqe.nlb = request.nblocks - 1

        capsule = CommandCapsule(sqe)
        if request.op == "write":
            assert request.data is not None
            if nbytes <= cfg.in_capsule_data_size:
                capsule.inline_data = request.data
            else:
                self.host.memory.write(data_addr, request.data)
                capsule.buffer_addr = data_addr
                capsule.rkey = slot_mr.rkey
        elif request.op == "read":
            capsule.buffer_addr = data_addr
            capsule.rkey = slot_mr.rkey

        # Stage the capsule and post the SEND (doorbell + WQE costs).
        raw = capsule.pack()
        self.host.memory.write(slot_addr, raw)
        yield self.sim.timeout(self.config.rdma.post_wqe_ns
                               + self.config.rdma.doorbell_ns)
        done = Event(self.sim)
        self._inflight[sqe.cid] = done
        self.qp.post_send(SendWR(wr_id=sqe.cid, opcode=WrOpcode.SEND,
                                 local_addr=slot_addr, length=len(raw)))

        cqe: CompletionEntry = yield done
        yield self.sim.timeout(cfg.initiator_complete_ns)
        request.status = cqe.status
        if request.op == "read" and cqe.ok:
            request.result = self.host.memory.read(data_addr, nbytes)
        self._slots.put((slot_addr, slot_mr))

    # -- completion path ----------------------------------------------------------

    def _response_handler(self) -> t.Generator:
        """Interrupt-driven response reaping (kernel initiator)."""
        assert self.qp is not None
        cfg = self.config
        recv_cq = self.qp.recv_cq
        while self._running:
            completions = recv_cq.poll()
            if not completions:
                yield recv_cq.signal.wait()
                if cfg.nvmeof.initiator_uses_interrupts:
                    yield self.sim.timeout(
                        cfg.host.interrupt_latency_ns)
                continue
            for wc in completions:
                yield self.sim.timeout(cfg.rdma.cq_poll_ns)
                raw = self.host.memory.read(wc.wr_id, wc.byte_len)
                rsp = ResponseCapsule.unpack(raw)
                self.qp.post_recv(RecvWR(wr_id=wc.wr_id, addr=wc.wr_id,
                                         length=256))
                done = self._inflight.pop(rsp.cqe.cid, None)
                if done is not None:
                    done.succeed(rsp.cqe)
            # Drain send completions (not interesting for latency).
            self.qp.send_cq.poll(64)
