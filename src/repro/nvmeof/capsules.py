"""NVMe-oF capsule formats (command and response).

A command capsule is the fabric-borne equivalent of an SQE: the 64-byte
NVMe command plus a transport header carrying either in-capsule data
(writes up to ``in_capsule_data_size``) or the initiator-side buffer
descriptor (address + rkey) the target should RDMA to.
"""

from __future__ import annotations

import dataclasses
import struct

from ..nvme import CompletionEntry, SubmissionEntry

_CMD_HEADER = struct.Struct("<BBHIQI")   # type, flags, inline_len(16),
                                         # reserved, buffer_addr, rkey
CMD_HEADER_SIZE = _CMD_HEADER.size + 44  # pad to a 64-byte header
CAPSULE_TYPE_COMMAND = 0x01
CAPSULE_TYPE_RESPONSE = 0x02


@dataclasses.dataclass
class CommandCapsule:
    sqe: SubmissionEntry
    inline_data: bytes = b""
    buffer_addr: int = 0
    rkey: int = 0

    def pack(self) -> bytes:
        if len(self.inline_data) > 0xFFFF:
            raise ValueError("inline data too large for capsule header")
        header = _CMD_HEADER.pack(CAPSULE_TYPE_COMMAND, 0,
                                  len(self.inline_data), 0,
                                  self.buffer_addr, self.rkey)
        header = header.ljust(CMD_HEADER_SIZE, b"\x00")
        return header + self.sqe.pack() + self.inline_data

    @classmethod
    def unpack(cls, data: bytes) -> "CommandCapsule":
        if len(data) < CMD_HEADER_SIZE + 64:
            raise ValueError(f"capsule too short: {len(data)}")
        ctype, _flags, inline_len, _rsvd, buffer_addr, rkey = \
            _CMD_HEADER.unpack(data[:_CMD_HEADER.size])
        if ctype != CAPSULE_TYPE_COMMAND:
            raise ValueError(f"not a command capsule: type={ctype}")
        sqe = SubmissionEntry.unpack(
            data[CMD_HEADER_SIZE: CMD_HEADER_SIZE + 64])
        inline = data[CMD_HEADER_SIZE + 64:
                      CMD_HEADER_SIZE + 64 + inline_len]
        if len(inline) != inline_len:
            raise ValueError("truncated in-capsule data")
        return cls(sqe=sqe, inline_data=bytes(inline),
                   buffer_addr=buffer_addr, rkey=rkey)

    @property
    def wire_size(self) -> int:
        return CMD_HEADER_SIZE + 64 + len(self.inline_data)


_RSP_HEADER = struct.Struct("<BB14x")


@dataclasses.dataclass
class ResponseCapsule:
    cqe: CompletionEntry

    def pack(self) -> bytes:
        return _RSP_HEADER.pack(CAPSULE_TYPE_RESPONSE, 0) + self.cqe.pack()

    @classmethod
    def unpack(cls, data: bytes) -> "ResponseCapsule":
        if len(data) < _RSP_HEADER.size + 16:
            raise ValueError(f"response capsule too short: {len(data)}")
        ctype = data[0]
        if ctype != CAPSULE_TYPE_RESPONSE:
            raise ValueError(f"not a response capsule: type={ctype}")
        cqe = CompletionEntry.unpack(
            data[_RSP_HEADER.size: _RSP_HEADER.size + 16])
        return cls(cqe=cqe)

    @property
    def wire_size(self) -> int:
        return _RSP_HEADER.size + 16
