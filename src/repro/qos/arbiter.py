"""Pluggable fetch arbitration for shared (windowed) submission queues.

The shared-SQ worker (docs/queue_sharing.md) is the single point where
one tenant's backlog can delay every co-tenant: the controller fetches
one SQE per grant, and *which window gets the grant* is the whole QoS
policy.  An :class:`Arbiter` owns that decision.  Three policies:

``fifo``
    Global arrival order across windows.  The controller fetches the
    oldest rung entry anywhere in the ring, exactly what a naive shared
    queue would do — and exactly why a tenant that rings 60 entries at
    once makes every later arrival wait behind all 60.  This is the
    *baseline that fails to isolate*, kept so the benchmark curve is
    non-vacuous.

``wfq``
    Deficit round-robin (Shreedhar & Varghese).  Each time the
    round-robin pointer lands on a backlogged window it earns
    ``quantum * weight`` grant credits; one credit buys one SQE fetch.
    Service converges to weight-proportional shares regardless of
    backlog depth, and a window's burst can delay a neighbour by at
    most one quantum.

``strict``
    Strict priority by weight: the highest-weight backlogged tier is
    always served first, round-robin inside the tier.  Starves low
    tiers under sustained high-tier load — intentionally; it is the
    "platinum tenant" policy.

Arbiters are pure index bookkeeping — no RNG, no sim time dependence
beyond the stamps handed in — so identical doorbell sequences produce
identical grant sequences (the determinism discipline of the repo).
"""

from __future__ import annotations

import collections
import typing as t

if t.TYPE_CHECKING:  # pragma: no cover
    from ..config import QosConfig
    from ..nvme.queues import SqWindowState


class Arbiter:
    """Base class: grant decisions over a shared SQ's windows."""

    #: policy label used in metrics/exports
    policy = "none"

    def __init__(self, nwin: int) -> None:
        self.nwin = nwin
        #: grants per window, for telemetry (read-only outside)
        self.grant_counts = [0] * nwin

    def on_doorbell(self, win: "SqWindowState", added: int,
                    now: int) -> None:
        """``added`` new entries rung into ``win`` at sim time ``now``."""

    def select(self, windows: list["SqWindowState"]
               ) -> "SqWindowState | None":
        """Pick the window to grant the next fetch to, or None if all
        windows are empty.  May consume policy credit; a failed fetch
        must be handed back via :meth:`refund`."""
        raise NotImplementedError

    def on_fetch(self, win: "SqWindowState") -> None:
        """The granted fetch succeeded and ``win``'s head advanced."""
        self.grant_counts[win.index] += 1

    def refund(self, win: "SqWindowState") -> None:
        """The granted fetch was lost in the fabric; the slot will be
        retried.  Restore any credit :meth:`select` consumed."""


class FifoArbiter(Arbiter):
    """Global arrival order: serve the oldest rung entry anywhere.

    Ties (entries rung at the same instant, e.g. one doorbell covering
    several slots) break by window index, matching the deterministic
    ordering discipline everywhere else in the repo.
    """

    policy = "fifo"

    def __init__(self, nwin: int) -> None:
        super().__init__(nwin)
        #: per-window arrival stamps, one per not-yet-fetched entry
        self._stamps: list[collections.deque[int]] = \
            [collections.deque() for _ in range(nwin)]

    def on_doorbell(self, win: "SqWindowState", added: int,
                    now: int) -> None:
        stamps = self._stamps[win.index]
        for _ in range(added):
            stamps.append(now)

    def select(self, windows):
        best = None
        best_stamp = 0
        for win in windows:
            if win.is_empty():
                continue
            stamps = self._stamps[win.index]
            # A missing stamp can only mean the entry predates arbiter
            # attach; treat it as infinitely old.
            stamp = stamps[0] if stamps else -1
            if best is None or stamp < best_stamp:
                best = win
                best_stamp = stamp
        return best

    def on_fetch(self, win):
        super().on_fetch(win)
        stamps = self._stamps[win.index]
        if stamps:
            stamps.popleft()


class DrrArbiter(Arbiter):
    """Deficit round-robin with per-window weights.

    Credit (``deficit``) is refilled by ``quantum * weight`` only when
    the pointer *arrives at* a backlogged window — never while parked on
    one — so a single window can never accumulate unbounded credit and
    the scan below terminates in at most ``nwin + 1`` steps whenever any
    window is backlogged (work conservation).  An idle window's credit
    resets to zero, the classic DRR rule that stops an idle tenant from
    banking service.
    """

    policy = "wfq"

    def __init__(self, nwin: int, quantum: int,
                 weights: tuple[int, ...],
                 default_weight: int = 1) -> None:
        super().__init__(nwin)
        self.quantum = quantum
        self.weights = weights
        self.default_weight = default_weight
        self._deficit = [0] * nwin
        self._rr = 0

    def _weight(self, index: int) -> int:
        if index < len(self.weights):
            return max(1, self.weights[index])
        return max(1, self.default_weight)

    def select(self, windows):
        nwin = self.nwin
        deficit = self._deficit
        for _ in range(nwin + 1):
            idx = self._rr
            win = windows[idx]
            if not win.is_empty() and deficit[idx] >= 1:
                deficit[idx] -= 1
                return win
            if win.is_empty():
                deficit[idx] = 0
            self._rr = idx = (idx + 1) % nwin
            if not windows[idx].is_empty():
                deficit[idx] += self.quantum * self._weight(idx)
        return None

    def refund(self, win):
        self._deficit[win.index] += 1


class StrictArbiter(Arbiter):
    """Strict priority by weight, round-robin within a priority tier."""

    policy = "strict"

    def __init__(self, nwin: int, weights: tuple[int, ...],
                 default_weight: int) -> None:
        super().__init__(nwin)
        self.weights = weights
        self.default_weight = default_weight
        #: round-robin pointer per priority level
        self._rr: dict[int, int] = {}

    def _weight(self, index: int) -> int:
        if index < len(self.weights):
            return max(1, self.weights[index])
        return max(1, self.default_weight)

    def select(self, windows):
        best_prio = None
        for win in windows:
            if win.is_empty():
                continue
            prio = self._weight(win.index)
            if best_prio is None or prio > best_prio:
                best_prio = prio
        if best_prio is None:
            return None
        nwin = self.nwin
        start = self._rr.get(best_prio, 0)
        for off in range(nwin):
            win = windows[(start + off) % nwin]
            if not win.is_empty() and self._weight(win.index) == best_prio:
                self._rr[best_prio] = (win.index + 1) % nwin
                return win
        return None


def make_arbiter(qos: "QosConfig", nwin: int) -> Arbiter:
    """Build the arbiter for one shared SQ from the scenario config."""
    if qos.policy == "fifo":
        return FifoArbiter(nwin)
    if qos.policy == "wfq":
        return DrrArbiter(nwin, qos.quantum, qos.weights,
                          qos.default_weight)
    if qos.policy == "strict":
        return StrictArbiter(nwin, qos.weights, qos.default_weight)
    raise ValueError(f"unknown qos policy {qos.policy!r}")
