"""One-call QoS runs: open-loop noisy-neighbour traffic under SLO watch.

Used by the ``repro qos`` CLI subcommand, the isolation tests and
``benchmarks/bench_qos_isolation.py``: build the single-shared-QP
noisy-neighbour scenario (:func:`repro.scenarios.noisy_neighbor`), put
every tenant under the same latency SLO, drive one open-loop job per
tenant — an aggressor offering far more than its fair share plus
well-behaved bystanders — and hand back per-tenant latencies, the SLO
engine's verdict and the throttle's actions.

Everything is seeded and each tenant's arrival stream is keyed by its
own name, so the solo baseline (``aggressor_active=False``) replays the
bystanders' exact arrivals without the aggressor — the denominator for
"bystander p99 under policy X vs. its undisturbed p99".
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from ..scenarios import noisy_neighbor
from ..telemetry.hub import Telemetry
from ..telemetry.slo import SloSpec
from ..workloads import OpenLoopJob, OpenLoopResult, open_loop_generator
from .throttle import AdmissionThrottle

#: Default SLO for QoS runs: 90 % of each tenant's requests within
#: 30 us.  Solo bystanders finish in ~10 us, so a compliant tenant has
#: head-room; a fifo run behind a 63-deep aggressor backlog (~63 grants
#: ~ 65 us) breaches it, and the burn windows are sized to the
#: millisecond-scale horizon so alerts fire mid-run, in time for the
#: admission throttle to act.
QOS_SLO = SloSpec(name="latency", objective_ns=30_000, target=0.9,
                  fast_window_ns=400_000, slow_window_ns=1_600_000,
                  burn_threshold=2.0)


@dataclasses.dataclass
class QosRun:
    """A finished noisy-neighbour run under one arbitration policy."""

    policy: str                   # off|fifo|wfq|strict
    throttled: bool               # admission throttle armed
    telemetry: Telemetry
    #: OpenLoopResult per tenant, client order; index 0 is the
    #: aggressor (None in the solo baseline)
    results: list[OpenLoopResult | None]
    tenants: list[str]            # histogram tenant labels, client order
    aggressor: str                # tenants[0]
    bystanders: list[str]         # tenants[1:]
    report: dict[str, t.Any]      # SLO engine compliance report
    throttle_report: dict[str, t.Any]
    window_map: dict[int, dict[int, int]]   # qid -> window -> slot

    def perfetto_json(self) -> str:
        return self.telemetry.perfetto_json()

    def prometheus_text(self) -> str:
        return self.telemetry.prometheus_text()

    def timeseries_jsonl(self) -> str:
        return self.telemetry.timeseries_jsonl()

    def slo_report_json(self) -> str:
        return self.telemetry.slo_report_json()

    # -- analysis helpers --------------------------------------------------

    def p99_ns(self, tenant: str) -> float:
        """Open-loop p99 for one tenant (scheduled-arrival latency)."""
        index = self.tenants.index(tenant)
        result = self.results[index]
        if result is None or not len(result.latencies):
            return 0.0
        return float(np.percentile(result.latencies.values(), 99))

    def bystander_p99_ns(self) -> float:
        """Worst bystander open-loop p99 — the isolation headline."""
        return max(self.p99_ns(tenant) for tenant in self.bystanders)

    def tenant_alerts(self, tenant: str) -> list[dict]:
        return self.report["tenants"].get(tenant, {}).get("alerts", [])

    def summary(self) -> dict[str, t.Any]:
        """Deterministic per-tenant digest (JSON-serialisable)."""
        tenants = {}
        for i, tenant in enumerate(self.tenants):
            result = self.results[i]
            entry: dict[str, t.Any] = {
                "role": "aggressor" if i == 0 else "bystander",
                "alerts": len(self.tenant_alerts(tenant)),
                "met": self.report["tenants"]
                           .get(tenant, {}).get("met", True),
            }
            if result is not None:
                entry.update(
                    issued=result.issued,
                    completed=result.completed,
                    errors=result.errors,
                    offered_iops=round(result.offered_iops, 1),
                    achieved_iops=round(result.achieved_iops, 1),
                    p99_ns=round(self.p99_ns(tenant), 1),
                    capped_arrivals=result.capped_arrivals,
                )
            tenants[tenant] = entry
        return {"policy": self.policy, "throttled": self.throttled,
                "tenants": tenants, "throttle": self.throttle_report}


def run_qos(policy: str = "wfq", *, throttle: bool = False,
            n_bystanders: int = 3, seed: int = 7,
            aggressor_iops: float = 1_000_000.0,
            bystander_iops: float = 50_000.0,
            arrival: str = "poisson",
            horizon_ns: int = 8_000_000,
            interval_ns: int = 100_000,
            throttle_window: int = 1,
            aggressor_active: bool = True,
            spec: SloSpec | None = None,
            sanitizer: bool = False) -> QosRun:
    """Drive the noisy-neighbour scenario under one policy.

    One aggressor (client 0) offers ``aggressor_iops`` open-loop —
    far beyond its fair share of the shared-SQ fetch loop — while
    ``n_bystanders`` tenants offer ``bystander_iops`` each.  With
    ``throttle=True`` the admission throttle watches the SLO engine's
    burn-rate alerts and clamps an alerting tenant's outstanding
    window to ``throttle_window`` commands.

    ``aggressor_active=False`` runs the *solo baseline*: identical
    bystander arrival streams (they are keyed by tenant name, not
    position) with the aggressor idle — its p99 is what a bystander
    sees when nobody misbehaves.

    Fully seeded; two calls with identical arguments produce
    byte-identical exports.
    """
    sc = noisy_neighbor(n_bystanders=n_bystanders, policy=policy,
                        throttle_window=throttle_window if throttle else 0,
                        seed=seed, sanitizer=sanitizer)
    cfg = sc.testbed.config
    tele = sc.telemetry
    assert tele is not None
    tele.enable_histograms()
    # Create the sampler *before* enable_slo: the hub reuses an existing
    # sampler, so creating it first is what makes ``interval_ns`` stick.
    sampler = tele.enable_sampler(interval_ns=interval_ns, start=False)
    slo = tele.enable_slo(spec or QOS_SLO)
    sampler.start()

    admission = AdmissionThrottle(sc.sim, cfg.qos, slo)
    if admission.enabled:
        admission.attach(sc.clients)
        admission.start()

    queue_depth = sc.clients[0].queue_depth
    procs: list[t.Any] = []
    for i, client in enumerate(sc.clients):
        if i == 0:
            if not aggressor_active:
                procs.append(None)
                continue
            job = OpenLoopJob(name="aggressor", rw="randread",
                              rate_iops=aggressor_iops, arrival=arrival,
                              total_arrivals=None, runtime_ns=horizon_ns,
                              inflight_cap=queue_depth,
                              seed_stream="qos")
        else:
            job = OpenLoopJob(name=f"bystander{i}", rw="randread",
                              rate_iops=bystander_iops, arrival="poisson",
                              total_arrivals=None, runtime_ns=horizon_ns,
                              inflight_cap=16, seed_stream="qos")
        procs.append(sc.sim.process(open_loop_generator(client, job)))

    live = [p for p in procs if p is not None]
    sc.sim.run(until=sc.sim.all_of(live))
    sampler.stop()
    admission.stop()
    tele.collect()

    tenants = [client.tenant for client in sc.clients]
    return QosRun(
        policy=policy, throttled=admission.enabled, telemetry=tele,
        results=[p.value if p is not None else None for p in procs],
        tenants=tenants, aggressor=tenants[0], bystanders=tenants[1:],
        report=slo.report(), throttle_report=admission.report(),
        window_map=sc.manager.window_map())
