"""Admission throttling driven by burn-rate SLO alerts.

The arbiter (``qos/arbiter.py``) bounds how much fetch service a
misbehaving tenant gets, but a tenant ringing its full window still
occupies every slot of its sub-ring and keeps the controller's fetch
loop busy skipping it.  The cheaper fix is upstream: clamp the
*driver-side* window of outstanding commands while the tenant's
burn-rate alert (docs/observability.md) is active, so the excess load
never reaches the shared ring at all.

:class:`AdmissionThrottle` is a sim process that periodically reads the
:class:`~repro.telemetry.slo.SloEngine`'s per-tenant alert state and
applies/lifts the clamp on the matching
:class:`~repro.driver.client.DistributedNvmeClient`.  Tenants are
scanned in sorted order and the check interval is fixed, so runs are
deterministic.  The clamp is lifted only after the alert has stayed
resolved for ``throttle_cooldown_ns`` (hysteresis against burn-rate
flapping).
"""

from __future__ import annotations

import typing as t

if t.TYPE_CHECKING:  # pragma: no cover
    from ..config import QosConfig
    from ..driver.client import DistributedNvmeClient
    from ..sim import Simulator
    from ..telemetry.slo import SloEngine


class AdmissionThrottle:
    """Clamps alerting tenants' submission windows (docs/qos.md)."""

    def __init__(self, sim: "Simulator", qos: "QosConfig",
                 slo: "SloEngine") -> None:
        self.sim = sim
        self.qos = qos
        self.slo = slo
        self.clients: dict[str, "DistributedNvmeClient"] = {}
        self.throttles_applied = 0
        self.throttles_released = 0
        self._last_active: dict[str, int] = {}
        self._running = False
        self._proc = None

    def attach(self, clients: t.Iterable["DistributedNvmeClient"]) -> None:
        """Register the clients (keyed by tenant name) to police."""
        for client in clients:
            self.clients[client.tenant] = client

    @property
    def enabled(self) -> bool:
        return self.qos.throttle_window > 0

    def start(self) -> None:
        if not self.enabled or self._running:
            return
        self._running = True
        self._proc = self.sim.process(self._watch())

    def stop(self) -> None:
        self._running = False

    def _watch(self) -> t.Generator:
        interval = self.qos.throttle_check_interval_ns
        cooldown = self.qos.throttle_cooldown_ns
        clamp = self.qos.throttle_window
        while self._running:
            yield self.sim.sleep(interval)
            if not self._running:
                return
            now = self.sim.now
            for tenant in sorted(self.clients):
                client = self.clients[tenant]
                active = any(a.active for a in self.slo.alerts_for(tenant))
                if active:
                    self._last_active[tenant] = now
                    if client.qos_window is None:
                        client.set_qos_window(clamp)
                        self.throttles_applied += 1
                elif client.qos_window is not None:
                    last = self._last_active.get(tenant, now)
                    if now - last >= cooldown:
                        client.set_qos_window(None)
                        self.throttles_released += 1

    def report(self) -> dict[str, t.Any]:
        """Deterministic summary for exports/tests."""
        return {
            "enabled": self.enabled,
            "throttles_applied": self.throttles_applied,
            "throttles_released": self.throttles_released,
            "clamped": sorted(t for t, c in self.clients.items()
                              if c.qos_window is not None),
        }
