"""Per-tenant QoS at the shared-SQ arbitration point (ISSUE 10).

Three pieces (docs/qos.md):

* **Fetch arbitration** (:mod:`.arbiter`) — pluggable policies deciding
  which tenant window the shared-SQ worker grants the next SQE fetch
  to: ``fifo`` (global arrival order, the baseline that fails to
  isolate), ``wfq`` (deficit round-robin, weight-proportional), and
  ``strict`` (priority tiers).
* **Admission throttling** (:mod:`.throttle`) — a sim process that
  clamps an alerting tenant's driver-side window of outstanding
  commands while its burn-rate SLO alert is active, consuming the
  ISSUE-8 measurement half.
* **The noisy-neighbour story** (:mod:`.runner`) — ``run_qos`` drives
  one open-loop aggressor against bystanders on a single shared QP and
  reports per-policy isolation; loaded lazily because it pulls in the
  scenario builders (which import the driver stack, which imports the
  controller, which imports :mod:`.arbiter`).

Everything defaults to off: :class:`~repro.config.QosConfig` with
``enabled=False`` leaves the original round-robin grant loop and seed
runs bit-identical.
"""

from .arbiter import (Arbiter, DrrArbiter, FifoArbiter, StrictArbiter,
                      make_arbiter)
from .throttle import AdmissionThrottle

__all__ = [
    "AdmissionThrottle", "Arbiter", "DrrArbiter", "FifoArbiter",
    "QosRun", "StrictArbiter", "make_arbiter", "run_qos",
]

_LAZY = ("run_qos", "QosRun")


def __getattr__(name: str):
    if name in _LAZY:
        from . import runner
        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
