"""The distributed driver's *client* module (paper Sec. V).

A client runs in any cluster host and operates a (usually remote) NVMe
controller through one or more private I/O queue pairs:

1. bootstraps by reading the manager's metadata segment;
2. allocates SQ and CQ segments with access-pattern hints — by default
   the SQ lands in *device-side* memory (the CPU writes commands through
   the NTB with cheap posted stores; the controller fetches them
   locally) and the CQ lands in *client-local* memory (the controller
   posts completions through the NTB; the CPU polls locally) — Fig. 8;
3. resolves device-visible addresses via SmartIO DMA windows and asks
   the manager (via the mailbox RPC) to create the queue pair;
4. maps the controller's doorbells through its own NTB;
5. registers a block device whose data path uses a partitioned bounce
   buffer ("NVMe DMA descriptors can be programmed once since the DMA
   buffer segment is constant"), paying one extra memcpy per request;
6. polls CQ memory for completions — the model has no device-generated
   interrupts across the NTB, exactly like the paper's driver.

Placement and data-path strategies are parameters so the benchmarks can
ablate them (SQ client-side, CQ device-side, per-request IOMMU mapping
instead of the bounce buffer).
"""

from __future__ import annotations

import typing as t

from ..config import SimulationConfig
from ..nvme import (CompletionEntry, CompletionQueueState, IoOpcode,
                    SubmissionEntry, SubmissionQueueState,
                    cq_doorbell_offset, sq_doorbell_offset)
from ..pcie.fabric import FabricFaultError
from ..sanitizer.hooks import NULL_SANITIZER
from ..sim import (NULL_TRACER, Event, Interrupt, Process, Signal,
                   Simulator, Store)
from ..sisci import RemoteSegment, SisciNode
from ..smartio import Placement, SmartIoService
from ..units import serialize_ns
from . import metadata as meta
from .blockdev import BlockDevice, BlockError, BlockRequest
from .prputil import prps_for_contiguous


class ClientError(Exception):
    pass


# Vendor-specific completion statuses (SCT 7) synthesised by the *host*
# side when the device never answered; they never collide with statuses
# a controller can return.
STATUS_HOST_TIMEOUT = 0x7_01    # command timed out after all retries
STATUS_HOST_SHUTDOWN = 0x7_02   # client shut down with the I/O in flight
STATUS_HOST_CRASHED = 0x7_03    # client was killed with the I/O in flight

#: the complete host-side set: one of these means "the *path* died",
#: never "the device answered" — multipath layers key failover on it.
HOST_PATH_STATUSES = frozenset({STATUS_HOST_TIMEOUT,
                                STATUS_HOST_SHUTDOWN,
                                STATUS_HOST_CRASHED})

_IO_OPCODES = {"read": IoOpcode.READ,
               "write": IoOpcode.WRITE,
               "compare": IoOpcode.COMPARE,
               "write_zeroes": IoOpcode.WRITE_ZEROES}


class DistributedNvmeClient(BlockDevice):
    """Block device backed by a (possibly remote) shared NVMe controller."""

    def __init__(self, sim: Simulator, smartio: SmartIoService,
                 node: SisciNode, device_id: int,
                 config: SimulationConfig,
                 queue_entries: int = 64, queue_depth: int = 32,
                 sq_placement: str = "device",
                 cq_placement: str = "client",
                 data_path: str = "bounce",
                 completion_mode: str = "poll",
                 sharing: str = "auto",
                 slot_index: int | None = None,
                 name: str | None = None, tracer=NULL_TRACER) -> None:
        if sq_placement not in ("device", "client"):
            raise ClientError(f"bad sq_placement: {sq_placement}")
        if cq_placement not in ("device", "client"):
            raise ClientError(f"bad cq_placement: {cq_placement}")
        if data_path not in ("bounce", "iommu"):
            raise ClientError(f"bad data_path: {data_path}")
        if completion_mode not in ("poll", "interrupt"):
            raise ClientError(f"bad completion_mode: {completion_mode}")
        if completion_mode == "interrupt" and cq_placement != "client":
            raise ClientError(
                "interrupt mode requires a client-local CQ")
        if sharing not in ("auto", "never", "force"):
            raise ClientError(f"bad sharing: {sharing}")
        if sharing == "force" and completion_mode == "interrupt":
            raise ClientError(
                "interrupt completion is incompatible with a shared QP "
                "(completions arrive by mailbox forwarding)")
        if queue_depth >= queue_entries:
            queue_depth = queue_entries - 1
        self.smartio = smartio
        self.node = node
        self.device_id = device_id
        self.config = config
        self.queue_entries = queue_entries
        self.sq_placement = sq_placement
        self.cq_placement = cq_placement
        self.data_path = data_path
        self.completion_mode = completion_mode
        self.sharing = sharing
        self.slot_index = (slot_index if slot_index is not None
                           else (node.node_id - 4) % meta.NSLOTS)
        super().__init__(sim, name or f"{node.host.name}-nvme",
                         lba_bytes=512, capacity_lbas=0,
                         queue_depth=queue_depth)
        # Histograms key by tenant: the *host* this client acts for.
        # A cluster host holds one path-client per member device, all
        # sharing this label, so per-tenant series aggregate naturally.
        self.tenant = node.host.name
        self.tracer = tracer
        self._cid = 0
        self._inflight: dict[int, Event] = {}
        self._running = False
        self._started = False
        self.crashed = False
        self.qid: int | None = None
        self._ref = None
        self._meta_conn: RemoteSegment | None = None
        self._poll_stream = f"poll:{self.name}"
        self._poll_proc: Process | None = None
        self._hb_proc: Process | None = None
        #: shared-QP tenancy (docs/queue_sharing.md); populated when the
        #: manager admits us onto a shared queue pair.
        self._shared = False
        self._tenant = 0
        self._win_start = 0
        self._submitted = 0             # absolute, continues predecessor's
        self._sq_space = Signal(sim)    # fired per completion (flow ctl)
        self._db_timer: Process | None = None
        #: recovery accounting
        self.timeouts = 0
        self.retries = 0
        self.stale_completions = 0
        #: admission throttle (docs/qos.md): when set, outstanding
        #: commands are clamped to this many; None = unthrottled.
        self.qos_window: int | None = None
        self.throttled_ios = 0
        #: ShareSan hook (docs/sanitizer.md); NULL object when off.
        self.sanitizer = NULL_SANITIZER

    # ------------------------------------------------------------- bootstrap

    def start(self) -> t.Generator:
        cfg = self.config
        self._ref = self.smartio.acquire(self.device_id, self.node)
        self._bar = self._ref.map_bar(0)

        # Read the manager's metadata segment.
        meta_node, meta_seg = self.smartio.device_metadata(self.device_id)
        self._meta_conn = self.node.connect_segment(meta_node, meta_seg)
        raw = yield from self._meta_conn.read(0, meta.HEADER_SIZE)
        header = meta.unpack_header(raw)
        self.lba_bytes = header["lba_bytes"]
        self.capacity_lbas = header["capacity_lbas"]
        self.nsid = header["nsid"]

        # Private attempt first (unless sharing is forced): allocate
        # queue segments placed per strategy, resolved for the device.
        resp = None
        if self.sharing != "force":
            sq_seg = self.smartio.alloc_segment_placed(
                self.node, self.device_id, self.queue_entries * 64,
                Placement.DEVICE_SIDE if self.sq_placement == "device"
                else Placement.CPU_SIDE)
            cq_seg = self.smartio.alloc_segment_placed(
                self.node, self.device_id, self.queue_entries * 16,
                Placement.CPU_SIDE if self.cq_placement == "client"
                else Placement.DEVICE_SIDE)
            sq_dev_addr = self._ref.map_segment_for_device(sq_seg)
            cq_dev_addr = self._ref.map_segment_for_device(cq_seg)

            # Ask the manager for a queue pair (interrupt-capable when
            # the remote-interrupt extension is requested).
            flags = (meta.FLAG_INTERRUPTS
                     if self.completion_mode == "interrupt" else 0)
            resp = yield from self._rpc(meta.OP_CREATE_QP,
                                        entries=self.queue_entries,
                                        sq_addr=sq_dev_addr,
                                        cq_addr=cq_dev_addr,
                                        flags=flags)
            if (resp["rpc_status"] == meta.RPC_USE_SHARED
                    and self.sharing == "auto"
                    and self.completion_mode != "interrupt"):
                # Private QPs are exhausted down to the shared reserve:
                # give the queue memory back and retry as a tenant.
                self._ref.unmap_segment_for_device(sq_dev_addr)
                self._ref.unmap_segment_for_device(cq_dev_addr)
                sq_seg.remove()
                cq_seg.remove()
                resp = None
            elif resp["rpc_status"] != meta.RPC_OK:
                raise ClientError(f"manager refused queue pair: "
                                  f"{resp['rpc_status']}")

        if resp is not None:
            # Private queue pair.
            self._sq_seg, self._cq_seg = sq_seg, cq_seg
            # CPU-side access paths to the queue memory.
            self._sq_conn = self.node.connect_segment(sq_seg.id.node_id,
                                                      sq_seg.id.segment_id)
            self._cq_conn = self.node.connect_segment(cq_seg.id.node_id,
                                                      cq_seg.id.segment_id)
            self._cq_local = cq_seg.host is self.node.host
            self.qid = resp["qid"]
            self.sq = SubmissionQueueState(qid=self.qid, base_addr=0,
                                           entries=self.queue_entries,
                                           cqid=self.qid)
            self.cq = CompletionQueueState(qid=self.qid, base_addr=0,
                                           entries=self.queue_entries)
        else:
            yield from self._start_shared()

        # Bounce buffer: client-local, partitioned per in-flight request.
        # Each partition is [one PRP-list page][data], so the NVMe DMA
        # descriptors for a partition can be "programmed once" (Sec. V)
        # and transfers beyond two pages have a device-reachable list.
        self._part_size = max(cfg.cluster.bounce_partition_bytes, 4096)
        self._part_stride = self._part_size + 4096
        nparts = min(self.queue_depth, cfg.cluster.bounce_partitions)
        bounce_seg = self.smartio.alloc_segment_placed(
            self.node, self.device_id, nparts * self._part_stride,
            Placement.CPU_SIDE)
        self._bounce_seg = bounce_seg
        self._bounce_dev_addr = self._ref.map_segment_for_device(bounce_seg)
        self._parts = Store(self.sim)
        for i in range(nparts):
            self._parts.put(i)

        if self.completion_mode == "interrupt":
            yield from self._setup_remote_interrupts()

        self._running = True
        self._started = True
        san = self.sanitizer
        if san.enabled:
            san.on_client_started(self)
        if self.completion_mode == "interrupt":
            self._poll_proc = self.sim.process(self._interrupt_handler())
        else:
            self._poll_proc = self.sim.process(self._poller())
        if self.config.reliability.heartbeat_interval_ns > 0:
            self._hb_proc = self.sim.process(self._heartbeat())

    def _start_shared(self) -> t.Generator:
        """Become a *tenant* of a manager-hosted shared queue pair
        (docs/queue_sharing.md).

        Only a client-local completion mailbox is allocated here; the
        shared SQ lives in the manager's host and we submit into our
        reserved slot window with posted writes through the NTB.  The
        manager's demux worker forwards our completions (matched by the
        tenant bits of the CID) into the mailbox as posted writes, so
        the completion path stays client-local polling exactly like a
        private client-side CQ.
        """
        if self.completion_mode == "interrupt":
            raise ClientError(
                "interrupt completion is incompatible with a shared QP")
        mb_seg = self.smartio.alloc_segment_placed(
            self.node, self.device_id, self.queue_entries * 16,
            Placement.CPU_SIDE)
        resp = yield from self._rpc(
            meta.OP_CREATE_QP, entries=self.queue_entries,
            flags=meta.FLAG_SHARED,
            share_node=mb_seg.id.node_id, share_seg=mb_seg.id.segment_id)
        if resp["rpc_status"] != meta.RPC_OK:
            mb_seg.remove()
            raise ClientError(f"manager refused shared queue pair: "
                              f"{resp['rpc_status']}")
        self._shared = True
        self.qid = resp["qid"]
        self._tenant = resp["tenant"]
        self._win_start = resp["win_start"]
        win_len = resp["win_len"]
        # Window handoff: win_tail is the window's absolute submission
        # count over all of its tenants so far.  The controller's window
        # head stands at that count modulo the window size; start our
        # ring there so head/tail agree, and continue the absolute count
        # in our doorbell shadow so the manager can tell when the window
        # has fully drained.
        self._submitted = resp["win_tail"]
        tail = resp["win_tail"] % win_len
        self._sq_conn = self.node.connect_segment(resp["share_node"],
                                                  resp["share_seg"])
        self._cq_seg = mb_seg
        self._cq_local = True
        self.sq = SubmissionQueueState(qid=self.qid, base_addr=0,
                                       entries=win_len, cqid=self.qid,
                                       head=tail, tail=tail)
        self.cq = CompletionQueueState(qid=self.qid, base_addr=0,
                                       entries=self.queue_entries)
        self.tracer.emit("client", "shared-qp-joined", client=self.name,
                         qid=self.qid, tenant=self._tenant,
                         win_start=self._win_start, win_len=win_len)

    def _setup_remote_interrupts(self) -> t.Generator:
        """The remote-interrupt extension (paper future work).

        The controller's MSI-X write is just another posted memory
        write, so it can be steered through a device-side NTB window to
        a mailbox in *client* memory: allocate the mailbox as a segment,
        map it for the device, and program the device-visible address
        into the MSI-X table entry for our vector through the mapped
        BAR.  PCIe posted ordering keeps the interrupt behind the CQE.
        """
        from ..nvme.registers import MSIX_ENTRY_SIZE, MSIX_TABLE_OFFSET

        mailbox_seg = self.smartio.alloc_segment_placed(
            self.node, self.device_id, 4096, Placement.CPU_SIDE)
        self._irq_mailbox = mailbox_seg.phys_addr
        mailbox_dev = self._ref.map_segment_for_device(mailbox_seg)
        entry = self._bar + MSIX_TABLE_OFFSET + self.qid * MSIX_ENTRY_SIZE
        for offset, value in ((0, mailbox_dev & 0xFFFF_FFFF),
                              (4, mailbox_dev >> 32),
                              (8, self.qid), (12, 0)):   # data, unmask
            self.node.fabric.post_write(
                self.node.host.rc, self.node.host, entry + offset,
                value.to_bytes(4, "little"))
        # Ensure the table writes have landed before any I/O is issued.
        yield self.sim.timeout(2_000)

    def shutdown(self) -> t.Generator:
        """Return the queue pair to the manager and unmap everything.

        Orderly teardown: stop the completion poller and the heartbeat,
        fail whatever is still in flight with ``STATUS_HOST_SHUTDOWN``
        (the waiters observe a distinct host-side status, never a
        hang), then release the queue pair.
        """
        self._running = False
        self._stop_workers()
        self._fail_inflight(STATUS_HOST_SHUTDOWN)
        san = self.sanitizer
        if san.enabled:
            san.on_client_dead(self, "shutdown")
        if self.qid is not None:
            yield from self._rpc(meta.OP_DELETE_QP, qid=self.qid)
            self.qid = None
        if self._ref is not None:
            self._ref.release()
            self._ref = None

    def crash(self) -> None:
        """Surprise removal (paper Sec. IV): the host dies without any
        cleanup RPC.  Local waiters are released with
        ``STATUS_HOST_CRASHED``; the manager only finds out when the
        heartbeat stops and the liveness lease expires."""
        if self.crashed:
            return
        self.crashed = True
        self._running = False
        self._stop_workers()
        self._fail_inflight(STATUS_HOST_CRASHED)
        san = self.sanitizer
        if san.enabled:
            san.on_client_dead(self, "crashed")
        self.tracer.emit("fault", "client-crashed", client=self.name)

    def _stop_workers(self) -> None:
        for proc in (self._poll_proc, self._hb_proc):
            if proc is not None and proc.is_alive:
                proc.interrupt()
        self._poll_proc = None
        self._hb_proc = None

    def _fail_inflight(self, status: int) -> None:
        """Complete every in-flight command with a synthetic host-side
        CQE; sorted by cid for deterministic wake order."""
        inflight, self._inflight = self._inflight, {}
        for cid in sorted(inflight):
            inflight[cid].succeed(CompletionEntry(cid=cid, status=status))
        # Release submitters parked on a full (shared) SQ window.
        self._sq_space.fire()

    def set_qos_window(self, window: int | None) -> None:
        """Clamp (or, with None, unclamp) outstanding commands
        (docs/qos.md).  Called by :class:`~repro.qos.AdmissionThrottle`
        while this tenant's burn-rate alert is active."""
        prev = self.qos_window
        self.qos_window = window
        if window is None or (prev is not None and window > prev):
            # Widening/lifting the clamp can unblock parked submitters.
            self._sq_space.fire()

    def _heartbeat(self) -> t.Generator:
        """Post the liveness counter into the metadata segment."""
        assert self._meta_conn is not None
        interval = self.config.reliability.heartbeat_interval_ns
        offset = meta.heartbeat_offset(self.slot_index)
        try:
            while self._running:
                # +1 so the very first beat (at t=0) is nonzero: the
                # manager treats 0 as "no lease established yet".
                self._meta_conn.write(
                    offset,
                    (self.sim.now + 1).to_bytes(meta.HEARTBEAT_SIZE,
                                                "little"))
                yield self.sim.timeout(interval)
        except Interrupt:
            return

    # ---------------------------------------------------------------- RPC

    def _rpc(self, op: int, qid: int = 0, entries: int = 0,
             sq_addr: int = 0, cq_addr: int = 0,
             flags: int = 0, share_node: int = 0,
             share_seg: int = 0) -> t.Generator:
        assert self._meta_conn is not None
        cfg = self.config.host
        offset = meta.slot_offset(self.slot_index)
        payload = meta.pack_slot(meta.SLOT_REQUEST, op=op, qid=qid,
                                 entries=entries, sq_addr=sq_addr,
                                 cq_addr=cq_addr, flags=flags,
                                 share_node=share_node,
                                 share_seg=share_seg)
        while True:
            yield from self._meta_conn.write_wait(offset, payload)
            resend = False
            while True:
                yield self.sim.timeout(cfg.rpc_poll_ns)
                try:
                    raw = yield from self._meta_conn.read(offset,
                                                          meta.SLOT_SIZE)
                except FabricFaultError:
                    # Path to the manager severed mid-RPC; keep polling
                    # until the link heals (setup path, latency is fine).
                    continue
                resp = meta.unpack_slot(raw)
                if resp["status"] == meta.SLOT_RESPONSE:
                    break
                if resp["status"] == meta.SLOT_FREE:
                    # Our request TLP was dropped before it landed (a
                    # delivered request reads back REQUEST or RESPONSE),
                    # so re-sending cannot double-apply it.
                    resend = True
                    break
            if not resend:
                break
        yield from self._meta_conn.write_wait(
            offset, meta.pack_slot(meta.SLOT_FREE))
        return resp

    # ------------------------------------------------------------ data path

    def _driver_submit(self, request: BlockRequest) -> t.Generator:
        if self.crashed:
            # The host is dead: requests still flow through the block
            # layer (so workloads drain instead of hanging) but every
            # one fails fast with the host-side status.
            request.status = STATUS_HOST_CRASHED
            return
        if not self._running:
            if self._started:
                # Shut down with requests still queued in the block
                # layer: drain them with the distinct host-side status,
                # symmetric with the crash path above.
                request.status = STATUS_HOST_SHUTDOWN
                return
            raise ClientError("client not started")
        cfg = self.config.host
        nbytes = (request.nblocks * self.lba_bytes
                  if request.op != "flush" else 0)
        if nbytes > self._part_size:
            raise BlockError(
                f"request of {nbytes} bytes exceeds the bounce partition "
                f"size {self._part_size}; split it in the workload layer")

        # Naive/unoptimised submission software path (paper Sec. VI).
        yield self.sim.sleep(cfg.block_submit_ns + cfg.dist_submit_ns)

        part = yield self._parts.get()
        list_local = self._bounce_seg.phys_addr + part * self._part_stride
        list_device = self._bounce_dev_addr + part * self._part_stride
        part_local = list_local + 4096
        part_device = list_device + 4096

        if self.data_path == "iommu":
            # Future-work variant: map the request buffer on the fly
            # instead of copying into the constant bounce segment.
            yield self.sim.timeout(cfg.iommu_map_ns)

        if request.op in BlockRequest.DATA_OUT_OPS:
            assert request.data is not None
            if self.data_path == "bounce":
                yield self.sim.sleep(self._memcpy_ns(nbytes))
            self.node.host.memory.write(part_local, request.data)

        sqe = SubmissionEntry(nsid=self.nsid)
        if request.op == "flush":
            sqe.opcode = IoOpcode.FLUSH
        else:
            sqe.opcode = _IO_OPCODES[request.op]
            if request.op != "write_zeroes":
                sqe.prp1, sqe.prp2 = prps_for_contiguous(
                    part_device, nbytes, list_device,
                    lambda blob: self.node.host.memory.write(list_local,
                                                             blob))
            sqe.slba = request.lba
            sqe.nlb = request.nblocks - 1
        rel = self.config.reliability
        attempt = 0
        while True:
            if not self._running:
                # Killed or shut down between attempts.
                cqe = CompletionEntry(status=STATUS_HOST_CRASHED
                                      if self.crashed
                                      else STATUS_HOST_SHUTDOWN)
                break
            qos_window = self.qos_window
            if (qos_window is not None
                    and len(self._inflight) >= qos_window):
                # Admission throttle active (docs/qos.md): hold the
                # request until a completion shrinks the outstanding
                # set below the clamped window (the signal also fires
                # on shutdown/crash and when the clamp is lifted).
                self.throttled_ios += 1
                yield self._sq_space.wait()
                continue
            if self.sq.is_full():
                if rel.command_timeout_ns <= 0:
                    # Recovery disabled: nothing can be lost, so the
                    # ring is legitimately full (queue depth above a
                    # shared slot window) — wait for a completion to
                    # free a slot (shutdown/crash fire the signal too,
                    # re-checked at the loop head).
                    yield self._sq_space.wait()
                    continue
                # The ring may be clogged with commands whose
                # completions were lost; recover what landed beyond CQ
                # holes before treating fullness as a fault.
                self._resync_cq()
                if self.sq.is_full():
                    if self._shared:
                        # A shared slot window fills in healthy
                        # operation whenever the queue depth exceeds
                        # it; give in-flight I/Os one timeout period
                        # to free a slot before calling it a clog.
                        space = self._sq_space.wait()
                        expiry = self.sim.timeout(rel.command_timeout_ns)
                        outcome = yield self.sim.any_of((space, expiry))
                        if space in outcome:
                            continue
                    if attempt >= rel.max_retries:
                        cqe = CompletionEntry(status=STATUS_HOST_TIMEOUT)
                        break
                    attempt += 1
                    yield self.sim.timeout(rel.retry_backoff_ns * attempt)
                    continue
            if self._shared:
                # CID namespacing: our tenant index in the high bits
                # keeps in-flight ids of co-tenants disjoint and lets
                # the manager demux completions without extra state.
                self._cid = (self._cid + 1) % (meta.CID_SEQ_MASK + 1)
                sqe.cid = meta.make_cid(self._tenant, self._cid)
            else:
                self._cid = (self._cid + 1) % 0x10000
                sqe.cid = self._cid
            done = Event(self.sim)
            self._inflight[sqe.cid] = done
            if request.span is not None:
                # Publish the span under its on-the-wire identity so the
                # controller can stamp its boundaries.
                self.telemetry.spans.bind(self.qid, sqe.cid, request.span)
            self._issue(sqe, request.span)

            if rel.command_timeout_ns <= 0:
                # Recovery disabled (the default): wait unconditionally.
                cqe = yield done
                break
            expiry = self.sim.timeout(rel.command_timeout_ns)
            outcome = yield self.sim.any_of((done, expiry))
            if done in outcome:
                cqe = outcome[done]
                break
            # Timed out.  A dropped CQE write leaves a phase hole in the
            # CQ ring that wedges the poller; scan past holes first —
            # the resync may deliver our own completion.
            if self._resync_cq() and done.triggered:
                cqe = done.value
                break
            # Retire the cid *first*: a late CQE for it is then counted
            # as stale in _dispatch instead of completing anything, so
            # each request completes exactly once.
            self._inflight.pop(sqe.cid, None)
            if request.span is not None:
                self.telemetry.spans.unbind(self.qid, sqe.cid)
            self.timeouts += 1
            self.tracer.emit("recovery", "timeout", client=self.name,
                             cid=sqe.cid, attempt=attempt)
            if attempt >= rel.max_retries:
                cqe = CompletionEntry(cid=sqe.cid,
                                      status=STATUS_HOST_TIMEOUT)
                break
            attempt += 1
            self.retries += 1
            self.tracer.emit("recovery", "retry", client=self.name,
                             cid=sqe.cid, attempt=attempt)
            # Linear backoff; the retry is a fresh command with a fresh
            # cid (reads/writes are idempotent at the block layer).
            yield self.sim.timeout(rel.retry_backoff_ns * attempt)
        span = request.span
        if span is not None and span.cid >= 0:
            self.telemetry.spans.unbind(span.qid, span.cid)
        # Naive completion software path + copy out of the bounce buffer.
        yield self.sim.sleep(cfg.dist_complete_ns)
        request.status = cqe.status
        if request.op == "read" and cqe.ok:
            if self.data_path == "bounce":
                yield self.sim.sleep(self._memcpy_ns(nbytes))
            request.result = self.node.host.memory.read(part_local, nbytes)
        if self.data_path == "iommu":
            yield self.sim.timeout(cfg.iommu_unmap_ns)
        self._parts.put(part)

    def _issue(self, sqe: SubmissionEntry, span=None) -> None:
        """One submission: SQE store, then the doorbell behind it."""
        # Write the SQE into queue memory.  Device-side SQ: posted store
        # through the NTB window; client-side SQ: plain local store;
        # shared SQ: posted store into our slot window of the manager-
        # hosted ring.
        slot = self.sq.advance_tail()
        san = self.sanitizer
        if san.enabled:
            san.on_client_submit(self, sqe.cid, slot)
        if self._shared:
            self._submitted += 1
        offset = ((self._win_start + slot) * 64 if self._shared
                  else slot * 64)
        sqe_write = self._sq_conn.write(offset, sqe.pack())
        if span is not None:
            # Delivery-time boundaries: piggyback on the posted writes'
            # completion events — adds no queue entries or RNG draws, so
            # simulated timing is identical with telemetry off.
            span.mark("sqe-issued", self.sim.now)
            if sqe_write.callbacks is not None:
                sqe_write.callbacks.append(
                    lambda _ev, s=span: s.mark("sqe-delivered",
                                               self.sim.now))
        if self._shared:
            batch_ns = self.config.sharing.doorbell_batch_ns
            if batch_ns > 0:
                # Batched ring: one doorbell covers every SQE issued
                # within the window.  Safe because the tail value rung
                # is read when the timer fires, after all those stores.
                if self._db_timer is None or not self._db_timer.is_alive:
                    self._db_timer = self.sim.process(
                        self._doorbell_batcher(batch_ns))
            else:
                self._ring_shared_sq_doorbell(span)
            return
        # Ring the doorbell through the mapped BAR (posted; ordered
        # behind the SQE store by PCIe posted-write ordering).
        db_write = self.node.fabric.post_write(
            self.node.host.rc, self.node.host,
            self._bar + sq_doorbell_offset(self.qid),
            self.sq.tail.to_bytes(4, "little"))
        if span is not None and db_write.callbacks is not None:
            db_write.callbacks.append(
                lambda _ev, s=span: s.mark("doorbell-delivered",
                                           self.sim.now))

    def _ring_shared_sq_doorbell(self, span=None) -> None:
        """Shared-SQ ring: mirror the absolute submission count into our
        doorbell shadow first (the manager reads it locally at
        release/reclaim — count mod window size hands the ring position
        to the next tenant, and the count itself tells the manager when
        every command ever submitted to the window has completed), then
        ring with the window index encoded in the doorbell's high
        half."""
        assert self._meta_conn is not None
        san = self.sanitizer
        if san.enabled:
            san.on_client_doorbell(self)
        self._meta_conn.write(
            meta.shadow_offset(self.qid, self._tenant),
            self._submitted.to_bytes(meta.SHADOW_SIZE, "little"))
        db_write = self.node.fabric.post_write(
            self.node.host.rc, self.node.host,
            self._bar + sq_doorbell_offset(self.qid),
            ((self._tenant << 16) | self.sq.tail).to_bytes(4, "little"))
        if span is not None and db_write.callbacks is not None:
            db_write.callbacks.append(
                lambda _ev, s=span: s.mark("doorbell-delivered",
                                           self.sim.now))

    def _doorbell_batcher(self, batch_ns: int) -> t.Generator:
        """Sleep out the batching window, then ring once with the
        latest tail (covers every SQE issued meanwhile)."""
        yield self.sim.sleep(batch_ns)
        self._db_timer = None
        if self._running:
            self._ring_shared_sq_doorbell()

    def _memcpy_ns(self, nbytes: int) -> int:
        cfg = self.config.host
        return cfg.memcpy_overhead_ns + serialize_ns(
            nbytes, cfg.memcpy_bandwidth)

    # ----------------------------------------------------------- completion

    def _poller(self) -> t.Generator:
        """Poll CQ memory for completions (no interrupts, paper Sec. V)."""
        if self._cq_local:
            yield from self._poll_local()
        else:
            yield from self._poll_remote()

    def _poll_local(self) -> t.Generator:
        # hot-path: the drain loop tests the CQE phase tag straight off
        # the raw bytes (dw3 low bit lives at byte 14 of the 16-byte
        # entry) so the common miss costs no CompletionEntry unpack, and
        # the poll-interval draw mirrors RngRegistry.uniform_ns against
        # a pre-resolved stream (a zero interval never draws, exactly as
        # uniform_ns short-circuits when low == high).
        sim = self.sim
        cq = self.cq
        cfg = self.config.host
        mem = self.node.host.memory
        read = mem.read
        unpack = CompletionEntry.unpack
        base = self._cq_seg.phys_addr
        poll_ns = cfg.poll_interval_ns
        poll_gen = (sim.rng.stream(self._poll_stream) if poll_ns else None)
        wp = mem.watch(base, self.queue_entries * 16)
        wait = wp.signal.wait
        try:
            while self._running:
                drained = 0
                while True:
                    raw = read(base + cq.head * 16, 16)
                    if raw[14] & 1 != cq.phase:
                        break
                    cq.consume()
                    self._dispatch(unpack(raw))
                    drained += 1
                if drained:
                    self._ring_cq_doorbell()
                    continue   # re-check before sleeping
                yield wait()
                # Busy-poll granularity: the CPU notices the write at its
                # next poll iteration.
                if poll_ns:
                    delay = int(poll_gen.integers(0, poll_ns + 1))
                    if delay:
                        yield sim.sleep(delay)
        except Interrupt:
            return  # shutdown/crash stopped the poller
        finally:
            mem.unwatch(wp)

    def _interrupt_handler(self) -> t.Generator:
        """Interrupt-driven completion: sleep until the forwarded MSI-X
        write lands in the mailbox, pay IRQ latency, then drain."""
        # hot-path (same raw phase test as _poll_local)
        sim = self.sim
        cq = self.cq
        cfg = self.config.host
        mem = self.node.host.memory
        read = mem.read
        unpack = CompletionEntry.unpack
        irq_ns = cfg.interrupt_latency_ns
        wp = mem.watch(self._irq_mailbox, 4)
        wait = wp.signal.wait
        base = self._cq_seg.phys_addr
        try:
            while self._running:
                yield wait()
                yield sim.sleep(irq_ns)
                drained = 0
                while True:
                    raw = read(base + cq.head * 16, 16)
                    if raw[14] & 1 != cq.phase:
                        break
                    cq.consume()
                    self._dispatch(unpack(raw))
                    drained += 1
                if drained:
                    self._ring_cq_doorbell()
        except Interrupt:
            return  # shutdown/crash stopped the handler
        finally:
            mem.unwatch(wp)

    def _poll_remote(self) -> t.Generator:
        """Ablation path: CQ in device-side memory — every poll is a
        non-posted read across the NTB."""
        cfg = self.config.host
        try:
            while self._running:
                # This read across the NTB is the point of the ablation.
                try:
                    # staticcheck: ignore[no-nonposted-hotpath] deliberate Fig. 8 counter-example
                    raw = yield from self._cq_conn.read(self.cq.head * 16,
                                                        16)
                except FabricFaultError:
                    # Severed path: back off, poll again when it heals.
                    yield self.sim.timeout(cfg.poll_interval_ns * 10)
                    continue
                if raw[14] & 1 == self.cq.phase:
                    self.cq.consume()
                    self._dispatch(CompletionEntry.unpack(raw))
                    self._ring_cq_doorbell()
                elif self._inflight:
                    yield self.sim.timeout(cfg.poll_interval_ns)
                else:
                    yield self.sim.timeout(cfg.poll_interval_ns * 10)
        except Interrupt:
            return  # shutdown/crash stopped the poller

    def _dispatch(self, cqe: CompletionEntry) -> None:
        san = self.sanitizer
        if san.enabled:
            san.on_client_dispatch(self, cqe)
        # For a shared QP the controller reports the *window-relative*
        # head, which is exactly what our window-sized ring models.
        self.sq.head = cqe.sq_head
        self._sq_space.fire()
        done = self._inflight.pop(cqe.cid, None)
        if done is not None:
            done.succeed(cqe)
        else:
            # Completion for a cid already retired by the timeout path:
            # drop it (the submitter moved on to a fresh cid).
            self.stale_completions += 1
            self.tracer.emit("recovery", "stale-completion",
                             client=self.name, cid=cqe.cid)

    def _resync_cq(self) -> int:
        """Skip CQ slots whose CQE writes were lost on the fabric.

        The controller's producer advances (and flips phase at the
        wrap) even when the posted CQE write is dropped, so an outage
        leaves *holes*: the consumer waits forever at a slot whose
        entry never arrived while valid entries sit further ahead.
        Scan one lap forward for entries carrying the phase tag the
        producer would have stamped there this lap — those are
        delivered completions beyond holes.  Dispatch them in order,
        advance the consumer past the gap, and ring the CQ doorbell.
        Stale ring content still carries the *previous* lap's tag, so
        the scan cannot mistake it for a fresh entry.  The holes' own
        cids are recovered by their per-command timeouts.

        Only meaningful for a client-local CQ (the default placement);
        returns the number of recovered completions.
        """
        if not self._cq_local:
            return 0
        mem = self.node.host.memory
        base = self._cq_seg.phys_addr
        entries = self.queue_entries
        head, phase = self.cq.head, self.cq.consumer_phase()
        found: list[tuple[int, CompletionEntry]] = []
        for i in range(entries):
            slot = (head + i) % entries
            expect = phase if head + i < entries else phase ^ 1
            cqe = CompletionEntry.unpack(mem.read(base + slot * 16, 16))
            if cqe.phase == expect:
                found.append((i, cqe))
        if not found:
            return 0
        hits = dict(found)
        for i in range(found[-1][0] + 1):      # consume() flips phase
            self.cq.consume()                  # at the wrap for us
            if i in hits:
                self._dispatch(hits[i])
        self._ring_cq_doorbell()
        self.tracer.emit("recovery", "cq-resync", client=self.name,
                         recovered=len(found),
                         skipped=found[-1][0] + 1 - len(found))
        return len(found)

    def _ring_cq_doorbell(self) -> None:
        if self._shared:
            # The mailbox ring has no doorbell; the manager's demux
            # worker acknowledges the real shared CQ on our behalf.
            return
        self.node.fabric.post_write(
            self.node.host.rc, self.node.host,
            self._bar + cq_doorbell_offset(self.qid),
            self.cq.head.to_bytes(4, "little"))
