"""DMA pools: pre-mapped memory regions with CPU- and device-side views.

The admin queues and their data buffers must be reachable both by the
CPU that runs the driver and by the controller's DMA engine.  When the
driver runs in the device's host the two addresses coincide; when it
runs *anywhere else in the cluster* (the paper's SmartIO promise), the
pool is a SISCI segment mapped for the device once at setup, and the
translation is a constant offset.
"""

from __future__ import annotations

import typing as t

from ..memory import RangeAllocator
from ..pcie import Host


class DmaPool:
    """A contiguous region with (cpu_addr, device_addr) pairs."""

    def __init__(self, host: Host, cpu_base: int, device_base: int,
                 size: int, name: str = "dmapool") -> None:
        self.host = host
        self.cpu_base = cpu_base
        self.device_base = device_base
        self.size = size
        self.name = name
        self._alloc = RangeAllocator(cpu_base, size, name=name)
        # ShareSan rides on the host memory's hook (docs/sanitizer.md):
        # pools are created at arbitrary times, so the wiring point is
        # the (long-lived) HostMemory they carve their buffers from.
        san = host.memory.sanitizer
        if san.enabled:
            san.on_pool_created(self)

    def alloc(self, size: int, alignment: int = 4096) -> tuple[int, int]:
        """Returns ``(cpu_addr, device_addr)`` for a new allocation."""
        cpu_addr = self._alloc.alloc(size, alignment)
        san = self.host.memory.sanitizer
        if san.enabled:
            san.on_pool_alloc(self, cpu_addr,
                              self._alloc.allocation_size(cpu_addr))
        return cpu_addr, self.to_device(cpu_addr)

    def free(self, cpu_addr: int) -> None:
        san = self.host.memory.sanitizer
        if san.enabled:
            san.on_pool_free(self, cpu_addr)
        self._alloc.free(cpu_addr)

    def to_device(self, cpu_addr: int) -> int:
        if not self.cpu_base <= cpu_addr < self.cpu_base + self.size:
            raise ValueError(f"{cpu_addr:#x} is outside the pool")
        return self.device_base + (cpu_addr - self.cpu_base)


def local_pool(host: Host, size: int) -> DmaPool:
    """Pool in the device's own host: CPU and device addresses match."""
    base = host.alloc_dma(size)
    return DmaPool(host, base, base, size, name=f"{host.name}.local-pool")
