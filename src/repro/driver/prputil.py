"""PRP construction for contiguous driver buffers.

All driver-owned data buffers in this codebase are physically contiguous
and page-aligned, so PRP lists are flat: entries 2..N point at the
successive pages, and one list page covers transfers up to 2 MiB — far
beyond the controller's 128 KiB MDTS.  The controller still *fetches the
list page via DMA* (an extra non-posted read that large transfers pay,
with NTB distance when the list lives in client memory).
"""

from __future__ import annotations

import typing as t

from ..nvme.constants import PAGE_SIZE


def prps_for_contiguous(data_device_addr: int, nbytes: int,
                        list_page_device_addr: int,
                        write_list_page: t.Callable[[bytes], None],
                        page_size: int = PAGE_SIZE) -> tuple[int, int]:
    """Return ``(prp1, prp2)`` for a page-aligned contiguous buffer.

    ``write_list_page`` is invoked with the packed list-page contents
    only when a PRP list is required (3+ pages).
    """
    if nbytes <= 0:
        raise ValueError("transfer must be positive")
    if data_device_addr % page_size:
        raise ValueError("driver buffers must be page-aligned")
    npages = (nbytes + page_size - 1) // page_size
    if npages == 1:
        return data_device_addr, 0
    if npages == 2:
        return data_device_addr, data_device_addr + page_size
    if npages - 1 > page_size // 8:
        raise ValueError(f"transfer of {nbytes} bytes needs a chained "
                         "PRP list; unsupported by this driver")
    blob = bytearray(page_size)
    for i in range(1, npages):
        entry = data_device_addr + i * page_size
        blob[(i - 1) * 8: i * 8] = entry.to_bytes(8, "little")
    write_list_page(bytes(blob))
    return data_device_addr, list_page_device_addr
