"""Layout of the manager's metadata segment (paper Sec. V).

"The manager also allocates a shared memory segment associated with the
controller with metadata about the manager, such as which host it runs
on.  This informs clients that the device is being managed and tells
them how to contact the manager."

The segment holds a header plus a mailbox of fixed-size RPC slots (one
per client node id) through which clients request I/O queue-pair
creation/deletion.  Clients write requests through their NTB mapping;
the manager polls locally via a watchpoint and writes responses in
place.  All of this is setup-path traffic.
"""

from __future__ import annotations

import struct

MAGIC = 0x4E564D45        # "NVME"
HEADER_SIZE = 64
SLOT_SIZE = 128
NSLOTS = 64

# Per-client liveness lease: each slot owner periodically posts a
# monotonically increasing counter into its heartbeat word; the manager
# reclaims the queue pairs of any owner whose counter stops advancing
# for ReliabilityConfig.lease_timeout_ns.  Heartbeats are plain posted
# stores — a dead or severed client simply stops writing.
HEARTBEAT_SIZE = 8
HEARTBEAT_OFFSET = HEADER_SIZE + NSLOTS * SLOT_SIZE

# --- shared queue pairs (docs/queue_sharing.md) ----------------------------
#
# CID namespacing: on a shared SQ every tenant owns a disjoint CID
# namespace so in-flight command ids never collide and a CQE can be
# demultiplexed to its issuing tenant without any extra state:
#
#     cid = (tenant_index << CID_TENANT_SHIFT) | (sequence & CID_SEQ_MASK)
#
# 4 tenant bits bound a shared QP at 16 tenants; 12 sequence bits leave
# 4096 ids per tenant, far above any window's in-flight bound.
CID_TENANT_SHIFT = 12
CID_SEQ_MASK = (1 << CID_TENANT_SHIFT) - 1
MAX_TENANTS = 1 << (16 - CID_TENANT_SHIFT)


def make_cid(tenant: int, seq: int) -> int:
    return (tenant << CID_TENANT_SHIFT) | (seq & CID_SEQ_MASK)


def cid_tenant(cid: int) -> int:
    return (cid >> CID_TENANT_SHIFT) & (MAX_TENANTS - 1)


# QP-share descriptors: one per possible I/O queue id, holding the
# window geometry plus a *per-tenant doorbell shadow* — the last window
# tail the tenant rang, posted by the tenant right after the doorbell.
# The manager reads a dead tenant's shadow (local memory) at reclaim
# time so the window's ring position can be handed to the next tenant
# admitted into it.
SHARE_DESC_COUNT = 32           # descriptors for qids 1..32
SHARE_HEADER_SIZE = 16          # qid, nwindows, window entries, bitmap
SHADOW_SIZE = 8
SHARE_DESC_SIZE = SHARE_HEADER_SIZE + MAX_TENANTS * SHADOW_SIZE
SHARE_OFFSET = HEARTBEAT_OFFSET + NSLOTS * HEARTBEAT_SIZE

SEGMENT_SIZE = SHARE_OFFSET + SHARE_DESC_COUNT * SHARE_DESC_SIZE

# Slot status values
SLOT_FREE = 0
SLOT_REQUEST = 1
SLOT_RESPONSE = 2

# RPC opcodes
OP_CREATE_QP = 1
OP_DELETE_QP = 2

# RPC status
RPC_OK = 0
RPC_NO_QUEUES = 1
RPC_BAD_REQUEST = 2
RPC_ADMIN_FAILED = 3
#: Private QPs are exhausted down to the shared reserve: retry the
#: request with FLAG_SHARED to be placed on a shared queue pair.
RPC_USE_SHARED = 4

_HEADER = struct.Struct("<IIIIIIQ")      # magic, mgr node, device, nsid,
                                         # lba_bytes, nslots, capacity
_SLOT = struct.Struct("<IIIIQQIIIIIIII")  # status, op, qid, entries,
                                          # sq_addr, cq_addr, rpc_status,
                                          # flags, tenant, win_start,
                                          # win_len, share_node,
                                          # share_seg, win_tail
assert _SLOT.size <= SLOT_SIZE
assert _HEADER.size <= HEADER_SIZE

# Slot flags
FLAG_INTERRUPTS = 1 << 0   # create the CQ with IEN set, vector = qid
FLAG_SHARED = 1 << 1       # admit onto a shared QP; share_node/share_seg
                           # carry the tenant's completion-mailbox segment


def pack_header(manager_node_id: int, device_id: int, nsid: int,
                lba_bytes: int, capacity_lbas: int) -> bytes:
    return _HEADER.pack(MAGIC, manager_node_id, device_id, nsid,
                        lba_bytes, NSLOTS, capacity_lbas).ljust(
                            HEADER_SIZE, b"\x00")


def unpack_header(data: bytes) -> dict:
    magic, node, device, nsid, lba, nslots, capacity = _HEADER.unpack(
        data[:_HEADER.size])
    if magic != MAGIC:
        raise ValueError(f"bad metadata magic: {magic:#x}")
    return {"manager_node_id": node, "device_id": device, "nsid": nsid,
            "lba_bytes": lba, "nslots": nslots, "capacity_lbas": capacity}


def slot_offset(index: int) -> int:
    if not 0 <= index < NSLOTS:
        raise ValueError(f"slot index out of range: {index}")
    return HEADER_SIZE + index * SLOT_SIZE


def heartbeat_offset(index: int) -> int:
    if not 0 <= index < NSLOTS:
        raise ValueError(f"slot index out of range: {index}")
    return HEARTBEAT_OFFSET + index * HEARTBEAT_SIZE


def share_offset(qid: int) -> int:
    if not 1 <= qid <= SHARE_DESC_COUNT:
        raise ValueError(f"share descriptor qid out of range: {qid}")
    return SHARE_OFFSET + (qid - 1) * SHARE_DESC_SIZE


def shadow_offset(qid: int, tenant: int) -> int:
    if not 0 <= tenant < MAX_TENANTS:
        raise ValueError(f"tenant index out of range: {tenant}")
    return share_offset(qid) + SHARE_HEADER_SIZE + tenant * SHADOW_SIZE


_SHARE_HEADER = struct.Struct("<IIII")   # qid, nwindows, win entries,
                                         # tenant bitmap
assert _SHARE_HEADER.size <= SHARE_HEADER_SIZE


def pack_share(qid: int, nwindows: int, win_entries: int,
               tenant_bitmap: int) -> bytes:
    return _SHARE_HEADER.pack(qid, nwindows, win_entries,
                              tenant_bitmap).ljust(SHARE_HEADER_SIZE,
                                                   b"\x00")


def unpack_share(data: bytes) -> dict:
    qid, nwindows, win_entries, bitmap = _SHARE_HEADER.unpack(
        data[:_SHARE_HEADER.size])
    return {"qid": qid, "nwindows": nwindows, "win_entries": win_entries,
            "tenant_bitmap": bitmap}


def pack_slot(status: int, op: int = 0, qid: int = 0, entries: int = 0,
              sq_addr: int = 0, cq_addr: int = 0,
              rpc_status: int = 0, flags: int = 0, tenant: int = 0,
              win_start: int = 0, win_len: int = 0, share_node: int = 0,
              share_seg: int = 0, win_tail: int = 0) -> bytes:
    return _SLOT.pack(status, op, qid, entries, sq_addr, cq_addr,
                      rpc_status, flags, tenant, win_start, win_len,
                      share_node, share_seg,
                      win_tail).ljust(SLOT_SIZE, b"\x00")


def unpack_slot(data: bytes) -> dict:
    (status, op, qid, entries, sq_addr, cq_addr, rpc_status, flags,
     tenant, win_start, win_len, share_node, share_seg, win_tail) = \
        _SLOT.unpack(data[:_SLOT.size])
    return {"status": status, "op": op, "qid": qid, "entries": entries,
            "sq_addr": sq_addr, "cq_addr": cq_addr,
            "rpc_status": rpc_status, "flags": flags, "tenant": tenant,
            "win_start": win_start, "win_len": win_len,
            "share_node": share_node, "share_seg": share_seg,
            "win_tail": win_tail}
