"""Layout of the manager's metadata segment (paper Sec. V).

"The manager also allocates a shared memory segment associated with the
controller with metadata about the manager, such as which host it runs
on.  This informs clients that the device is being managed and tells
them how to contact the manager."

The segment holds a header plus a mailbox of fixed-size RPC slots (one
per client node id) through which clients request I/O queue-pair
creation/deletion.  Clients write requests through their NTB mapping;
the manager polls locally via a watchpoint and writes responses in
place.  All of this is setup-path traffic.
"""

from __future__ import annotations

import struct

MAGIC = 0x4E564D45        # "NVME"
HEADER_SIZE = 64
SLOT_SIZE = 128
NSLOTS = 64

# Per-client liveness lease: each slot owner periodically posts a
# monotonically increasing counter into its heartbeat word; the manager
# reclaims the queue pairs of any owner whose counter stops advancing
# for ReliabilityConfig.lease_timeout_ns.  Heartbeats are plain posted
# stores — a dead or severed client simply stops writing.
HEARTBEAT_SIZE = 8
HEARTBEAT_OFFSET = HEADER_SIZE + NSLOTS * SLOT_SIZE

SEGMENT_SIZE = HEARTBEAT_OFFSET + NSLOTS * HEARTBEAT_SIZE

# Slot status values
SLOT_FREE = 0
SLOT_REQUEST = 1
SLOT_RESPONSE = 2

# RPC opcodes
OP_CREATE_QP = 1
OP_DELETE_QP = 2

# RPC status
RPC_OK = 0
RPC_NO_QUEUES = 1
RPC_BAD_REQUEST = 2
RPC_ADMIN_FAILED = 3

_HEADER = struct.Struct("<IIIIIIQ")      # magic, mgr node, device, nsid,
                                         # lba_bytes, nslots, capacity
_SLOT = struct.Struct("<IIIIQQII")       # status, op, qid, entries,
                                         # sq_addr, cq_addr, rpc_status,
                                         # flags
assert _SLOT.size <= SLOT_SIZE
assert _HEADER.size <= HEADER_SIZE

# Slot flags
FLAG_INTERRUPTS = 1 << 0   # create the CQ with IEN set, vector = qid


def pack_header(manager_node_id: int, device_id: int, nsid: int,
                lba_bytes: int, capacity_lbas: int) -> bytes:
    return _HEADER.pack(MAGIC, manager_node_id, device_id, nsid,
                        lba_bytes, NSLOTS, capacity_lbas).ljust(
                            HEADER_SIZE, b"\x00")


def unpack_header(data: bytes) -> dict:
    magic, node, device, nsid, lba, nslots, capacity = _HEADER.unpack(
        data[:_HEADER.size])
    if magic != MAGIC:
        raise ValueError(f"bad metadata magic: {magic:#x}")
    return {"manager_node_id": node, "device_id": device, "nsid": nsid,
            "lba_bytes": lba, "nslots": nslots, "capacity_lbas": capacity}


def slot_offset(index: int) -> int:
    if not 0 <= index < NSLOTS:
        raise ValueError(f"slot index out of range: {index}")
    return HEADER_SIZE + index * SLOT_SIZE


def heartbeat_offset(index: int) -> int:
    if not 0 <= index < NSLOTS:
        raise ValueError(f"slot index out of range: {index}")
    return HEARTBEAT_OFFSET + index * HEARTBEAT_SIZE


def pack_slot(status: int, op: int = 0, qid: int = 0, entries: int = 0,
              sq_addr: int = 0, cq_addr: int = 0,
              rpc_status: int = 0, flags: int = 0) -> bytes:
    return _SLOT.pack(status, op, qid, entries, sq_addr, cq_addr,
                      rpc_status, flags).ljust(SLOT_SIZE, b"\x00")


def unpack_slot(data: bytes) -> dict:
    status, op, qid, entries, sq_addr, cq_addr, rpc_status, flags = \
        _SLOT.unpack(data[:_SLOT.size])
    return {"status": status, "op": op, "qid": qid, "entries": entries,
            "sq_addr": sq_addr, "cq_addr": cq_addr,
            "rpc_status": rpc_status, "flags": flags}
