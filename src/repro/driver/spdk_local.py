"""SPDK-like local userspace NVMe driver.

The polling, zero-interrupt, zero-copy design the paper's target side
uses (and the design point its Related Work contrasts with: queue-level
sharing *within* one host, as in SPDK / NVMeDirect [23]).  Included as a
first-class baseline so the benchmarks can separate "polling vs
interrupts" from "naive vs optimised software path":

* no interrupts — completions are discovered by busy-polling CQ memory;
* no bounce buffer — data buffers are registered hugepage memory the
  device DMAs into directly;
* minimal per-command software cost (userspace, no syscalls).
"""

from __future__ import annotations

import typing as t

from ..config import SimulationConfig
from ..nvme import (CompletionEntry, CompletionQueueState, IoOpcode,
                    SubmissionEntry, SubmissionQueueState,
                    cq_doorbell_offset, sq_doorbell_offset)
from ..pcie import Fabric, Host
from ..sim import Event, Simulator
from .adminq import AdminQueues
from .blockdev import BlockDevice, BlockRequest
from .prputil import prps_for_contiguous


class SpdkLocalDriver(BlockDevice):
    """Userspace polling driver for a local NVMe controller."""

    #: userspace submission cost: build SQE + ring doorbell, no kernel.
    SUBMIT_NS = 250
    #: completion handling after the CQE is observed.
    COMPLETE_NS = 180
    #: busy-poll granularity (expected notice delay: uniform in [0, this]).
    POLL_INTERVAL_NS = 120

    def __init__(self, sim: Simulator, fabric: Fabric, host: Host,
                 bar_addr: int, config: SimulationConfig,
                 qid: int = 1, queue_entries: int = 256,
                 queue_depth: int = 64, name: str = "spdk-nvme") -> None:
        self.fabric = fabric
        self.host = host
        self.bar = bar_addr
        self.config = config
        self.qid = qid
        self.queue_entries = queue_entries
        self.admin = AdminQueues(sim, fabric, host, bar_addr, config)
        self.sq: SubmissionQueueState | None = None
        self.cq: CompletionQueueState | None = None
        self._cid = 0
        self._inflight: dict[int, Event] = {}
        self._running = False
        super().__init__(sim, name, lba_bytes=512, capacity_lbas=0,
                         queue_depth=queue_depth)

    def start(self) -> t.Generator:
        yield from self.admin.enable_controller()
        ident_ns = yield from self.admin.identify_namespace(1)
        self.lba_bytes = ident_ns.lba_bytes
        self.capacity_lbas = ident_ns.nsze
        cq_mem = self.host.alloc_dma(self.queue_entries * 16)
        sq_mem = self.host.alloc_dma(self.queue_entries * 64)
        yield from self.admin.create_io_cq(self.qid, self.queue_entries,
                                           cq_mem, interrupts=False)
        yield from self.admin.create_io_sq(self.qid, self.queue_entries,
                                           sq_mem, cqid=self.qid)
        self.sq = SubmissionQueueState(qid=self.qid, base_addr=sq_mem,
                                       entries=self.queue_entries,
                                       cqid=self.qid)
        self.cq = CompletionQueueState(qid=self.qid, base_addr=cq_mem,
                                       entries=self.queue_entries)
        self._running = True
        self.sim.process(self._poller())

    def _driver_submit(self, request: BlockRequest) -> t.Generator:
        assert self._running and self.sq is not None
        yield self.sim.timeout(self.SUBMIT_NS)

        nbytes = request.nblocks * self.lba_bytes
        alloc = buf = 0
        needs_buffer = request.op in ("read", "write", "compare")
        if needs_buffer:
            alloc = self.host.alloc_dma(4096 + max(nbytes, 4096))
            buf = alloc + 4096
            if request.op in BlockRequest.DATA_OUT_OPS:
                assert request.data is not None
                self.host.memory.write(buf, request.data)

        sqe = SubmissionEntry(nsid=1)
        if request.op == "flush":
            sqe.opcode = IoOpcode.FLUSH
        else:
            sqe.opcode = {"read": IoOpcode.READ,
                          "write": IoOpcode.WRITE,
                          "compare": IoOpcode.COMPARE,
                          "write_zeroes": IoOpcode.WRITE_ZEROES}[request.op]
            if needs_buffer:
                sqe.prp1, sqe.prp2 = prps_for_contiguous(
                    buf, nbytes, alloc,
                    lambda blob: self.host.memory.write(alloc, blob))
            sqe.slba = request.lba
            sqe.nlb = request.nblocks - 1
        self._cid = (self._cid + 1) % 0x10000
        sqe.cid = self._cid
        done = Event(self.sim)
        self._inflight[sqe.cid] = done

        slot = self.sq.advance_tail()
        self.host.memory.write(self.sq.slot_addr(slot), sqe.pack())
        self.fabric.post_write(
            self.host.rc, self.host,
            self.bar + sq_doorbell_offset(self.qid),
            self.sq.tail.to_bytes(4, "little"))

        cqe: CompletionEntry = yield done
        yield self.sim.timeout(self.COMPLETE_NS)
        request.status = cqe.status
        if request.op == "read" and cqe.ok:
            request.result = self.host.memory.read(buf, nbytes)
        if alloc:
            self.host.free_dma(alloc)

    def _poller(self) -> t.Generator:
        assert self.cq is not None and self.sq is not None
        mem = self.host.memory
        wp = mem.watch(self.cq.base_addr, self.queue_entries * 16)
        try:
            while self._running:
                drained = 0
                while True:
                    raw = mem.read(self.cq.slot_addr(self.cq.head), 16)
                    cqe = CompletionEntry.unpack(raw)
                    if cqe.phase != self.cq.consumer_phase():
                        break
                    self.cq.consume()
                    self.sq.head = cqe.sq_head
                    drained += 1
                    done = self._inflight.pop(cqe.cid, None)
                    if done is not None:
                        done.succeed(cqe)
                if drained:
                    self.fabric.post_write(
                        self.host.rc, self.host,
                        self.bar + cq_doorbell_offset(self.qid),
                        self.cq.head.to_bytes(4, "little"))
                    continue
                yield wp.signal.wait()
                delay = self.sim.rng.uniform_ns(
                    f"spdk-poll:{self.name}", 0, self.POLL_INTERVAL_NS)
                if delay:
                    yield self.sim.timeout(delay)
        finally:
            mem.unwatch(wp)
