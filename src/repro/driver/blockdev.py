"""Block-device abstraction (the Linux block layer, functionally).

Drivers register a :class:`BlockDevice`; workloads submit
:class:`BlockRequest` objects and wait on the returned event.  The layer
enforces a per-device queue depth (blk-mq tag allocation) and records
per-request latency from submission to completion callback, which is
exactly the interval fio reports.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..sim import Event, LatencyRecorder, Process, Resource, Simulator
from ..telemetry.hub import NULL_TELEMETRY


class BlockError(Exception):
    pass


@dataclasses.dataclass
class BlockRequest:
    """One I/O request handed to a block device."""

    op: str                       # "read" | "write" | "flush"
    lba: int = 0
    nblocks: int = 0
    data: bytes | None = None     # payload for writes
    #: filled in by the device for reads
    result: bytes | None = None
    status: int = 0               # NVMe status code; 0 = success
    submit_time: int = -1
    complete_time: int = -1
    #: telemetry span (an :class:`~repro.telemetry.IoSpan`) when enabled
    span: t.Any = None

    #: ops that carry host data toward the device
    DATA_OUT_OPS = ("write", "compare")
    #: ops that change media state (replicated layers land these on
    #: every live copy; "compare" only reads one)
    MUTATING_OPS = ("write", "write_zeroes")

    def __post_init__(self) -> None:
        if self.op not in ("read", "write", "flush", "write_zeroes",
                           "compare"):
            raise BlockError(f"unknown op: {self.op}")
        if self.op in self.DATA_OUT_OPS and self.data is None:
            raise BlockError(f"{self.op} requires data")
        if self.op in ("read", "write_zeroes") and self.nblocks <= 0:
            raise BlockError(f"{self.op} requires nblocks > 0")

    @property
    def ok(self) -> bool:
        return self.status == 0

    @property
    def latency_ns(self) -> int:
        if self.submit_time < 0 or self.complete_time < 0:
            raise BlockError("request not completed")
        return self.complete_time - self.submit_time


class BlockDevice:
    """Base class: drivers implement :meth:`_driver_submit`."""

    def __init__(self, sim: Simulator, name: str, lba_bytes: int,
                 capacity_lbas: int, queue_depth: int = 64) -> None:
        if queue_depth < 1:
            raise BlockError("queue depth must be >= 1")
        self.sim = sim
        self.name = name
        self.lba_bytes = lba_bytes
        self.capacity_lbas = capacity_lbas
        self.queue_depth = queue_depth
        self._tags = Resource(sim, capacity=queue_depth)
        self.telemetry = NULL_TELEMETRY
        #: histogram tenant label; drivers that act for a remote host
        #: override this with the host's name (see DistributedNvmeClient)
        self.tenant = name
        self.latencies = LatencyRecorder(name)
        self.completed = 0
        self.errors = 0
        self.bytes_moved = 0

    # -- public API -------------------------------------------------------

    def submit(self, request: BlockRequest) -> Event:
        """Queue a request; the returned event triggers with the request
        when it completes (its ``status``/``result`` fields filled).

        Latency is measured from *this* call — including any wait for a
        free queue tag — matching what fio reports under overload.
        """
        self._validate(request)
        request.submit_time = self.sim._now
        tele = self.telemetry
        if tele.enabled:
            request.span = tele.spans.begin(
                self.name, request.op, request.lba,
                request.nblocks * self.lba_bytes, request.submit_time)
        done = Event(self.sim)
        Process(self.sim, self._run(request, done))
        return done

    def io(self, request: BlockRequest) -> t.Generator[Event, t.Any, BlockRequest]:
        """Generator convenience: ``req = yield from dev.io(req)``."""
        completed = yield self.submit(request)
        return completed

    # -- internals -------------------------------------------------------------

    def _validate(self, request: BlockRequest) -> None:
        if request.op in BlockRequest.DATA_OUT_OPS:
            assert request.data is not None
            if len(request.data) % self.lba_bytes:
                raise BlockError(
                    f"{request.op} of {len(request.data)} bytes is not a "
                    f"multiple of the {self.lba_bytes}-byte block size")
            request.nblocks = len(request.data) // self.lba_bytes
        if request.op != "flush":
            if request.lba < 0 or \
                    request.lba + request.nblocks > self.capacity_lbas:
                raise BlockError(
                    f"I/O beyond device end: lba={request.lba} "
                    f"nblocks={request.nblocks}")

    def _run(self, request: BlockRequest, done: Event) -> t.Generator:
        tag = self._tags.request()
        yield tag
        try:
            yield from self._driver_submit(request)
        finally:
            self._tags.release(tag)
        request.complete_time = self.sim._now
        tele = self.telemetry
        if request.span is not None:
            tele.spans.finish(request.span, request.complete_time)
        if tele.enabled and tele.hists is not None:
            tele.hists.record_io(self.tenant, request.op, self.name,
                                 request.latency_ns, ok=request.ok)
        self.latencies.record(request.latency_ns)
        self.completed += 1
        if not request.ok:
            self.errors += 1
        elif request.op in ("read", "write", "compare"):
            self.bytes_moved += request.nblocks * self.lba_bytes
        done.succeed(request)

    def _driver_submit(self, request: BlockRequest) -> t.Generator:
        """Driver-specific path: perform the I/O, set status/result."""
        raise NotImplementedError
