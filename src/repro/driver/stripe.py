"""RAID-0-style striping across multiple (shared) block devices.

The SmartIO lineage of the paper (device lending, Sec. VII) is about
composing *multiple* remote devices per host.  This layer demonstrates
the composition: a client host that holds queue pairs on several shared
NVMe controllers — each possibly in a different cluster host — presents
them as one striped block device with additive bandwidth.

Pure block-layer logic: requests are split at stripe boundaries, issued
to the member devices in parallel, and merged in order.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..sim import Simulator
from .blockdev import BlockDevice, BlockError, BlockRequest


@dataclasses.dataclass(frozen=True)
class _Chunk:
    device_index: int
    device_lba: int
    nblocks: int
    offset_bytes: int      # offset of this chunk in the original request


class StripedBlockDevice(BlockDevice):
    """RAID-0 over equally sized member block devices."""

    def __init__(self, sim: Simulator, members: t.Sequence[BlockDevice],
                 stripe_lbas: int = 256, queue_depth: int = 64,
                 name: str = "md0") -> None:
        if len(members) < 2:
            raise BlockError("striping needs at least two members")
        lba = members[0].lba_bytes
        if any(m.lba_bytes != lba for m in members):
            raise BlockError("members disagree on LBA size")
        if any(m.sim is not sim for m in members):
            raise BlockError("members must share a simulator")
        if stripe_lbas < 1:
            raise BlockError("stripe size must be >= 1 LBA")
        self.members = list(members)
        self.stripe_lbas = stripe_lbas
        capacity = min(m.capacity_lbas for m in members) * len(members)
        super().__init__(sim, name, lba_bytes=lba,
                         capacity_lbas=capacity, queue_depth=queue_depth)

    # -- geometry -----------------------------------------------------------

    def _split(self, lba: int, nblocks: int) -> list[_Chunk]:
        """Map a logical extent to per-member chunks."""
        chunks: list[_Chunk] = []
        n = len(self.members)
        offset = 0
        while nblocks > 0:
            stripe_index, within = divmod(lba, self.stripe_lbas)
            device_index = stripe_index % n
            device_stripe = stripe_index // n
            run = min(nblocks, self.stripe_lbas - within)
            chunks.append(_Chunk(
                device_index=device_index,
                device_lba=device_stripe * self.stripe_lbas + within,
                nblocks=run,
                offset_bytes=offset))
            lba += run
            nblocks -= run
            offset += run * self.lba_bytes
        return chunks

    # -- data path -------------------------------------------------------------

    def _driver_submit(self, request: BlockRequest) -> t.Generator:
        if request.op == "flush":
            events = [m.submit(BlockRequest("flush"))
                      for m in self.members]
            done = yield self.sim.all_of(events)
            request.status = max(r.status for r in done.values())
            return

        chunks = self._split(request.lba, request.nblocks)
        subs: list[tuple[_Chunk, BlockRequest]] = []
        for chunk in chunks:
            if request.op in BlockRequest.DATA_OUT_OPS:
                assert request.data is not None
                piece = request.data[chunk.offset_bytes:
                                     chunk.offset_bytes
                                     + chunk.nblocks * self.lba_bytes]
                sub = BlockRequest(request.op, lba=chunk.device_lba,
                                   data=piece)
            else:
                sub = BlockRequest(request.op, lba=chunk.device_lba,
                                   nblocks=chunk.nblocks)
            subs.append((chunk, sub))

        events = [self.members[chunk.device_index].submit(sub)
                  for chunk, sub in subs]
        yield self.sim.all_of(events)

        request.status = max(sub.status for _c, sub in subs)
        if request.op == "read" and request.ok:
            out = bytearray(request.nblocks * self.lba_bytes)
            for chunk, sub in subs:
                assert sub.result is not None
                out[chunk.offset_bytes:
                    chunk.offset_bytes + len(sub.result)] = sub.result
            request.result = bytes(out)
