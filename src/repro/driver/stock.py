"""Stock Linux NVMe driver model (the paper's local baseline, Fig. 9a).

Interrupt-driven: MSI-X vector -> mailbox watchpoint -> IRQ latency ->
CQ drain.  No bounce buffer — request data is DMA'd directly (the kernel
maps user pages).  Software-path costs come from
:class:`~repro.config.HostSoftwareConfig` and are calibrated so 4 KiB QD1
reads land at the P4800X's typical ~11 us.
"""

from __future__ import annotations

import typing as t

from ..config import SimulationConfig
from ..nvme import (CompletionEntry, CompletionQueueState, IoOpcode,
                    SubmissionEntry, SubmissionQueueState,
                    cq_doorbell_offset, sq_doorbell_offset)
from ..nvme.registers import MSIX_TABLE_OFFSET
from ..pcie import Fabric, Host
from ..sim import Event, Simulator
from .adminq import AdminQueues
from .blockdev import BlockDevice, BlockRequest
from .prputil import prps_for_contiguous


class StockNvmeDriver(BlockDevice):
    """Local, interrupt-driven NVMe block driver."""

    def __init__(self, sim: Simulator, fabric: Fabric, host: Host,
                 bar_addr: int, config: SimulationConfig,
                 qid: int = 1, queue_entries: int = 256,
                 queue_depth: int = 64, name: str = "nvme0n1") -> None:
        self.fabric = fabric
        self.host = host
        self.bar = bar_addr
        self.config = config
        self.qid = qid
        self.queue_entries = queue_entries
        self.admin = AdminQueues(sim, fabric, host, bar_addr, config)
        self.sq: SubmissionQueueState | None = None
        self.cq: CompletionQueueState | None = None
        self._cid = 0
        self._inflight: dict[int, Event] = {}
        self._started = False
        # Filled in during start() from Identify data:
        super().__init__(sim, name, lba_bytes=512, capacity_lbas=0,
                         queue_depth=queue_depth)

    # -- bring-up ------------------------------------------------------------

    def start(self) -> t.Generator:
        """Enable the controller, set up one I/O queue pair + MSI-X."""
        yield from self.admin.enable_controller()
        ident_ns = yield from self.admin.identify_namespace(1)
        self.lba_bytes = ident_ns.lba_bytes
        self.capacity_lbas = ident_ns.nsze

        # MSI-X vector 0 -> mailbox page in local DRAM.
        mailbox = self.host.alloc_dma(4096)
        self._irq_mailbox = mailbox
        base = self.bar + MSIX_TABLE_OFFSET
        for offset, value in ((0, mailbox & 0xFFFF_FFFF),
                              (4, mailbox >> 32), (8, 1), (12, 0)):
            self.fabric.post_write(self.host.rc, self.host, base + offset,
                                   value.to_bytes(4, "little"))

        cq_mem = self.host.alloc_dma(self.queue_entries * 16)
        sq_mem = self.host.alloc_dma(self.queue_entries * 64)
        yield from self.admin.create_io_cq(self.qid, self.queue_entries,
                                           cq_mem, interrupts=True,
                                           vector=0)
        yield from self.admin.create_io_sq(self.qid, self.queue_entries,
                                           sq_mem, cqid=self.qid)
        self.sq = SubmissionQueueState(qid=self.qid, base_addr=sq_mem,
                                       entries=self.queue_entries,
                                       cqid=self.qid)
        self.cq = CompletionQueueState(qid=self.qid, base_addr=cq_mem,
                                       entries=self.queue_entries)
        self.sim.process(self._irq_handler())
        self._started = True

    # -- data path --------------------------------------------------------------

    def _driver_submit(self, request: BlockRequest) -> t.Generator:
        assert self._started, "driver not started"
        assert self.sq is not None
        cfg = self.config.host
        # Block-layer + driver submission software path.
        yield self.sim.timeout(cfg.block_submit_ns + cfg.nvme_submit_ns)

        nbytes = request.nblocks * self.lba_bytes
        alloc = 0
        buf = 0
        needs_buffer = request.op in ("read", "write", "compare")
        if needs_buffer:
            # [one PRP-list page][data]: contiguous, page-aligned.
            alloc = self.host.alloc_dma(4096 + max(nbytes, 4096))
            buf = alloc + 4096
            if request.op in BlockRequest.DATA_OUT_OPS:
                assert request.data is not None
                self.host.memory.write(buf, request.data)

        sqe = SubmissionEntry(nsid=1)
        if request.op == "flush":
            sqe.opcode = IoOpcode.FLUSH
        else:
            sqe.opcode = {"read": IoOpcode.READ,
                          "write": IoOpcode.WRITE,
                          "compare": IoOpcode.COMPARE,
                          "write_zeroes": IoOpcode.WRITE_ZEROES}[request.op]
            if needs_buffer:
                sqe.prp1, sqe.prp2 = prps_for_contiguous(
                    buf, nbytes, alloc,
                    lambda blob: self.host.memory.write(alloc, blob))
            sqe.slba = request.lba
            sqe.nlb = request.nblocks - 1

        self._cid = (self._cid + 1) % 0x10000
        sqe.cid = self._cid
        done = Event(self.sim)
        self._inflight[sqe.cid] = done

        slot = self.sq.advance_tail()
        self.host.memory.write(self.sq.slot_addr(slot), sqe.pack())
        self.fabric.post_write(
            self.host.rc, self.host,
            self.bar + sq_doorbell_offset(self.qid),
            self.sq.tail.to_bytes(4, "little"))

        cqe: CompletionEntry = yield done
        request.status = cqe.status
        if request.op == "read" and cqe.ok:
            request.result = self.host.memory.read(buf, nbytes)
        if alloc:
            self.host.free_dma(alloc)

    # -- completion path -----------------------------------------------------------

    def _irq_handler(self) -> t.Generator:
        """MSI-X interrupt service: drain the CQ after IRQ latency."""
        assert self.cq is not None
        cfg = self.config.host
        wp = self.host.memory.watch(self._irq_mailbox, 4)
        while True:
            yield wp.signal.wait()
            yield self.sim.timeout(cfg.interrupt_latency_ns)
            self._drain_cq()
            # A completion that raced the drain re-fires the watchpoint.

    def _drain_cq(self) -> int:
        assert self.cq is not None and self.sq is not None
        cfg = self.config.host
        drained = 0
        while True:
            raw = self.host.memory.read(self.cq.slot_addr(self.cq.head), 16)
            cqe = CompletionEntry.unpack(raw)
            if cqe.phase != self.cq.consumer_phase():
                break
            self.cq.consume()
            self.sq.head = cqe.sq_head
            drained += 1
            done = self._inflight.pop(cqe.cid, None)
            if done is not None:
                # completion processing cost charged inside the waiter
                done.succeed(cqe, delay=cfg.complete_ns)
        if drained:
            self.fabric.post_write(
                self.host.rc, self.host,
                self.bar + cq_doorbell_offset(self.qid),
                self.cq.head.to_bytes(4, "little"))
        return drained
