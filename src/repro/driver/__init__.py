"""NVMe drivers: the distributed manager/client pair (the paper's
contribution) plus the stock-Linux local baseline, over a shared
block-device abstraction."""

from .adminq import AdminError, AdminQueues
from .blockdev import BlockDevice, BlockError, BlockRequest
from .client import (HOST_PATH_STATUSES, STATUS_HOST_CRASHED,
                     STATUS_HOST_SHUTDOWN, STATUS_HOST_TIMEOUT,
                     ClientError, DistributedNvmeClient)
from .dmapool import DmaPool, local_pool
from .manager import ManagerError, NvmeManager
from .spdk_local import SpdkLocalDriver
from .stripe import StripedBlockDevice
from .stock import StockNvmeDriver

__all__ = [
    "BlockDevice", "BlockRequest", "BlockError",
    "AdminQueues", "AdminError",
    "DmaPool", "local_pool",
    "NvmeManager", "ManagerError",
    "DistributedNvmeClient", "ClientError",
    "STATUS_HOST_TIMEOUT", "STATUS_HOST_SHUTDOWN", "STATUS_HOST_CRASHED",
    "HOST_PATH_STATUSES",
    "StockNvmeDriver", "SpdkLocalDriver", "StripedBlockDevice",
]
