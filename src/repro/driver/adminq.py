"""Admin queue-pair handling shared by the stock driver and the manager.

Queue memory and admin data buffers come from a :class:`DmaPool`, which
pairs every CPU-side address with the address the *device* must use.
In the paper's evaluation the manager runs in the device's host and the
two coincide; a remote manager supplies a pool backed by a SISCI segment
mapped for the device ("the driver can run on any host in the network",
Sec. IV).

Admin completions are polled (setup-path only; performance irrelevant).
"""

from __future__ import annotations

import typing as t

from ..config import SimulationConfig
from ..nvme import (AdminOpcode, CompletionEntry, CompletionQueueState,
                    IdentifyController, IdentifyNamespace, SubmissionEntry,
                    SubmissionQueueState, cq_doorbell_offset,
                    sq_doorbell_offset)
from ..nvme.constants import (CNS_CONTROLLER, CNS_NAMESPACE, FEAT_NUM_QUEUES,
                              REG_ACQ, REG_AQA, REG_ASQ, REG_CC, REG_CSTS)
from ..pcie import Fabric, Host
from .dmapool import DmaPool, local_pool


class AdminError(Exception):
    pass


class AdminQueues:
    """Owns the admin SQ/CQ and performs privileged controller commands."""

    QSIZE = 32
    POOL_BYTES = 64 * 1024

    def __init__(self, sim, fabric: Fabric, host: Host, bar_addr: int,
                 config: SimulationConfig,
                 pool: DmaPool | None = None) -> None:
        self.sim = sim
        self.fabric = fabric
        self.host = host
        self.bar = bar_addr
        self.config = config
        self.pool = pool or local_pool(host, self.POOL_BYTES)
        self._cid = 0

        sq_cpu, sq_dev = self.pool.alloc(self.QSIZE * 64)
        cq_cpu, cq_dev = self.pool.alloc(self.QSIZE * 16)
        self.sq = SubmissionQueueState(qid=0, base_addr=sq_cpu,
                                       entries=self.QSIZE)
        self.cq = CompletionQueueState(qid=0, base_addr=cq_cpu,
                                       entries=self.QSIZE)
        self._sq_device_addr = sq_dev
        self._cq_device_addr = cq_dev

    # -- low level ----------------------------------------------------------

    def _reg_write(self, offset: int, value: int, width: int = 4) -> None:
        self.fabric.post_write(self.host.rc, self.host, self.bar + offset,
                               value.to_bytes(width, "little"))

    def _reg_read(self, offset: int, width: int = 4):
        data = yield from self.fabric.read(self.host.rc, self.host,
                                           self.bar + offset, width)
        return int.from_bytes(data, "little")

    def _next_cid(self) -> int:
        self._cid = (self._cid + 1) % 0x10000
        return self._cid

    # -- bring-up -----------------------------------------------------------

    def enable_controller(self) -> t.Generator:
        """Program AQA/ASQ/ACQ, set CC.EN, wait for CSTS.RDY."""
        self._reg_write(REG_AQA, ((self.QSIZE - 1) << 16) | (self.QSIZE - 1))
        self._reg_write(REG_ASQ, self._sq_device_addr, width=8)
        self._reg_write(REG_ACQ, self._cq_device_addr, width=8)
        self._reg_write(REG_CC, (6 << 16) | (4 << 20) | 1)
        deadline = self.sim.now + 10 * self.config.nvme.enable_latency_ns
        while True:
            csts = yield from self._reg_read(REG_CSTS)
            if csts & 1:
                return
            if self.sim.now > deadline:
                raise AdminError("controller did not become ready")
            yield self.sim.timeout(100_000)

    def disable_controller(self) -> t.Generator:
        self._reg_write(REG_CC, 0)
        while True:
            csts = yield from self._reg_read(REG_CSTS)
            if not csts & 1:
                return
            yield self.sim.timeout(100_000)

    # -- command path ------------------------------------------------------------

    def submit(self, sqe: SubmissionEntry) -> t.Generator:
        """Issue one admin command and poll for its completion."""
        sqe.cid = self._next_cid()
        slot = self.sq.advance_tail()
        self.host.memory.write(self.sq.slot_addr(slot), sqe.pack())
        self._reg_write(sq_doorbell_offset(0), self.sq.tail)
        wp = self.host.memory.watch(self.cq.base_addr,
                                    self.cq.entries * self.cq.entry_size)
        try:
            while True:
                raw = self.host.memory.read(
                    self.cq.slot_addr(self.cq.head), 16)
                cqe = CompletionEntry.unpack(raw)
                if cqe.phase == self.cq.consumer_phase():
                    self.cq.consume()
                    self.sq.head = cqe.sq_head
                    self._reg_write(cq_doorbell_offset(0), self.cq.head)
                    return cqe
                yield wp.signal.wait()
        finally:
            self.host.memory.unwatch(wp)

    def submit_ok(self, sqe: SubmissionEntry) -> t.Generator:
        cqe = yield from self.submit(sqe)
        if not cqe.ok:
            raise AdminError(
                f"admin opcode {sqe.opcode:#x} failed with status "
                f"{cqe.status:#x}")
        return cqe

    # -- admin helpers -------------------------------------------------------------

    def identify_controller(self) -> t.Generator:
        cpu, dev = self.pool.alloc(4096)
        yield from self.submit_ok(SubmissionEntry(
            opcode=AdminOpcode.IDENTIFY, prp1=dev, cdw10=CNS_CONTROLLER))
        data = self.host.memory.read(cpu, 4096)
        self.pool.free(cpu)
        return IdentifyController.unpack(data)

    def identify_namespace(self, nsid: int = 1) -> t.Generator:
        cpu, dev = self.pool.alloc(4096)
        yield from self.submit_ok(SubmissionEntry(
            opcode=AdminOpcode.IDENTIFY, nsid=nsid, prp1=dev,
            cdw10=CNS_NAMESPACE))
        data = self.host.memory.read(cpu, 4096)
        self.pool.free(cpu)
        return IdentifyNamespace.unpack(data)

    def create_io_cq(self, qid: int, entries: int, base_device_addr: int,
                     interrupts: bool = False, vector: int = 0):
        yield from self.submit_ok(SubmissionEntry(
            opcode=AdminOpcode.CREATE_IO_CQ, prp1=base_device_addr,
            cdw10=((entries - 1) << 16) | qid,
            cdw11=(vector << 16) | (2 if interrupts else 0) | 1))

    def create_io_sq(self, qid: int, entries: int, base_device_addr: int,
                     cqid: int, shared: bool = False,
                     window_entries: int = 0):
        # ``shared`` sets the vendor-extension bit (cdw11 bit 3) that
        # creates a windowed shared SQ; cdw12 carries the per-tenant
        # window size (docs/queue_sharing.md).
        yield from self.submit_ok(SubmissionEntry(
            opcode=AdminOpcode.CREATE_IO_SQ, prp1=base_device_addr,
            cdw10=((entries - 1) << 16) | qid,
            cdw11=(cqid << 16) | (8 if shared else 0) | 1,
            cdw12=window_entries & 0xFFFF))

    def delete_io_sq(self, qid: int):
        yield from self.submit_ok(SubmissionEntry(
            opcode=AdminOpcode.DELETE_IO_SQ, cdw10=qid))

    def delete_io_cq(self, qid: int):
        yield from self.submit_ok(SubmissionEntry(
            opcode=AdminOpcode.DELETE_IO_CQ, cdw10=qid))

    def get_queue_count(self) -> t.Generator:
        cqe = yield from self.submit_ok(SubmissionEntry(
            opcode=AdminOpcode.GET_FEATURES, cdw10=FEAT_NUM_QUEUES))
        return (cqe.result & 0xFFFF) + 1
