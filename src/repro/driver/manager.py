"""The distributed driver's *manager* module (paper Sec. V).

"Our implementation consists of a 'manager' kernel module and one or
more 'client' kernel modules.  The manager is responsible for
initializing the controller, setting up the admin queues, and performing
privileged tasks, such as creating and deleting I/O queue pairs, on
behalf of the clients."

The manager:

1. acquires the device exclusively through SmartIO, resets and enables
   the controller, then downgrades to a shared reference;
2. creates the metadata segment (header + RPC mailbox) and advertises it
   via SmartIO;
3. services queue-pair create/delete RPCs arriving in the mailbox.
   Clients supply *device-side* addresses for their queue memory — they
   resolve them with SmartIO DMA windows before calling, so the manager
   never needs to know any other host's address-space layout.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..config import SimulationConfig
from ..nvme import (CompletionEntry, CompletionQueueState,
                    cq_doorbell_offset)
from ..sanitizer.hooks import NULL_SANITIZER
from ..sim import NULL_TRACER, Resource, Simulator
from ..telemetry.hub import NULL_TELEMETRY
from ..sisci import LocalSegment, RemoteSegment, SisciError, SisciNode
from ..smartio import SmartIoService
from . import metadata as meta
from .adminq import AdminError, AdminQueues


class ManagerError(Exception):
    pass


@dataclasses.dataclass(slots=True)
class _SharedTenant:
    """One admitted tenant of a shared QP (manager-side bookkeeping).

    ``mailbox`` is None only for the transient *reserved* placeholder
    that holds a window while the rest of admission runs; a failed
    admission rolls the placeholder back (the RPC_NO_QUEUES rule:
    nothing may stay reserved on a rejected request)."""

    slot: int
    mailbox: RemoteSegment | None
    ring: CompletionQueueState | None


@dataclasses.dataclass(slots=True)
class _SharedQp:
    """Manager-side state of one shared (windowed) queue pair."""

    qid: int
    sq_seg: LocalSegment
    cq_seg: LocalSegment
    entries: int
    win_entries: int
    cq: CompletionQueueState          # consumer view of the shared CQ
    tenants: list[_SharedTenant | None]
    #: absolute submission count handed to the next tenant of each
    #: window (the departed tenant's doorbell shadow); the successor's
    #: ring tail starts at this value modulo the window size.
    win_next_tail: list[int]
    win_completed: list[int]          # absolute CQEs seen per window
    #: windows released with commands still outstanding: window index
    #: -> the absolute completion count at which the window becomes
    #: reusable.  A draining window is NOT free — handing it out early
    #: would let the successor receive the predecessor's completions
    #: and overwrite its unfetched SQEs.
    draining: dict[int, int] = dataclasses.field(default_factory=dict)

    @property
    def nwindows(self) -> int:
        return len(self.tenants)

    @property
    def tenant_count(self) -> int:
        return sum(1 for ten in self.tenants if ten is not None)

    @property
    def free_windows(self) -> int:
        return sum(1 for i, ten in enumerate(self.tenants)
                   if ten is None and i not in self.draining)

    def free_window_index(self) -> int | None:
        for i, ten in enumerate(self.tenants):
            if ten is None and i not in self.draining:
                return i
        return None

    def tenant_bitmap(self) -> int:
        bitmap = 0
        for i, ten in enumerate(self.tenants):
            if ten is not None:
                bitmap |= 1 << i
        return bitmap


class NvmeManager:
    """Owns the admin queues of one shared controller."""

    METADATA_SEGMENT_ID_BASE = 0x4D00
    # Shared queue memory lives on the *manager's* node so co-tenants
    # never depend on each other's hosts (docs/queue_sharing.md); one
    # id per (device, qid).
    SHARED_SQ_SEGMENT_ID_BASE = 0x5100
    SHARED_CQ_SEGMENT_ID_BASE = 0x5900

    def __init__(self, sim: Simulator, smartio: SmartIoService,
                 node: SisciNode, device_id: int,
                 config: SimulationConfig, tracer=NULL_TRACER) -> None:
        self.sim = sim
        self.smartio = smartio
        self.node = node
        self.device_id = device_id
        self.config = config
        self.tracer = tracer
        self.admin: AdminQueues | None = None
        self.metadata_segment: LocalSegment | None = None
        self._ref = None
        self._bar: int | None = None
        self._free_qids: list[int] = []
        self._client_qids: dict[int, list[int]] = {}   # slot -> qids
        self._shared_qps: dict[int, _SharedQp] = {}    # qid -> state
        self._slot_share: dict[int, tuple[int, int]] = {}  # slot -> (qid, win)
        self._running = False
        # AdminQueues.submit is one-command-at-a-time; the mailbox
        # worker and the lease watchdog serialise through this lock.
        self._admin_lock = Resource(sim, capacity=1)
        # slot -> (last heartbeat value, sim time it last changed)
        self._hb_seen: dict[int, tuple[int, int]] = {}
        self.telemetry = NULL_TELEMETRY
        #: ShareSan hook (docs/sanitizer.md); NULL object when off.
        self.sanitizer = NULL_SANITIZER
        self.rpcs_served = 0
        self.leases_reclaimed = 0
        self.admission_rejections = 0
        self.cqes_forwarded = 0
        self.cqes_orphaned = 0
        #: namespace size learned from IDENTIFY during :meth:`start`;
        #: the cluster placement scheduler budgets against this.
        self.capacity_lbas = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> t.Generator:
        """Initialise the controller and publish the metadata segment."""
        # Lock the device while resetting/initialising it.
        self._ref = self.smartio.acquire(self.device_id, self.node,
                                         exclusive=True)
        self._bar = bar = self._ref.map_bar(0)

        # Admin queue memory lives on the manager's host.  When the
        # manager runs somewhere other than the device's host, back the
        # admin DMA pool with a SISCI segment mapped for the device —
        # SmartIO resolves the device-side addresses, so this code is
        # identical for local and remote deployment (Sec. IV).
        device_local = (self.smartio.device_host_name(self.device_id)
                        == self.node.host.name)
        pool = None
        if not device_local:
            from .dmapool import DmaPool
            seg = self.node.create_segment(
                0x4A00 + self.device_id, AdminQueues.POOL_BYTES)
            seg.set_available()
            device_base = self._ref.map_segment_for_device(seg)
            pool = DmaPool(self.node.host, seg.phys_addr, device_base,
                           seg.size, name="admin-pool")
        self.admin = AdminQueues(self.sim, self.node.fabric,
                                 self.node.host, bar, self.config,
                                 pool=pool)

        yield from self.admin.enable_controller()
        ident = yield from self.admin.identify_namespace(1)
        self.capacity_lbas = ident.nsze
        nqueues = yield from self.admin.get_queue_count()
        self._free_qids = list(range(1, nqueues + 1))

        seg_id = self.METADATA_SEGMENT_ID_BASE + self.device_id
        seg = self.node.create_segment(seg_id, meta.SEGMENT_SIZE)
        seg.write(0, meta.pack_header(self.node.node_id, self.device_id,
                                      nsid=1, lba_bytes=ident.lba_bytes,
                                      capacity_lbas=ident.nsze))
        for slot in range(meta.NSLOTS):
            seg.write(meta.slot_offset(slot), meta.pack_slot(meta.SLOT_FREE))
            seg.write(meta.heartbeat_offset(slot),
                      bytes(meta.HEARTBEAT_SIZE))
        seg.set_available()
        self.metadata_segment = seg
        self.smartio.set_device_metadata(self.device_id,
                                         (self.node.node_id, seg_id))

        # Device initialised: let clients in.
        self._ref.downgrade()
        self._running = True
        san = self.sanitizer
        if san.enabled:
            san.on_manager_started(self)
        self.sim.process(self._mailbox_worker())
        if self.config.reliability.lease_timeout_ns > 0:
            self.sim.process(self._lease_worker())

    def stop(self) -> None:
        self._running = False

    # -- RPC service ---------------------------------------------------------------

    def _mailbox_worker(self) -> t.Generator:
        """Poll the mailbox region for client requests (local memory)."""
        seg = self.metadata_segment
        assert seg is not None
        mem = self.node.host.memory
        region_start = seg.phys_addr + meta.HEADER_SIZE
        region_len = meta.NSLOTS * meta.SLOT_SIZE
        wp = mem.watch(region_start, region_len)
        try:
            while self._running:
                progressed = True
                while progressed:
                    progressed = False
                    for slot in range(meta.NSLOTS):
                        raw = seg.read(meta.slot_offset(slot),
                                       meta.SLOT_SIZE)
                        req = meta.unpack_slot(raw)
                        if req["status"] == meta.SLOT_REQUEST:
                            yield from self._serve(slot, req)
                            progressed = True
                yield wp.signal.wait()
        finally:
            mem.unwatch(wp)

    def _serve(self, slot: int, req: dict) -> t.Generator:
        assert self.admin is not None and self.metadata_segment is not None
        self.rpcs_served += 1
        served_at = self.sim.now
        rpc_status = meta.RPC_OK
        qid = 0
        extra: dict[str, int] = {}
        if req["op"] == meta.OP_CREATE_QP:
            if req["flags"] & meta.FLAG_SHARED:
                rpc_status, qid, extra = yield from self._admit_shared(
                    slot, req)
            elif not self._private_available():
                # Private-first admission: once only the shared reserve
                # is left, redirect the client to retry with
                # FLAG_SHARED instead of refusing outright.
                if self.config.sharing.enabled:
                    rpc_status = meta.RPC_USE_SHARED
                else:
                    rpc_status = meta.RPC_NO_QUEUES
                    self.admission_rejections += 1
            elif req["entries"] < 2 or not req["sq_addr"] \
                    or not req["cq_addr"]:
                rpc_status = meta.RPC_BAD_REQUEST
            else:
                qid = self._free_qids.pop(0)
                interrupts = bool(req["flags"] & meta.FLAG_INTERRUPTS)
                lock = self._admin_lock.request()
                yield lock
                try:
                    cq_created = False
                    try:
                        yield from self.admin.create_io_cq(
                            qid, req["entries"], req["cq_addr"],
                            interrupts=interrupts, vector=qid)
                        cq_created = True
                        yield from self.admin.create_io_sq(
                            qid, req["entries"], req["sq_addr"], cqid=qid)
                    except AdminError:
                        # Roll back so nothing leaks: the half-created CQ
                        # is deleted and the qid returns to the free pool.
                        if cq_created:
                            try:
                                yield from self.admin.delete_io_cq(qid)
                            except AdminError:
                                pass   # controller lost it already
                        self._free_qids.append(qid)
                        qid = 0
                        rpc_status = meta.RPC_ADMIN_FAILED
                    else:
                        self._client_qids.setdefault(slot, []).append(qid)
                finally:
                    self._admin_lock.release(lock)
        elif req["op"] == meta.OP_DELETE_QP:
            share = self._slot_share.get(slot)
            owned = self._client_qids.get(slot, [])
            if share is not None and share[0] == req["qid"]:
                # Shared tenant leaving: free only its window — the QP
                # and its co-tenants are untouched.
                self._release_window(slot)
                qid = req["qid"]
            elif req["qid"] not in owned:
                rpc_status = meta.RPC_BAD_REQUEST
            else:
                lock = self._admin_lock.request()
                yield lock
                try:
                    yield from self.admin.delete_io_sq(req["qid"])
                    yield from self.admin.delete_io_cq(req["qid"])
                finally:
                    self._admin_lock.release(lock)
                owned.remove(req["qid"])
                self._free_qids.append(req["qid"])
                qid = req["qid"]
        else:
            rpc_status = meta.RPC_BAD_REQUEST

        self.metadata_segment.write(
            meta.slot_offset(slot),
            meta.pack_slot(meta.SLOT_RESPONSE, op=req["op"], qid=qid,
                           rpc_status=rpc_status, **extra))
        tele = self.telemetry
        if tele.enabled:
            op_name = {meta.OP_CREATE_QP: "create-qp",
                       meta.OP_DELETE_QP: "delete-qp"}.get(req["op"],
                                                           "unknown")
            tele.metrics.observe(
                "repro_manager_rpc_latency_ns", self.sim.now - served_at,
                help="admin mailbox RPC service time", op=op_name)

    # -- shared queue pairs (docs/queue_sharing.md) ----------------------------

    def _private_available(self) -> bool:
        """Private-first policy: hand out private QPs while the free
        pool stays above the qids reserved for future shared QPs."""
        sharing = self.config.sharing
        if not sharing.enabled:
            return bool(self._free_qids)
        reserve = max(0, sharing.reserved_qps - len(self._shared_qps))
        return len(self._free_qids) > reserve

    def _admit_shared(self, slot: int, req: dict) -> t.Generator:
        """Place one tenant onto a shared QP.

        The window is *reserved first* and rolled back if any later
        step fails — a rejected admission (RPC_NO_QUEUES) must leave no
        partially reserved window behind, and every rejection is
        counted for the metrics registry.
        """
        sharing = self.config.sharing
        if (not sharing.enabled or req["entries"] < 2
                or not req["share_seg"] or slot in self._slot_share):
            return meta.RPC_BAD_REQUEST, 0, {}
        qp = self._pick_shared_qp()
        if qp is None:
            qp = yield from self._create_shared_qp()
            if qp is None:
                self.admission_rejections += 1
                return meta.RPC_NO_QUEUES, 0, {}
        widx = qp.free_window_index()
        assert widx is not None        # _pick/_create guarantee one
        qp.tenants[widx] = _SharedTenant(slot=slot, mailbox=None,
                                         ring=None)   # reserve the window
        try:
            mailbox = self.node.connect_segment(req["share_node"],
                                                req["share_seg"])
        except SisciError:
            qp.tenants[widx] = None     # roll back the reservation
            self.admission_rejections += 1
            return meta.RPC_NO_QUEUES, 0, {}
        qp.tenants[widx] = _SharedTenant(
            slot=slot, mailbox=mailbox,
            ring=CompletionQueueState(qid=qp.qid, base_addr=0,
                                      entries=req["entries"]))
        win_tail = qp.win_next_tail[widx]
        seg = self.metadata_segment
        assert seg is not None
        seg.write(meta.share_offset(qp.qid),
                  meta.pack_share(qp.qid, qp.nwindows, qp.win_entries,
                                  qp.tenant_bitmap()))
        seg.write(meta.shadow_offset(qp.qid, widx),
                  win_tail.to_bytes(meta.SHADOW_SIZE, "little"))
        self._slot_share[slot] = (qp.qid, widx)
        san = self.sanitizer
        if san.enabled:
            san.on_window_granted(self, qp, widx, slot,
                                  qp.tenants[widx].ring)
        self.tracer.emit("manager", "shared-admit", slot=slot,
                         qid=qp.qid, window=widx)
        extra = {"tenant": widx, "win_start": widx * qp.win_entries,
                 "win_len": qp.win_entries,
                 "share_node": qp.sq_seg.id.node_id,
                 "share_seg": qp.sq_seg.id.segment_id,
                 "win_tail": win_tail}
        return meta.RPC_OK, qp.qid, extra

    def _pick_shared_qp(self) -> _SharedQp | None:
        """Least-loaded existing shared QP with a free window (lowest
        qid breaks ties, so placement is deterministic)."""
        best = None
        for qid in sorted(self._shared_qps):
            qp = self._shared_qps[qid]
            if qp.free_windows == 0:
                continue
            if best is None or qp.tenant_count < best.tenant_count:
                best = qp
        return best

    def _create_shared_qp(self) -> t.Generator:
        """Create one shared (windowed) QP on a reserved qid, hosted in
        the manager's own memory; None when capacity is exhausted."""
        assert self.admin is not None and self._ref is not None
        sharing = self.config.sharing
        if len(self._shared_qps) >= sharing.reserved_qps \
                or not self._free_qids:
            return None
        win = sharing.window_entries
        entries = min(sharing.sq_entries,
                      self.config.nvme.max_queue_entries)
        nwin = min(entries // win, meta.MAX_TENANTS)
        if nwin < 1:
            return None
        entries = nwin * win
        qid = self._free_qids.pop(0)
        base = self.device_id * 0x40
        sq_seg = self.node.create_segment(
            self.SHARED_SQ_SEGMENT_ID_BASE + base + qid, entries * 64)
        cq_seg = self.node.create_segment(
            self.SHARED_CQ_SEGMENT_ID_BASE + base + qid, entries * 16)
        sq_seg.set_available()
        cq_seg.set_available()
        sq_dev = self._ref.map_segment_for_device(sq_seg)
        cq_dev = self._ref.map_segment_for_device(cq_seg)
        lock = self._admin_lock.request()
        yield lock
        try:
            cq_created = False
            try:
                yield from self.admin.create_io_cq(qid, entries, cq_dev)
                cq_created = True
                yield from self.admin.create_io_sq(
                    qid, entries, sq_dev, cqid=qid, shared=True,
                    window_entries=win)
            except AdminError:
                # Roll back completely: half-created CQ, DMA windows,
                # segments and the qid all return to their pools.
                if cq_created:
                    try:
                        yield from self.admin.delete_io_cq(qid)
                    except AdminError:
                        pass   # controller lost it already
                self._ref.unmap_segment_for_device(sq_dev)
                self._ref.unmap_segment_for_device(cq_dev)
                sq_seg.remove()
                cq_seg.remove()
                self._free_qids.append(qid)
                return None
        finally:
            self._admin_lock.release(lock)
        qp = _SharedQp(
            qid=qid, sq_seg=sq_seg, cq_seg=cq_seg, entries=entries,
            win_entries=win,
            cq=CompletionQueueState(qid=qid, base_addr=cq_seg.phys_addr,
                                    entries=entries),
            tenants=[None] * nwin, win_next_tail=[0] * nwin,
            win_completed=[0] * nwin)
        self._shared_qps[qid] = qp
        san = self.sanitizer
        if san.enabled:
            san.on_shared_qp(self, qp)
        self.sim.process(self._shared_demux(qp))
        self.tracer.emit("manager", "shared-qp-created", qid=qid,
                         windows=nwin)
        return qp

    def _release_window(self, slot: int) -> None:
        """Free one tenant's window of a shared QP — and nothing else.

        The QP and its co-tenants keep running; the departing tenant's
        doorbell shadow (local memory, posted by the tenant after every
        ring) becomes the ring-position handoff for whoever is admitted
        into this window next."""
        qid, widx = self._slot_share.pop(slot)
        qp = self._shared_qps[qid]
        ten = qp.tenants[widx]
        seg = self.metadata_segment
        assert seg is not None
        shadow = int.from_bytes(
            seg.read(meta.shadow_offset(qid, widx), meta.SHADOW_SIZE),
            "little")
        qp.win_next_tail[widx] = shadow
        if ten is not None and ten.mailbox is not None:
            ten.mailbox.disconnect()
        qp.tenants[widx] = None
        if qp.win_completed[widx] < shadow:
            # Commands are still outstanding in the window: quarantine
            # it until the absolute completion count (counted over the
            # CQEs we drop as orphans) catches up with the departed
            # tenant's absolute submission count.
            qp.draining[widx] = shadow
        san = self.sanitizer
        if san.enabled:
            san.on_window_released(self, qp, widx, slot,
                                   widx in qp.draining)
        seg.write(meta.share_offset(qid),
                  meta.pack_share(qid, qp.nwindows, qp.win_entries,
                                  qp.tenant_bitmap()))
        self.tracer.emit("manager", "window-released", slot=slot,
                         qid=qid, window=widx)

    def _shared_demux(self, qp: _SharedQp) -> t.Generator:
        """Poll a shared CQ (manager-local memory) and forward each CQE
        to the issuing tenant's completion mailbox.

        The CID's tenant bits route the entry; the forwarded copy is
        re-phased for the tenant's mailbox ring and pushed with a
        posted write, keeping the completion path one-way end to end.
        CQEs of reclaimed tenants are dropped and counted — their
        window may already belong to a successor, whose CID sequence
        space is its own, so no misdelivery is possible.
        """
        sim = self.sim
        mem = self.node.host.memory
        read = mem.read
        cq = qp.cq
        base = qp.cq_seg.phys_addr
        unpack = CompletionEntry.unpack
        poll_ns = self.config.host.poll_interval_ns
        poll_gen = (sim.rng.stream(f"qp-demux:{self.device_id}:{qp.qid}")
                    if poll_ns else None)
        wp = mem.watch(base, cq.entries * 16)
        wait = wp.signal.wait
        try:
            while self._running:
                drained = 0
                while True:
                    raw = read(base + cq.head * 16, 16)
                    if raw[14] & 1 != cq.phase:
                        break
                    cq.consume()
                    self._forward_cqe(qp, unpack(raw))
                    drained += 1
                if drained:
                    assert self._bar is not None
                    self.node.fabric.post_write(
                        self.node.host.rc, self.node.host,
                        self._bar + cq_doorbell_offset(qp.qid),
                        cq.head.to_bytes(4, "little"))
                    continue    # re-check before sleeping
                yield wait()
                if poll_ns:
                    delay = int(poll_gen.integers(0, poll_ns + 1))
                    if delay:
                        yield sim.sleep(delay)
        finally:
            mem.unwatch(wp)

    def _forward_cqe(self, qp: _SharedQp, cqe: CompletionEntry) -> None:
        san = self.sanitizer
        widx = meta.cid_tenant(cqe.cid)
        if widx >= len(qp.tenants):
            self.cqes_orphaned += 1
            if san.enabled:
                san.on_cqe_orphaned(self, qp, cqe)
            return
        qp.win_completed[widx] += 1
        if (widx in qp.draining
                and qp.win_completed[widx] >= qp.draining[widx]):
            del qp.draining[widx]      # quarantined window now empty
            if san.enabled:
                san.on_window_drained(self, qp, widx)
        ten = qp.tenants[widx]
        if ten is None or ten.mailbox is None or ten.ring is None:
            self.cqes_orphaned += 1
            if san.enabled:
                san.on_cqe_orphaned(self, qp, cqe)
            return
        slot, phase = ten.ring.produce_slot()
        cqe.phase = phase
        ten.mailbox.write(slot * 16, cqe.pack())
        self.cqes_forwarded += 1
        if san.enabled:
            san.on_cqe_forwarded(self, qp, widx, ten.slot, cqe)

    # -- liveness leases -----------------------------------------------------------

    def _lease_worker(self) -> t.Generator:
        """Watchdog: reclaim queue pairs of clients whose heartbeat
        stopped (surprise removal, paper Sec. IV).

        A lease exists only once the first heartbeat lands (value 0 =
        the client predates the lease protocol or has not started);
        after that, a counter frozen for ``lease_timeout_ns`` means the
        owner is dead or unreachable and its resources are reclaimed.
        """
        rel = self.config.reliability
        seg = self.metadata_segment
        assert seg is not None
        while self._running:
            yield self.sim.timeout(rel.lease_check_interval_ns)
            now = self.sim.now
            for slot in sorted(set(self._client_qids)
                               | set(self._slot_share)):
                if not self._client_qids.get(slot) \
                        and slot not in self._slot_share:
                    continue
                hb = int.from_bytes(
                    seg.read(meta.heartbeat_offset(slot),
                             meta.HEARTBEAT_SIZE), "little")
                if hb == 0:
                    continue
                last, seen_at = self._hb_seen.get(slot, (0, now))
                if hb != last:
                    self._hb_seen[slot] = (hb, now)
                    continue
                if now - seen_at >= rel.lease_timeout_ns:
                    yield from self._reclaim(slot)

    def _reclaim(self, slot: int) -> t.Generator:
        """Delete a dead client's queue pairs and free its slot.

        A shared tenant's death frees only its window: the shared QP
        keeps serving co-tenants, whose in-flight I/O is never touched
        (lease-aware reclaim, docs/queue_sharing.md)."""
        assert self.admin is not None and self.metadata_segment is not None
        owned = self._client_qids.pop(slot, [])
        self._hb_seen.pop(slot, None)
        shared = slot in self._slot_share
        if shared:
            self._release_window(slot)
        lock = self._admin_lock.request()
        yield lock
        try:
            for qid in owned:
                try:
                    yield from self.admin.delete_io_sq(qid)
                    yield from self.admin.delete_io_cq(qid)
                except AdminError:
                    pass   # half-torn-down queues; reclaim the id anyway
                self._free_qids.append(qid)
        finally:
            self._admin_lock.release(lock)
        # Clear the mailbox slot and the heartbeat word so a
        # reconnecting client starts from a clean slate.
        self.metadata_segment.write(meta.slot_offset(slot),
                                    meta.pack_slot(meta.SLOT_FREE))
        self.metadata_segment.write(meta.heartbeat_offset(slot),
                                    bytes(meta.HEARTBEAT_SIZE))
        self.leases_reclaimed += 1
        san = self.sanitizer
        if san.enabled:
            san.on_lease_revoked(self, slot)
        self.tracer.emit("recovery", "lease-reclaim", slot=slot,
                         qids=len(owned) + (1 if shared else 0))

    @property
    def queues_in_use(self) -> int:
        return (sum(len(v) for v in self._client_qids.values())
                + len(self._shared_qps))

    @property
    def shared_qps(self) -> dict[int, _SharedQp]:
        """Read-only view of the shared QPs (telemetry, tests)."""
        return self._shared_qps

    def window_map(self) -> dict[int, dict[int, int]]:
        """Tenant identity per shared-SQ window: ``qid -> {window index
        -> owning client slot}`` for live tenants.  Lets QoS reports
        resolve the controller's per-window grant counters back to the
        client (and host) they served (docs/qos.md)."""
        out: dict[int, dict[int, int]] = {}
        for qid in sorted(self._shared_qps):
            qp = self._shared_qps[qid]
            wins = {i: ten.slot for i, ten in enumerate(qp.tenants)
                    if ten is not None and ten.mailbox is not None}
            if wins:
                out[qid] = wins
        return out
