"""The distributed driver's *manager* module (paper Sec. V).

"Our implementation consists of a 'manager' kernel module and one or
more 'client' kernel modules.  The manager is responsible for
initializing the controller, setting up the admin queues, and performing
privileged tasks, such as creating and deleting I/O queue pairs, on
behalf of the clients."

The manager:

1. acquires the device exclusively through SmartIO, resets and enables
   the controller, then downgrades to a shared reference;
2. creates the metadata segment (header + RPC mailbox) and advertises it
   via SmartIO;
3. services queue-pair create/delete RPCs arriving in the mailbox.
   Clients supply *device-side* addresses for their queue memory — they
   resolve them with SmartIO DMA windows before calling, so the manager
   never needs to know any other host's address-space layout.
"""

from __future__ import annotations

import typing as t

from ..config import SimulationConfig
from ..sim import NULL_TRACER, Resource, Simulator
from ..telemetry.hub import NULL_TELEMETRY
from ..sisci import LocalSegment, SisciNode
from ..smartio import SmartIoService
from . import metadata as meta
from .adminq import AdminError, AdminQueues


class ManagerError(Exception):
    pass


class NvmeManager:
    """Owns the admin queues of one shared controller."""

    METADATA_SEGMENT_ID_BASE = 0x4D00

    def __init__(self, sim: Simulator, smartio: SmartIoService,
                 node: SisciNode, device_id: int,
                 config: SimulationConfig, tracer=NULL_TRACER) -> None:
        self.sim = sim
        self.smartio = smartio
        self.node = node
        self.device_id = device_id
        self.config = config
        self.tracer = tracer
        self.admin: AdminQueues | None = None
        self.metadata_segment: LocalSegment | None = None
        self._ref = None
        self._free_qids: list[int] = []
        self._client_qids: dict[int, list[int]] = {}   # slot -> qids
        self._running = False
        # AdminQueues.submit is one-command-at-a-time; the mailbox
        # worker and the lease watchdog serialise through this lock.
        self._admin_lock = Resource(sim, capacity=1)
        # slot -> (last heartbeat value, sim time it last changed)
        self._hb_seen: dict[int, tuple[int, int]] = {}
        self.telemetry = NULL_TELEMETRY
        self.rpcs_served = 0
        self.leases_reclaimed = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> t.Generator:
        """Initialise the controller and publish the metadata segment."""
        # Lock the device while resetting/initialising it.
        self._ref = self.smartio.acquire(self.device_id, self.node,
                                         exclusive=True)
        bar = self._ref.map_bar(0)

        # Admin queue memory lives on the manager's host.  When the
        # manager runs somewhere other than the device's host, back the
        # admin DMA pool with a SISCI segment mapped for the device —
        # SmartIO resolves the device-side addresses, so this code is
        # identical for local and remote deployment (Sec. IV).
        device_local = (self.smartio.device_host_name(self.device_id)
                        == self.node.host.name)
        pool = None
        if not device_local:
            from .dmapool import DmaPool
            seg = self.node.create_segment(
                0x4A00 + self.device_id, AdminQueues.POOL_BYTES)
            seg.set_available()
            device_base = self._ref.map_segment_for_device(seg)
            pool = DmaPool(self.node.host, seg.phys_addr, device_base,
                           seg.size, name="admin-pool")
        self.admin = AdminQueues(self.sim, self.node.fabric,
                                 self.node.host, bar, self.config,
                                 pool=pool)

        yield from self.admin.enable_controller()
        ident = yield from self.admin.identify_namespace(1)
        nqueues = yield from self.admin.get_queue_count()
        self._free_qids = list(range(1, nqueues + 1))

        seg_id = self.METADATA_SEGMENT_ID_BASE + self.device_id
        seg = self.node.create_segment(seg_id, meta.SEGMENT_SIZE)
        seg.write(0, meta.pack_header(self.node.node_id, self.device_id,
                                      nsid=1, lba_bytes=ident.lba_bytes,
                                      capacity_lbas=ident.nsze))
        for slot in range(meta.NSLOTS):
            seg.write(meta.slot_offset(slot), meta.pack_slot(meta.SLOT_FREE))
            seg.write(meta.heartbeat_offset(slot),
                      bytes(meta.HEARTBEAT_SIZE))
        seg.set_available()
        self.metadata_segment = seg
        self.smartio.set_device_metadata(self.device_id,
                                         (self.node.node_id, seg_id))

        # Device initialised: let clients in.
        self._ref.downgrade()
        self._running = True
        self.sim.process(self._mailbox_worker())
        if self.config.reliability.lease_timeout_ns > 0:
            self.sim.process(self._lease_worker())

    def stop(self) -> None:
        self._running = False

    # -- RPC service ---------------------------------------------------------------

    def _mailbox_worker(self) -> t.Generator:
        """Poll the mailbox region for client requests (local memory)."""
        seg = self.metadata_segment
        assert seg is not None
        mem = self.node.host.memory
        region_start = seg.phys_addr + meta.HEADER_SIZE
        region_len = meta.NSLOTS * meta.SLOT_SIZE
        wp = mem.watch(region_start, region_len)
        try:
            while self._running:
                progressed = True
                while progressed:
                    progressed = False
                    for slot in range(meta.NSLOTS):
                        raw = seg.read(meta.slot_offset(slot),
                                       meta.SLOT_SIZE)
                        req = meta.unpack_slot(raw)
                        if req["status"] == meta.SLOT_REQUEST:
                            yield from self._serve(slot, req)
                            progressed = True
                yield wp.signal.wait()
        finally:
            mem.unwatch(wp)

    def _serve(self, slot: int, req: dict) -> t.Generator:
        assert self.admin is not None and self.metadata_segment is not None
        self.rpcs_served += 1
        served_at = self.sim.now
        rpc_status = meta.RPC_OK
        qid = 0
        if req["op"] == meta.OP_CREATE_QP:
            if not self._free_qids:
                rpc_status = meta.RPC_NO_QUEUES
            elif req["entries"] < 2 or not req["sq_addr"] \
                    or not req["cq_addr"]:
                rpc_status = meta.RPC_BAD_REQUEST
            else:
                qid = self._free_qids.pop(0)
                interrupts = bool(req["flags"] & meta.FLAG_INTERRUPTS)
                lock = self._admin_lock.request()
                yield lock
                try:
                    cq_created = False
                    try:
                        yield from self.admin.create_io_cq(
                            qid, req["entries"], req["cq_addr"],
                            interrupts=interrupts, vector=qid)
                        cq_created = True
                        yield from self.admin.create_io_sq(
                            qid, req["entries"], req["sq_addr"], cqid=qid)
                    except AdminError:
                        # Roll back so nothing leaks: the half-created CQ
                        # is deleted and the qid returns to the free pool.
                        if cq_created:
                            try:
                                yield from self.admin.delete_io_cq(qid)
                            except AdminError:
                                pass   # controller lost it already
                        self._free_qids.append(qid)
                        qid = 0
                        rpc_status = meta.RPC_ADMIN_FAILED
                    else:
                        self._client_qids.setdefault(slot, []).append(qid)
                finally:
                    self._admin_lock.release(lock)
        elif req["op"] == meta.OP_DELETE_QP:
            owned = self._client_qids.get(slot, [])
            if req["qid"] not in owned:
                rpc_status = meta.RPC_BAD_REQUEST
            else:
                lock = self._admin_lock.request()
                yield lock
                try:
                    yield from self.admin.delete_io_sq(req["qid"])
                    yield from self.admin.delete_io_cq(req["qid"])
                finally:
                    self._admin_lock.release(lock)
                owned.remove(req["qid"])
                self._free_qids.append(req["qid"])
                qid = req["qid"]
        else:
            rpc_status = meta.RPC_BAD_REQUEST

        self.metadata_segment.write(
            meta.slot_offset(slot),
            meta.pack_slot(meta.SLOT_RESPONSE, op=req["op"], qid=qid,
                           rpc_status=rpc_status))
        tele = self.telemetry
        if tele.enabled:
            op_name = {meta.OP_CREATE_QP: "create-qp",
                       meta.OP_DELETE_QP: "delete-qp"}.get(req["op"],
                                                           "unknown")
            tele.metrics.observe(
                "repro_manager_rpc_latency_ns", self.sim.now - served_at,
                help="admin mailbox RPC service time", op=op_name)

    # -- liveness leases -----------------------------------------------------------

    def _lease_worker(self) -> t.Generator:
        """Watchdog: reclaim queue pairs of clients whose heartbeat
        stopped (surprise removal, paper Sec. IV).

        A lease exists only once the first heartbeat lands (value 0 =
        the client predates the lease protocol or has not started);
        after that, a counter frozen for ``lease_timeout_ns`` means the
        owner is dead or unreachable and its resources are reclaimed.
        """
        rel = self.config.reliability
        seg = self.metadata_segment
        assert seg is not None
        while self._running:
            yield self.sim.timeout(rel.lease_check_interval_ns)
            now = self.sim.now
            for slot in sorted(self._client_qids):
                if not self._client_qids.get(slot):
                    continue
                hb = int.from_bytes(
                    seg.read(meta.heartbeat_offset(slot),
                             meta.HEARTBEAT_SIZE), "little")
                if hb == 0:
                    continue
                last, seen_at = self._hb_seen.get(slot, (0, now))
                if hb != last:
                    self._hb_seen[slot] = (hb, now)
                    continue
                if now - seen_at >= rel.lease_timeout_ns:
                    yield from self._reclaim(slot)

    def _reclaim(self, slot: int) -> t.Generator:
        """Delete a dead client's queue pairs and free its slot."""
        assert self.admin is not None and self.metadata_segment is not None
        owned = self._client_qids.pop(slot, [])
        self._hb_seen.pop(slot, None)
        lock = self._admin_lock.request()
        yield lock
        try:
            for qid in owned:
                try:
                    yield from self.admin.delete_io_sq(qid)
                    yield from self.admin.delete_io_cq(qid)
                except AdminError:
                    pass   # half-torn-down queues; reclaim the id anyway
                self._free_qids.append(qid)
        finally:
            self._admin_lock.release(lock)
        # Clear the mailbox slot and the heartbeat word so a
        # reconnecting client starts from a clean slate.
        self.metadata_segment.write(meta.slot_offset(slot),
                                    meta.pack_slot(meta.SLOT_FREE))
        self.metadata_segment.write(meta.heartbeat_offset(slot),
                                    bytes(meta.HEARTBEAT_SIZE))
        self.leases_reclaimed += 1
        self.tracer.emit("recovery", "lease-reclaim", slot=slot,
                         qids=len(owned))

    @property
    def queues_in_use(self) -> int:
        return sum(len(v) for v in self._client_qids.values())
