"""SISCI shared-memory API model (segments, connect, NTB mapping)."""

from .segments import (LocalSegment, RemoteSegment, SegmentId, SisciError,
                       SisciNode)

__all__ = ["SisciNode", "LocalSegment", "RemoteSegment", "SegmentId",
           "SisciError"]
