"""SISCI segment model.

SISCI exposes "segments": linear, physically contiguous regions of a
host's system memory identified cluster-wide by ``(node_id, segment_id)``.
Remote hosts *connect* to a segment and *map* it through their local NTB,
after which plain loads/stores reach the remote memory (paper Sec. IV).

The cluster-global segment directory models Dolphin's fabric services;
its lookups happen at setup time only, never on the I/O path.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..pcie import Fabric, Host, NtbFunction
from ..sim import Simulator


class SisciError(Exception):
    pass


@dataclasses.dataclass(frozen=True)
class SegmentId:
    node_id: int
    segment_id: int

    def __str__(self) -> str:
        return f"{self.node_id}:{self.segment_id}"


class LocalSegment:
    """A segment allocated in (and owned by) one host's DRAM."""

    def __init__(self, owner: "SisciNode", segment_id: int, size: int) -> None:
        if size <= 0:
            raise SisciError("segment size must be positive")
        self.owner = owner
        self.id = SegmentId(owner.node_id, segment_id)
        self.size = size
        self.phys_addr = owner.host.alloc_dma(size)
        self.available = False
        self.connections: list["RemoteSegment"] = []

    @property
    def host(self) -> Host:
        return self.owner.host

    def set_available(self) -> None:
        self.available = True

    def set_unavailable(self) -> None:
        self.available = False

    def remove(self) -> None:
        if self.connections:
            raise SisciError(
                f"segment {self.id} still has {len(self.connections)} "
                "connections")
        self.owner.host.free_dma(self.phys_addr)
        self.owner._segments.pop(self.id.segment_id, None)
        directory = self.owner.directory
        directory.pop(self.id, None)

    # Local access (the owner's CPU touching its own memory).
    def write(self, offset: int, data: bytes) -> None:
        self.host.memory.write(self.phys_addr + offset, data)

    def read(self, offset: int, length: int) -> bytes:
        return self.host.memory.read(self.phys_addr + offset, length)


class RemoteSegment:
    """A connection to a (possibly remote) segment, mapped via the NTB.

    ``map_addr`` is the physical address in the *connecting* host's
    address space; loads/stores to it are forwarded by the NTB.  When the
    segment happens to live in the connecting host itself, the mapping is
    direct (no NTB window).
    """

    def __init__(self, node: "SisciNode", segment: LocalSegment) -> None:
        self.node = node
        self.segment = segment
        self.size = segment.size
        if segment.host is node.host:
            self.map_addr = segment.phys_addr
            self._window = None
        else:
            self.map_addr = node.ntb.map_window(
                segment.host, segment.phys_addr, segment.size,
                label=f"sisci-{segment.id}")
            self._window = self.map_addr
        segment.connections.append(self)

    def disconnect(self) -> None:
        if self._window is not None:
            self.node.ntb.unmap_window(self._window)
            self._window = None
        try:
            self.segment.connections.remove(self)
        except ValueError:
            pass

    # -- CPU access through the mapping (generators: real fabric cost) ------

    def write(self, offset: int, data: bytes):
        """Posted store(s) through the NTB mapping (fire and forget)."""
        if offset + len(data) > self.size:
            raise SisciError("write beyond segment end")
        return self.node.fabric.post_write(
            self.node.host.rc, self.node.host, self.map_addr + offset, data)

    def write_wait(self, offset: int, data: bytes):
        """Generator: store and wait for delivery."""
        if offset + len(data) > self.size:
            raise SisciError("write beyond segment end")
        yield from self.node.fabric.write(
            self.node.host.rc, self.node.host, self.map_addr + offset, data)

    def read(self, offset: int, length: int):
        """Generator: load through the mapping (non-posted, full RTT)."""
        if offset + length > self.size:
            raise SisciError("read beyond segment end")
        data = yield from self.node.fabric.read(
            self.node.host.rc, self.node.host, self.map_addr + offset,
            length)
        return data


class SisciNode:
    """Per-host SISCI runtime: owns the node id, the adapter, segments."""

    def __init__(self, sim: Simulator, host: Host, ntb: NtbFunction,
                 fabric: Fabric, node_id: int,
                 directory: dict[SegmentId, LocalSegment]) -> None:
        self.sim = sim
        self.host = host
        self.ntb = ntb
        self.fabric = fabric
        self.node_id = node_id
        self.directory = directory
        self._segments: dict[int, LocalSegment] = {}

    def create_segment(self, segment_id: int, size: int) -> LocalSegment:
        if segment_id in self._segments:
            raise SisciError(f"segment id {segment_id} already exists "
                             f"on node {self.node_id}")
        seg = LocalSegment(self, segment_id, size)
        self._segments[segment_id] = seg
        self.directory[seg.id] = seg
        return seg

    def connect_segment(self, node_id: int, segment_id: int) -> RemoteSegment:
        seg = self.directory.get(SegmentId(node_id, segment_id))
        if seg is None:
            raise SisciError(f"no segment {node_id}:{segment_id}")
        if not seg.available:
            raise SisciError(f"segment {node_id}:{segment_id} "
                             "is not available")
        return RemoteSegment(self, seg)

    def local_segment(self, segment_id: int) -> LocalSegment:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise SisciError(f"node {self.node_id} has no segment "
                             f"{segment_id}") from None
