"""Storage-medium timing models.

:class:`OptaneMedia` models the Intel P4800X the paper benchmarks with:
3D-XPoint has near-constant access time regardless of read/write mix and
no garbage-collection pauses — the paper picked it because "its latency
is very consistent".  :class:`NandMedia` is provided for ablations (what
the comparison would look like on a TLC flash drive, with its wide
read/program asymmetry).

Parallelism is modelled as a pool of channels (a counted Resource): the
per-command media time is constant, so the drive's max IOPS is
``channels / access_time`` — calibrated to the P4800X's ~550-600 kIOPS.
"""

from __future__ import annotations

import typing as t

from ..config import MediaConfig
from ..sim import Resource, Simulator


class Media:
    """Base latency model; subclasses provide per-op timing draws."""

    def __init__(self, sim: Simulator, config: MediaConfig,
                 name: str = "media") -> None:
        self.sim = sim
        self.config = config
        self.name = name
        self.channels = Resource(sim, capacity=config.channels)
        self.reads = 0
        self.writes = 0
        self.media_errors = 0

    def _draw(self, kind: str, nbytes: int) -> int:
        raise NotImplementedError

    def access(self, kind: str, nbytes: int) -> t.Generator:
        """Generator: occupy a channel for the media access time.

        ``kind`` is "read", "write" or "flush".  Returns True on
        success, False on an (injected) uncorrectable media error — a
        failed access still occupies the channel for its full duration,
        as a real drive's internal retries would.
        """
        if kind not in ("read", "write", "flush"):
            raise ValueError(f"unknown media access kind: {kind}")
        req = self.channels.request()
        yield req
        try:
            yield self.sim.sleep(self._draw(kind, nbytes))
        finally:
            self.channels.release(req)
        if kind == "read":
            self.reads += 1
        elif kind == "write":
            self.writes += 1
        return not self._inject_error(kind)

    def _inject_error(self, kind: str) -> bool:
        rate = (self.config.read_error_rate if kind == "read"
                else self.config.write_error_rate if kind == "write"
                else 0.0)
        if rate <= 0.0:
            return False
        if float(self.sim.rng.stream(f"{self.name}.errors").random()) \
                < rate:
            self.media_errors += 1
            return True
        return False


class OptaneMedia(Media):
    """3D-XPoint: consistent, symmetric, low latency."""

    def _draw(self, kind: str, nbytes: int) -> int:
        cfg = self.config
        if kind == "flush":
            # Optane has no volatile write cache to speak of.
            return 500
        if kind == "read":
            base = self.sim.rng.lognormal_ns(
                f"{self.name}.read", cfg.read_median_ns, cfg.sigma,
                cap=cfg.read_cap_ns)
        else:
            base = self.sim.rng.lognormal_ns(
                f"{self.name}.write", cfg.write_median_ns, cfg.sigma,
                cap=cfg.write_cap_ns)
        extra = max(0, nbytes - 4096)
        return base + round(extra * cfg.per_byte_ns)


#: NAND timing: reads ~70 us, programs ~600 us median, heavy-tailed.
NAND_CONFIG = MediaConfig(
    name="nand-tlc",
    read_median_ns=68_000,
    write_median_ns=420_000,
    sigma=0.25,
    read_cap_ns=400_000,
    write_cap_ns=3_000_000,
    per_byte_ns=1.0 / 1.8,
    channels=16,
    lba_bytes=512,
    capacity_lbas=1_875_000_000,
)


class NandMedia(Media):
    """TLC flash: asymmetric and jittery (for ablation experiments)."""

    def __init__(self, sim: Simulator, config: MediaConfig = NAND_CONFIG,
                 name: str = "nand") -> None:
        super().__init__(sim, config, name)

    def _draw(self, kind: str, nbytes: int) -> int:
        cfg = self.config
        if kind == "flush":
            return 20_000
        if kind == "read":
            base = self.sim.rng.lognormal_ns(
                f"{self.name}.read", cfg.read_median_ns, cfg.sigma,
                cap=cfg.read_cap_ns)
        else:
            base = self.sim.rng.lognormal_ns(
                f"{self.name}.write", cfg.write_median_ns, cfg.sigma,
                cap=cfg.write_cap_ns)
        extra = max(0, nbytes - 4096)
        return base + round(extra * cfg.per_byte_ns)
