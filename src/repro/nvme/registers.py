"""Controller register file (BAR0 layout, NVMe 1.3 §3).

Handles byte-accurate packing of the control registers so MMIO reads of
any width at any offset see exactly what hardware would return.  Doorbell
and MSI-X table regions are dispatched by the controller itself.
"""

from __future__ import annotations

from .constants import (CSTS_RDY, DOORBELL_BASE, NVME_VERSION_1_3, REG_ACQ,
                        REG_AQA, REG_ASQ, REG_CAP, REG_CC, REG_CSTS,
                        REG_INTMC, REG_INTMS, REG_VS)

#: MSI-X table location within BAR0 (our fixed layout; advertised via a
#: simplified capability model rather than full config space).
MSIX_TABLE_OFFSET = 0x2000
MSIX_ENTRY_SIZE = 16
MSIX_VECTORS = 32


def build_cap(max_queue_entries: int, doorbell_stride: int,
              timeout_500ms_units: int = 30) -> int:
    """Assemble the CAP register value."""
    if doorbell_stride != 4:
        raise ValueError("model supports DSTRD=0 (4-byte stride) only")
    mqes = max_queue_entries - 1
    cap = mqes & 0xFFFF
    cap |= 1 << 16                      # CQR: contiguous queues required
    cap |= (timeout_500ms_units & 0xFF) << 24
    cap |= 0 << 32                      # DSTRD = 0
    cap |= 1 << 37                      # CSS: NVM command set
    cap |= 0 << 48                      # MPSMIN = 4 KiB
    cap |= 0 << 52                      # MPSMAX = 4 KiB
    return cap


class RegisterFile:
    """The plain (non-doorbell) register state of a controller."""

    def __init__(self, max_queue_entries: int, doorbell_stride: int) -> None:
        self.cap = build_cap(max_queue_entries, doorbell_stride)
        self.vs = NVME_VERSION_1_3
        self.intms = 0
        self.cc = 0
        self.csts = 0
        self.aqa = 0
        self.asq = 0
        self.acq = 0

    # -- byte-level access -----------------------------------------------------

    def _snapshot(self) -> bytes:
        """Pack registers 0x00-0x37 as they appear in BAR0."""
        buf = bytearray(0x38)
        buf[REG_CAP:REG_CAP + 8] = self.cap.to_bytes(8, "little")
        buf[REG_VS:REG_VS + 4] = self.vs.to_bytes(4, "little")
        buf[REG_INTMS:REG_INTMS + 4] = self.intms.to_bytes(4, "little")
        buf[REG_INTMC:REG_INTMC + 4] = b"\x00" * 4
        buf[REG_CC:REG_CC + 4] = self.cc.to_bytes(4, "little")
        buf[REG_CSTS:REG_CSTS + 4] = self.csts.to_bytes(4, "little")
        buf[REG_AQA:REG_AQA + 4] = self.aqa.to_bytes(4, "little")
        buf[REG_ASQ:REG_ASQ + 8] = self.asq.to_bytes(8, "little")
        buf[REG_ACQ:REG_ACQ + 8] = self.acq.to_bytes(8, "little")
        return bytes(buf)

    def read(self, offset: int, length: int) -> bytes:
        snap = self._snapshot()
        if offset + length > len(snap):
            # Reads beyond the defined registers return zeros (reserved).
            pad = offset + length - len(snap)
            return (snap + bytes(pad))[offset: offset + length]
        return snap[offset: offset + length]

    @property
    def ready(self) -> bool:
        return bool(self.csts & CSTS_RDY)

    @property
    def enabled(self) -> bool:
        return bool(self.cc & 1)

    # -- derived admin queue attributes ----------------------------------------

    @property
    def admin_sq_entries(self) -> int:
        return (self.aqa & 0xFFF) + 1

    @property
    def admin_cq_entries(self) -> int:
        return ((self.aqa >> 16) & 0xFFF) + 1


def doorbell_index(offset: int) -> tuple[int, bool]:
    """Map a BAR0 offset in the doorbell region to (qid, is_cq_doorbell)."""
    index = (offset - DOORBELL_BASE) // 4
    return index // 2, bool(index % 2)


def sq_doorbell_offset(qid: int) -> int:
    return DOORBELL_BASE + (2 * qid) * 4


def cq_doorbell_offset(qid: int) -> int:
    return DOORBELL_BASE + (2 * qid + 1) * 4
