"""Physical Region Page (PRP) construction and resolution.

NVMe describes data buffers with PRP entries (NVMe 1.3 §4.3):

* **PRP1** points at the first page (may start at a page offset);
* for transfers ending within a second page, **PRP2** points at it;
* for longer transfers, PRP2 points at a *PRP list* — a page of 8-byte
  pointers (the last entry chains to the next list page if needed).

Drivers build PRPs; the controller resolves them, fetching list pages
from host memory with non-posted reads (a real extra round trip that
shows up in large-transfer latency).
"""

from __future__ import annotations

import dataclasses

from .constants import PAGE_SIZE


class PrpError(Exception):
    pass


@dataclasses.dataclass(frozen=True)
class PrpDescriptor:
    """What a driver places in the SQE: prp1, prp2 and (optionally) the
    content of PRP list pages it wrote into list memory."""

    prp1: int
    prp2: int
    list_pages: tuple[tuple[int, bytes], ...] = ()


def page_segments(buffer_addr: int, length: int,
                  page_size: int = PAGE_SIZE) -> list[tuple[int, int]]:
    """Split ``[buffer_addr, +length)`` at page boundaries.

    Returns ``(addr, size)`` runs, each confined to one page — the unit
    at which the controller issues DMA.
    """
    if length <= 0:
        raise PrpError("transfer length must be positive")
    segs: list[tuple[int, int]] = []
    addr = buffer_addr
    remaining = length
    while remaining > 0:
        run = min(remaining, page_size - (addr % page_size))
        segs.append((addr, run))
        addr += run
        remaining -= run
    return segs


def build_prps(buffer_addr: int, length: int, list_alloc,
               page_size: int = PAGE_SIZE) -> PrpDescriptor:
    """Build PRP entries for a transfer.

    ``list_alloc(nbytes) -> addr`` is called only when a PRP list is
    needed (transfers spanning 3+ pages); the returned descriptor carries
    the list-page contents for the driver to write into that memory.

    The buffer must be offset-aligned per spec: only PRP1 may carry a
    page offset; subsequent entries must be page-aligned, which is
    guaranteed by splitting at page boundaries.
    """
    segs = page_segments(buffer_addr, length, page_size)
    pointers = [addr for addr, _ in segs]
    if len(pointers) == 1:
        return PrpDescriptor(prp1=pointers[0], prp2=0)
    if len(pointers) == 2:
        return PrpDescriptor(prp1=pointers[0], prp2=pointers[1])

    # PRP list: entries 2..N, chained across pages of 512 pointers.
    entries = pointers[1:]
    per_page = page_size // 8
    pages: list[list[int]] = []
    cursor = 0
    while cursor < len(entries):
        # Reserve the final slot for a chain pointer when more remain.
        take = min(per_page, len(entries) - cursor)
        if len(entries) - cursor > per_page:
            take = per_page - 1
        pages.append(entries[cursor: cursor + take])
        cursor += take

    addrs = [list_alloc(page_size) for _ in pages]
    blobs: list[tuple[int, bytes]] = []
    for i, (page_entries, addr) in enumerate(zip(pages, addrs)):
        buf = bytearray(page_size)
        for j, pointer in enumerate(page_entries):
            buf[j * 8: j * 8 + 8] = pointer.to_bytes(8, "little")
        if i + 1 < len(addrs):
            buf[(per_page - 1) * 8:] = addrs[i + 1].to_bytes(8, "little")
        blobs.append((addr, bytes(buf)))
    return PrpDescriptor(prp1=pointers[0], prp2=addrs[0],
                         list_pages=tuple(blobs))


def resolve_prps(prp1: int, prp2: int, length: int, read_page,
                 page_size: int = PAGE_SIZE):
    """Generator: yield fabric events while resolving PRPs to segments.

    ``read_page(addr) -> generator returning bytes`` performs the DMA
    read of a PRP list page (charged to the controller).  Returns the
    ``(addr, size)`` segments of the data buffer.
    """
    if length <= 0:
        raise PrpError("transfer length must be positive")
    first_run = min(length, page_size - (prp1 % page_size))
    segs = [(prp1, first_run)]
    remaining = length - first_run
    if remaining == 0:
        return segs

    if remaining <= page_size:
        if prp2 == 0:
            raise PrpError("PRP2 required but zero")
        if prp2 % page_size:
            raise PrpError(f"PRP2 not page-aligned: {prp2:#x}")
        segs.append((prp2, remaining))
        return segs

    # Walk the PRP list chain.
    if prp2 == 0:
        raise PrpError("PRP list pointer (PRP2) is zero")
    if prp2 % 8:
        raise PrpError(f"PRP list pointer not qword-aligned: {prp2:#x}")
    per_page = page_size // 8
    list_addr = prp2
    while remaining > 0:
        page = yield from read_page(list_addr)
        pointers = [int.from_bytes(page[i * 8:(i + 1) * 8], "little")
                    for i in range(per_page)]
        # Determine how many data pointers this page holds: if the
        # remaining transfer needs more than (per_page-1) more pages,
        # the last slot is a chain pointer.
        needed = (remaining + page_size - 1) // page_size
        if needed > per_page:
            data_ptrs = pointers[: per_page - 1]
            list_addr = pointers[per_page - 1]
            if list_addr == 0:
                raise PrpError("PRP chain pointer is zero")
        else:
            data_ptrs = pointers[:needed]
            list_addr = 0
        for pointer in data_ptrs:
            if pointer == 0:
                raise PrpError("PRP list entry is zero")
            if pointer % page_size:
                raise PrpError(f"PRP list entry not aligned: {pointer:#x}")
            run = min(remaining, page_size)
            segs.append((pointer, run))
            remaining -= run
            if remaining == 0:
                break
    return segs
