"""Namespace: the logical-block store behind the controller.

Data is held sparsely (dict of 4 KiB extents) so a namespace can present
hundreds of gigabytes while only written regions consume simulator RAM.
Reads of never-written blocks return zeroes, as a freshly formatted
device would.
"""

from __future__ import annotations

from .constants import PAGE_SIZE
from .structs import IdentifyNamespace


class NamespaceError(Exception):
    pass


class Namespace:
    """One NVMe namespace with real (sparse) data contents."""

    EXTENT = PAGE_SIZE

    def __init__(self, nsid: int, capacity_lbas: int,
                 lba_bytes: int = 512) -> None:
        if nsid < 1:
            raise NamespaceError("NSID must be >= 1")
        if lba_bytes & (lba_bytes - 1) or lba_bytes < 512:
            raise NamespaceError("LBA size must be a power of two >= 512")
        self.nsid = nsid
        self.capacity_lbas = capacity_lbas
        self.lba_bytes = lba_bytes
        self._extents: dict[int, bytearray] = {}

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_lbas * self.lba_bytes

    def check_range(self, slba: int, nblocks: int) -> None:
        if nblocks <= 0:
            raise NamespaceError("block count must be positive")
        if slba < 0 or slba + nblocks > self.capacity_lbas:
            raise NamespaceError(
                f"LBA range [{slba}, +{nblocks}) exceeds capacity "
                f"{self.capacity_lbas}")

    # -- byte-level access (LBA*size arithmetic done by the controller) -----

    def read_blocks(self, slba: int, nblocks: int) -> bytes:
        self.check_range(slba, nblocks)
        start = slba * self.lba_bytes
        length = nblocks * self.lba_bytes
        out = bytearray(length)
        for chunk_start, chunk in self._extent_runs(start, length):
            out[chunk_start - start: chunk_start - start + len(chunk)] = chunk
        return bytes(out)

    def write_blocks(self, slba: int, data: bytes) -> None:
        if len(data) % self.lba_bytes:
            raise NamespaceError(
                f"write length {len(data)} not a multiple of LBA size")
        nblocks = len(data) // self.lba_bytes
        self.check_range(slba, nblocks)
        start = slba * self.lba_bytes
        offset = 0
        while offset < len(data):
            pos = start + offset
            extent_index = pos // self.EXTENT
            within = pos % self.EXTENT
            run = min(len(data) - offset, self.EXTENT - within)
            extent = self._extents.get(extent_index)
            if extent is None:
                extent = bytearray(self.EXTENT)
                self._extents[extent_index] = extent
            extent[within: within + run] = data[offset: offset + run]
            offset += run

    def _extent_runs(self, start: int, length: int):
        """Yield (absolute_offset, bytes) for populated regions."""
        first = start // self.EXTENT
        last = (start + length - 1) // self.EXTENT
        for index in range(first, last + 1):
            extent = self._extents.get(index)
            if extent is None:
                continue
            ext_start = index * self.EXTENT
            lo = max(start, ext_start)
            hi = min(start + length, ext_start + self.EXTENT)
            yield lo, bytes(extent[lo - ext_start: hi - ext_start])

    def written_bytes(self) -> int:
        """Bytes of backing store actually materialised."""
        return len(self._extents) * self.EXTENT

    def identify(self) -> IdentifyNamespace:
        return IdentifyNamespace(
            nsze=self.capacity_lbas,
            ncap=self.capacity_lbas,
            nuse=len(self._extents) * self.EXTENT // self.lba_bytes,
            lba_shift=self.lba_bytes.bit_length() - 1,
        )
