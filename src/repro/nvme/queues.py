"""Ring-buffer state for submission and completion queues.

These helpers hold only *indices and metadata* — the entries themselves
always live in (possibly remote) host memory and are moved by fabric DMA,
which is the paper's whole point: "queues are implemented as ring buffers
and can be allocated anywhere in physical memory, entirely at the
discretion of the NVMe controller's driver" (Sec. II).

Both the controller model and the drivers share these index mechanics;
phase-tag handling for CQs follows NVMe 1.3 §4.1.
"""

from __future__ import annotations

import dataclasses

from ..sanitizer.hooks import NULL_SANITIZER
from .constants import CQE_SIZE, SQE_SIZE


class QueueError(Exception):
    pass


@dataclasses.dataclass(slots=True)
class SubmissionQueueState:
    """Driver- or controller-side view of one SQ ring."""

    qid: int
    base_addr: int          # address in the *owner's* address space
    entries: int
    cqid: int = 0
    head: int = 0           # consumer index (controller side)
    tail: int = 0           # producer index (driver side)
    #: ShareSan hook (docs/sanitizer.md); NULL object when off.
    sanitizer: object = dataclasses.field(default=NULL_SANITIZER,
                                          repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.entries < 2:
            raise QueueError("queue must have at least 2 entries")

    @property
    def entry_size(self) -> int:
        return SQE_SIZE

    def slot_addr(self, index: int) -> int:
        if not 0 <= index < self.entries:
            raise QueueError(f"SQ{self.qid}: slot {index} out of range")
        return self.base_addr + index * SQE_SIZE

    def is_full(self) -> bool:
        """Ring full when advancing tail would collide with head."""
        return (self.tail + 1) % self.entries == self.head

    def is_empty(self) -> bool:
        return self.tail == self.head

    def occupancy(self) -> int:
        return (self.tail - self.head) % self.entries

    def advance_tail(self) -> int:
        if self.is_full():
            raise QueueError(f"SQ{self.qid} overflow")
        san = self.sanitizer
        if san.enabled:
            san.on_sq_advance(self)
        slot = self.tail
        self.tail = (self.tail + 1) % self.entries
        return slot

    def advance_head(self) -> int:
        if self.is_empty():
            raise QueueError(f"SQ{self.qid} underflow")
        san = self.sanitizer
        if san.enabled:
            san.on_sq_fetch(self)
        slot = self.head
        self.head = (self.head + 1) % self.entries
        return slot


#: Hard cap on windows per shared SQ — matches the 4 tenant bits carved
#: out of the 16-bit CID space (driver.metadata.MAX_TENANTS).
MAX_SQ_WINDOWS = 16


@dataclasses.dataclass(slots=True)
class SqWindowState:
    """Controller-side view of one tenant's slot window in a *shared* SQ.

    A shared SQ (docs/queue_sharing.md) partitions one ring into fixed
    windows; each window is an independent sub-ring with its own
    producer tail (rung through a tenant-encoded doorbell value) and
    consumer head.  ``start`` is the window's first slot in the parent
    ring; ``head``/``db_tail`` are window-relative.
    """

    index: int              # window (== tenant) index within the SQ
    start: int              # first parent-ring slot of this window
    entries: int
    head: int = 0           # consumer index (controller side)
    db_tail: int = 0        # producer tail from the tenant's doorbell
    ready_at: int = 0       # sim time the head entry became fetchable
    #: ShareSan hook (docs/sanitizer.md); NULL object when off.
    sanitizer: object = dataclasses.field(default=NULL_SANITIZER,
                                          repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.entries < 2:
            raise QueueError("window must have at least 2 entries")

    def is_empty(self) -> bool:
        return self.head == self.db_tail

    def occupancy(self) -> int:
        return (self.db_tail - self.head) % self.entries

    def slot_addr(self, base_addr: int) -> int:
        """Parent-ring address of the current head entry."""
        return base_addr + (self.start + self.head) * SQE_SIZE

    def advance_head(self) -> int:
        if self.is_empty():
            raise QueueError(f"window {self.index} underflow")
        san = self.sanitizer
        if san.enabled:
            san.on_window_fetch(self)
        slot = self.head
        self.head = (self.head + 1) % self.entries
        return slot


@dataclasses.dataclass(slots=True)
class CompletionQueueState:
    """Driver- or controller-side view of one CQ ring.

    The *controller* toggles ``phase`` each ring wrap when producing; the
    *driver* tracks the phase it expects and consumes entries whose phase
    tag matches — no head/tail exchange needed on the fast path.
    """

    qid: int
    base_addr: int
    entries: int
    head: int = 0           # consumer index (driver side)
    tail: int = 0           # producer index (controller side)
    phase: int = 1          # current producer phase tag (starts at 1)
    interrupt_vector: int | None = None
    #: ShareSan hook (docs/sanitizer.md); NULL object when off.
    sanitizer: object = dataclasses.field(default=NULL_SANITIZER,
                                          repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.entries < 2:
            raise QueueError("queue must have at least 2 entries")

    @property
    def entry_size(self) -> int:
        return CQE_SIZE

    def slot_addr(self, index: int) -> int:
        if not 0 <= index < self.entries:
            raise QueueError(f"CQ{self.qid}: slot {index} out of range")
        return self.base_addr + index * CQE_SIZE

    # -- producer (controller) ------------------------------------------------

    def produce_slot(self) -> tuple[int, int]:
        """Claim the next producer slot; returns (index, phase-tag)."""
        san = self.sanitizer
        if san.enabled:
            san.on_cq_produce(self)
        slot = self.tail
        phase = self.phase
        self.tail = (self.tail + 1) % self.entries
        if self.tail == 0:
            self.phase ^= 1
        return slot, phase

    # -- consumer (driver) -------------------------------------------------------

    def consumer_phase(self) -> int:
        """Phase tag a valid entry at the current head must carry."""
        return self.phase

    def consume(self) -> int:
        """Advance the consumer index; returns the consumed slot.

        The driver-side state uses ``phase`` as the *expected* tag; it
        flips when the head wraps.
        """
        san = self.sanitizer
        if san.enabled:
            san.on_cq_consume(self)
        slot = self.head
        self.head = (self.head + 1) % self.entries
        if self.head == 0:
            self.phase ^= 1
        return slot
