"""Binary layouts of NVMe commands, completions and identify data.

Everything round-trips through real little-endian bytes — the controller
*fetches 64-byte SQEs from queue memory over the fabric and decodes them*,
exactly as hardware does, so a driver bug that builds a malformed SQE is
observable the same way it would be on metal.
"""

from __future__ import annotations

import dataclasses
import struct

from .constants import CQE_SIZE, SQE_SIZE

_SQE_PACK = struct.Struct("<I I Q Q Q Q I I I I I I")
assert _SQE_PACK.size == SQE_SIZE


@dataclasses.dataclass(slots=True)
class SubmissionEntry:
    """One 64-byte submission queue entry."""

    opcode: int = 0
    cid: int = 0
    nsid: int = 0
    mptr: int = 0
    prp1: int = 0
    prp2: int = 0
    cdw10: int = 0
    cdw11: int = 0
    cdw12: int = 0
    cdw13: int = 0
    cdw14: int = 0
    cdw15: int = 0
    fuse: int = 0
    psdt: int = 0

    def pack(self) -> bytes:
        if not 0 <= self.cid <= 0xFFFF:
            raise ValueError(f"cid out of range: {self.cid}")
        if not 0 <= self.opcode <= 0xFF:
            raise ValueError(f"opcode out of range: {self.opcode}")
        dw0 = (self.opcode | ((self.fuse & 0x3) << 8)
               | ((self.psdt & 0x3) << 14) | (self.cid << 16))
        return _SQE_PACK.pack(dw0, self.nsid, 0, self.mptr, self.prp1,
                              self.prp2, self.cdw10, self.cdw11, self.cdw12,
                              self.cdw13, self.cdw14, self.cdw15)

    @classmethod
    def unpack(cls, data: bytes) -> "SubmissionEntry":
        if len(data) != SQE_SIZE:
            raise ValueError(f"SQE must be {SQE_SIZE} bytes, got {len(data)}")
        (dw0, nsid, _rsvd, mptr, prp1, prp2, c10, c11, c12, c13, c14,
         c15) = _SQE_PACK.unpack(data)
        return cls(opcode=dw0 & 0xFF, fuse=(dw0 >> 8) & 0x3,
                   psdt=(dw0 >> 14) & 0x3, cid=dw0 >> 16, nsid=nsid,
                   mptr=mptr, prp1=prp1, prp2=prp2, cdw10=c10, cdw11=c11,
                   cdw12=c12, cdw13=c13, cdw14=c14, cdw15=c15)

    # -- I/O command helpers --------------------------------------------------

    @property
    def slba(self) -> int:
        return self.cdw10 | (self.cdw11 << 32)

    @slba.setter
    def slba(self, value: int) -> None:
        self.cdw10 = value & 0xFFFF_FFFF
        self.cdw11 = (value >> 32) & 0xFFFF_FFFF

    @property
    def nlb(self) -> int:
        """Number of logical blocks, 0-based (0 means 1 block)."""
        return self.cdw12 & 0xFFFF

    @nlb.setter
    def nlb(self, value: int) -> None:
        self.cdw12 = (self.cdw12 & ~0xFFFF) | (value & 0xFFFF)


_CQE_PACK = struct.Struct("<I I H H H H")
assert _CQE_PACK.size == CQE_SIZE


@dataclasses.dataclass(slots=True)
class CompletionEntry:
    """One 16-byte completion queue entry."""

    result: int = 0
    sq_head: int = 0
    sq_id: int = 0
    cid: int = 0
    status: int = 0      # combined SCT<<8 | SC (see constants.Status)
    phase: int = 0

    def pack(self) -> bytes:
        sct = (self.status >> 8) & 0x7
        sc = self.status & 0xFF
        dw3_hi = (((sct << 8) | sc) << 1) | (self.phase & 1)
        return _CQE_PACK.pack(self.result, 0, self.sq_head, self.sq_id,
                              self.cid, dw3_hi)

    @classmethod
    def unpack(cls, data: bytes) -> "CompletionEntry":
        if len(data) != CQE_SIZE:
            raise ValueError(f"CQE must be {CQE_SIZE} bytes, got {len(data)}")
        result, _rsvd, sq_head, sq_id, cid, dw3_hi = _CQE_PACK.unpack(data)
        phase = dw3_hi & 1
        code = dw3_hi >> 1
        status = ((code >> 8) & 0x7) << 8 | (code & 0xFF)
        return cls(result=result, sq_head=sq_head, sq_id=sq_id, cid=cid,
                   status=status, phase=phase)

    @property
    def ok(self) -> bool:
        return self.status == 0


# --- identify data ----------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class IdentifyController:
    """Subset of the Identify Controller data structure (CNS=01h)."""

    vid: int = 0x8086
    serial: str = "SIMPCIE000000001"
    model: str = "Simulated Optane P4800X"
    firmware: str = "E2010435"
    #: max data transfer size as a power-of-two multiple of the min page
    mdts: int = 5            # 2^5 * 4KiB = 128 KiB
    #: number of namespaces
    nn: int = 1
    #: submission/completion queue entry sizes (log2), required 6 and 4
    sqes: int = 0x66
    cqes: int = 0x44

    def pack(self) -> bytes:
        buf = bytearray(4096)
        struct.pack_into("<H", buf, 0, self.vid)
        struct.pack_into("<H", buf, 2, self.vid)          # SSVID
        buf[4:24] = self.serial.encode("ascii")[:20].ljust(20)
        buf[24:64] = self.model.encode("ascii")[:40].ljust(40)
        buf[64:72] = self.firmware.encode("ascii")[:8].ljust(8)
        buf[77] = self.mdts
        buf[512] = self.sqes
        buf[513] = self.cqes
        struct.pack_into("<I", buf, 516, self.nn)
        return bytes(buf)

    @classmethod
    def unpack(cls, data: bytes) -> "IdentifyController":
        return cls(
            vid=struct.unpack_from("<H", data, 0)[0],
            serial=data[4:24].decode("ascii").strip(),
            model=data[24:64].decode("ascii").strip(),
            firmware=data[64:72].decode("ascii").strip(),
            mdts=data[77],
            nn=struct.unpack_from("<I", data, 516)[0],
            sqes=data[512],
            cqes=data[513],
        )


@dataclasses.dataclass(frozen=True)
class IdentifyNamespace:
    """Subset of the Identify Namespace data structure (CNS=00h)."""

    nsze: int = 0            # namespace size in LBAs
    ncap: int = 0            # capacity in LBAs
    nuse: int = 0            # utilisation in LBAs
    lba_shift: int = 9       # 2^9 = 512-byte LBAs

    def pack(self) -> bytes:
        buf = bytearray(4096)
        struct.pack_into("<Q", buf, 0, self.nsze)
        struct.pack_into("<Q", buf, 8, self.ncap)
        struct.pack_into("<Q", buf, 16, self.nuse)
        buf[25] = 0           # NLBAF: one format
        buf[26] = 0           # FLBAS: format 0
        # LBA format 0 descriptor at offset 128: LBADS in bits 23:16
        struct.pack_into("<I", buf, 128, self.lba_shift << 16)
        return bytes(buf)

    @classmethod
    def unpack(cls, data: bytes) -> "IdentifyNamespace":
        nsze, ncap, nuse = struct.unpack_from("<QQQ", data, 0)
        lbaf0 = struct.unpack_from("<I", data, 128)[0]
        return cls(nsze=nsze, ncap=ncap, nuse=nuse,
                   lba_shift=(lbaf0 >> 16) & 0xFF)

    @property
    def lba_bytes(self) -> int:
        return 1 << self.lba_shift
