"""NVMe device model: spec-level structures, queues, PRPs, media timing
and the controller state machine."""

from .constants import (AdminOpcode, IoOpcode, Status, DOORBELL_BASE,
                        PAGE_SIZE, SQE_SIZE, CQE_SIZE, IDENTIFY_SIZE)
from .controller import NvmeController
from .media import Media, NandMedia, OptaneMedia, NAND_CONFIG
from .namespace import Namespace, NamespaceError
from .prp import PrpDescriptor, PrpError, build_prps, page_segments, resolve_prps
from .queues import (CompletionQueueState, QueueError, SqWindowState,
                     SubmissionQueueState)
from .registers import (RegisterFile, build_cap, cq_doorbell_offset,
                        doorbell_index, sq_doorbell_offset,
                        MSIX_TABLE_OFFSET, MSIX_ENTRY_SIZE, MSIX_VECTORS)
from .structs import (CompletionEntry, IdentifyController,
                      IdentifyNamespace, SubmissionEntry)

__all__ = [
    "NvmeController",
    "AdminOpcode", "IoOpcode", "Status",
    "DOORBELL_BASE", "PAGE_SIZE", "SQE_SIZE", "CQE_SIZE", "IDENTIFY_SIZE",
    "Media", "OptaneMedia", "NandMedia", "NAND_CONFIG",
    "Namespace", "NamespaceError",
    "PrpDescriptor", "PrpError", "build_prps", "page_segments",
    "resolve_prps",
    "SubmissionQueueState", "CompletionQueueState", "SqWindowState",
    "QueueError",
    "RegisterFile", "build_cap", "doorbell_index", "sq_doorbell_offset",
    "cq_doorbell_offset", "MSIX_TABLE_OFFSET", "MSIX_ENTRY_SIZE",
    "MSIX_VECTORS",
    "SubmissionEntry", "CompletionEntry", "IdentifyController",
    "IdentifyNamespace",
]
