"""NVMe 1.3 constants: register offsets, opcodes, status codes.

Only the subset exercised by the paper's driver is defined, but every
value matches the NVM Express 1.3d specification [1] so the binary
structures produced here would be recognised by a real controller.
"""

from __future__ import annotations

import enum

# --- controller registers (BAR0 offsets) ----------------------------------

REG_CAP = 0x00      # Controller Capabilities (8 bytes)
REG_VS = 0x08       # Version
REG_INTMS = 0x0C    # Interrupt Mask Set
REG_INTMC = 0x10    # Interrupt Mask Clear
REG_CC = 0x14       # Controller Configuration
REG_CSTS = 0x1C     # Controller Status
REG_AQA = 0x24      # Admin Queue Attributes
REG_ASQ = 0x28      # Admin Submission Queue Base (8 bytes)
REG_ACQ = 0x30      # Admin Completion Queue Base (8 bytes)
DOORBELL_BASE = 0x1000

#: NVMe version 1.3 encoded as per the VS register layout.
NVME_VERSION_1_3 = (1 << 16) | (3 << 8)

# CC fields
CC_EN = 1 << 0
CC_SHN_NORMAL = 0b01 << 14
CC_IOSQES_SHIFT = 16
CC_IOCQES_SHIFT = 20
CC_MPS_SHIFT = 7

# CSTS fields
CSTS_RDY = 1 << 0
CSTS_CFS = 1 << 1
CSTS_SHST_COMPLETE = 0b10 << 2

# --- command opcodes -------------------------------------------------------


class AdminOpcode(enum.IntEnum):
    DELETE_IO_SQ = 0x00
    CREATE_IO_SQ = 0x01
    DELETE_IO_CQ = 0x04
    CREATE_IO_CQ = 0x05
    IDENTIFY = 0x06
    ABORT = 0x08
    SET_FEATURES = 0x09
    GET_FEATURES = 0x0A


class IoOpcode(enum.IntEnum):
    FLUSH = 0x00
    WRITE = 0x01
    READ = 0x02
    COMPARE = 0x05
    WRITE_ZEROES = 0x08


# Identify CNS values
CNS_NAMESPACE = 0x00
CNS_CONTROLLER = 0x01
CNS_ACTIVE_NS_LIST = 0x02

# Feature identifiers
FEAT_NUM_QUEUES = 0x07

# --- status codes (Status Code Type 0: generic) -----------------------------


class Status(enum.IntEnum):
    SUCCESS = 0x00
    INVALID_OPCODE = 0x01
    INVALID_FIELD = 0x02
    CID_CONFLICT = 0x03
    DATA_TRANSFER_ERROR = 0x04
    INTERNAL_ERROR = 0x06
    ABORTED_BY_REQUEST = 0x07
    INVALID_QUEUE_ID = 0x01_01      # SCT 1, SC 1 (invalid queue identifier)
    INVALID_QUEUE_SIZE = 0x01_02    # SCT 1, SC 2 (invalid queue size)
    LBA_OUT_OF_RANGE = 0x80
    WRITE_FAULT = 0x02_80           # SCT 2 (media), SC 0x80
    UNRECOVERED_READ_ERROR = 0x02_81  # SCT 2 (media), SC 0x81
    COMPARE_FAILURE = 0x02_85       # SCT 2 (media), SC 0x85


def status_field(status: int, phase: int) -> int:
    """Pack CQE DW3 bits 31:16: status[14:0] << 1 | phase."""
    sct = (status >> 8) & 0x7
    sc = status & 0xFF
    return (((sct << 8) | sc) << 1) | (phase & 1)


def parse_status(dw3_hi: int) -> tuple[int, int]:
    """Inverse of :func:`status_field`: returns (status, phase)."""
    phase = dw3_hi & 1
    code = dw3_hi >> 1
    sct = (code >> 8) & 0x7
    sc = code & 0xFF
    return ((sct << 8) | sc), phase


# --- sizes -------------------------------------------------------------------

SQE_SIZE = 64
CQE_SIZE = 16
PAGE_SIZE = 4096            # CC.MPS = 0
IDENTIFY_SIZE = 4096
