"""The NVMe controller model.

A single-function PCIe endpoint implementing the NVMe 1.3 queue
mechanics the paper's driver relies on:

* BAR0 with control registers, per-queue doorbells and an MSI-X table;
* admin command set (identify, I/O queue create/delete, features);
* NVM command set (read/write/flush) with PRP resolution;
* SQE fetch via non-posted DMA reads from queue memory *wherever that
  memory is* — local DRAM, or across an NTB in another host entirely
  ("any address a controller can use DMA to is a valid queue memory
  location", paper Sec. V);
* CQE posting and data transfers as posted DMA writes, so completion
  latency is one-way while command fetch pays a round trip — the
  asymmetry behind the paper's SQ-placement optimisation (Fig. 8).

The controller never takes shortcuts through Python object graphs: every
byte of every SQE, CQE, PRP list and data block moves through the fabric
with its full latency/bandwidth accounting.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..config import NvmeConfig
from ..pcie.device import Bar, PCIeFunction
from ..pcie.fabric import FabricFaultError
from ..sim import NULL_TRACER, Signal, Simulator
from ..sanitizer.hooks import NULL_SANITIZER
from ..telemetry.hub import NULL_TELEMETRY
from .constants import (CC_EN, CSTS_RDY, CSTS_SHST_COMPLETE, DOORBELL_BASE,
                        PAGE_SIZE, AdminOpcode, IoOpcode, Status,
                        CNS_ACTIVE_NS_LIST, CNS_CONTROLLER, CNS_NAMESPACE,
                        FEAT_NUM_QUEUES,
                        IDENTIFY_SIZE, SQE_SIZE)
from ..qos.arbiter import Arbiter, make_arbiter
from .media import Media, OptaneMedia
from .namespace import Namespace, NamespaceError
from .prp import PrpError, resolve_prps
from .queues import (MAX_SQ_WINDOWS, CompletionQueueState, SqWindowState,
                     SubmissionQueueState)
from .registers import (MSIX_ENTRY_SIZE, MSIX_TABLE_OFFSET, MSIX_VECTORS,
                        RegisterFile, doorbell_index)
from .structs import CompletionEntry, IdentifyController, SubmissionEntry


@dataclasses.dataclass(slots=True)
class _ControllerSq:
    state: SubmissionQueueState
    db_tail: int = 0
    active: bool = True
    signal: Signal | None = None
    #: vendor extension (docs/queue_sharing.md): a *shared* SQ is split
    #: into per-tenant windows, each a sub-ring with its own doorbell
    #: tail; None for a conventional SQ.
    windows: list[SqWindowState] | None = None
    #: QoS fetch arbiter (docs/qos.md); None runs the original
    #: round-robin grant loop.
    arbiter: Arbiter | None = None


@dataclasses.dataclass(slots=True)
class _ControllerCq:
    state: CompletionQueueState
    db_head: int = 0
    interrupts_enabled: bool = False
    vector: int = 0
    active: bool = True


@dataclasses.dataclass(slots=True)
class _MsixEntry:
    addr: int = 0
    data: int = 0
    masked: bool = True


class NvmeController(PCIeFunction):
    """A single-function NVMe controller endpoint."""

    BAR_SIZE = 0x4000

    def __init__(self, sim: Simulator, name: str, config: NvmeConfig,
                 media: Media | None = None, tracer=NULL_TRACER) -> None:
        super().__init__(sim, name)
        self.config = config
        self.tracer = tracer
        self.add_bar(0, self.BAR_SIZE)
        self.regs = RegisterFile(config.max_queue_entries,
                                 config.doorbell_stride)
        self.media = media or OptaneMedia(sim, config.media,
                                          name=f"{name}.media")
        self.namespaces: dict[int, Namespace] = {
            1: Namespace(1, config.media.capacity_lbas,
                         config.media.lba_bytes),
        }
        self._next_nsid = 2
        self.sqs: dict[int, _ControllerSq] = {}
        self.cqs: dict[int, _ControllerCq] = {}
        self.msix: list[_MsixEntry] = [_MsixEntry()
                                       for _ in range(MSIX_VECTORS)]
        #: optional FaultPointRegistry; the controller's point is
        #: ``ctrl:<name>`` (stall / per-command abort injection).
        self.faults = None
        self.fault_point = f"ctrl:{name}"
        self.telemetry = NULL_TELEMETRY
        #: ShareSan hook (docs/sanitizer.md); NULL object when off.
        self.sanitizer = NULL_SANITIZER
        #: optional QosConfig (docs/qos.md); when set and enabled,
        #: shared SQs created afterwards get a fetch arbiter.
        self.qos = None
        #: accounting
        self.commands_completed = 0
        self.fetches = 0
        self.fetch_retries = 0
        self.bad_doorbells = 0

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        # _trace gates the per-I/O emits on the hot path; keep it in sync
        # so attaching a tracer after construction still records events.
        self._tracer = value
        self._trace = value is not NULL_TRACER

    # ------------------------------------------------------------------ MMIO

    def mmio_read(self, bar: Bar, offset: int, length: int) -> bytes:
        if offset >= MSIX_TABLE_OFFSET:
            return self._msix_read(offset, length)
        if offset >= DOORBELL_BASE:
            return bytes(length)  # doorbells are write-only; reads give 0
        return self.regs.read(offset, length)

    def mmio_write(self, bar: Bar, offset: int, data: bytes) -> None:
        if offset >= MSIX_TABLE_OFFSET:
            self._msix_write(offset, data)
            return
        if offset >= DOORBELL_BASE:
            self._doorbell_write(offset, data)
            return
        value = int.from_bytes(data, "little")
        if offset == 0x14:        # CC
            self._write_cc(value)
        elif offset == 0x24:      # AQA
            self.regs.aqa = value
        elif offset == 0x28:      # ASQ (allow 4- or 8-byte writes)
            if len(data) == 8:
                self.regs.asq = value
            else:
                self.regs.asq = (self.regs.asq & ~0xFFFF_FFFF) | value
        elif offset == 0x2C:
            self.regs.asq = ((self.regs.asq & 0xFFFF_FFFF)
                             | (value << 32))
        elif offset == 0x30:      # ACQ
            if len(data) == 8:
                self.regs.acq = value
            else:
                self.regs.acq = (self.regs.acq & ~0xFFFF_FFFF) | value
        elif offset == 0x34:
            self.regs.acq = ((self.regs.acq & 0xFFFF_FFFF)
                             | (value << 32))
        elif offset == 0x0C:      # INTMS
            self.regs.intms |= value
        elif offset == 0x10:      # INTMC
            self.regs.intms &= ~value
        # writes to read-only registers are silently dropped, as on metal

    # -------------------------------------------------------- enable / reset

    def _write_cc(self, value: int) -> None:
        was_enabled = self.regs.enabled
        self.regs.cc = value
        if value & CC_EN and not was_enabled:
            self.sim.process(self._enable())
        elif not (value & CC_EN) and was_enabled:
            self._reset()
        if (value >> 14) & 0x3:   # shutdown notification
            self.regs.csts |= CSTS_SHST_COMPLETE

    def _enable(self) -> t.Generator:
        yield self.sim.timeout(self.config.enable_latency_ns)
        if not self.regs.enabled:
            return  # disabled again while coming up
        # Create the admin queue pair from AQA/ASQ/ACQ.
        acq = _ControllerCq(CompletionQueueState(
            qid=0, base_addr=self.regs.acq,
            entries=self.regs.admin_cq_entries))
        acq.interrupts_enabled = True
        asq = _ControllerSq(SubmissionQueueState(
            qid=0, base_addr=self.regs.asq,
            entries=self.regs.admin_sq_entries, cqid=0))
        asq.signal = Signal(self.sim)
        self.cqs[0] = acq
        self.sqs[0] = asq
        self.regs.csts |= CSTS_RDY
        self.sim.process(self._sq_worker(asq))
        self.tracer.emit("nvme", "enabled", name=self.name)

    def _reset(self) -> None:
        for sq in self.sqs.values():
            sq.active = False
            if sq.signal is not None:
                sq.signal.fire()       # wake workers so they exit
        self.sqs.clear()
        self.cqs.clear()
        self.regs.csts &= ~CSTS_RDY

    def queue_occupancy(self) -> tuple[int, int]:
        """Controller-wide ``(sq_backlog, cq_unacked)`` entry totals —
        commands rung but not yet fetched, and completions posted but
        not yet acknowledged — for the time-series sampler's occupancy
        gauges (pure read, never perturbs the model)."""
        sq_total = sum((sq.db_tail - sq.state.head) % sq.state.entries
                       for sq in self.sqs.values())
        cq_total = sum((cq.state.tail - cq.db_head) % cq.state.entries
                       for cq in self.cqs.values())
        return sq_total, cq_total

    # ------------------------------------------------------------- doorbells

    def _doorbell_write(self, offset: int, data: bytes) -> None:
        qid, is_cq = doorbell_index(offset)
        value = int.from_bytes(data, "little")
        san = self.sanitizer
        if san.enabled:
            san.on_doorbell(self, qid, is_cq, value)
        if is_cq:
            cq = self.cqs.get(qid)
            if cq is None or not cq.active:
                self.bad_doorbells += 1
                return
            cq.db_head = value
        else:
            sq = self.sqs.get(qid)
            if sq is None or not sq.active:
                self.bad_doorbells += 1
                return
            if sq.windows is not None:
                # Shared SQ: the doorbell value encodes the tenant's
                # window index in the high half and the new window-
                # relative tail in the low half.
                widx, wtail = value >> 16, value & 0xFFFF
                if widx >= len(sq.windows):
                    self.bad_doorbells += 1
                    return
                win = sq.windows[widx]
                if wtail >= win.entries:
                    self.bad_doorbells += 1
                    return
                if win.is_empty() and wtail != win.db_tail:
                    win.ready_at = self.sim.now
                arb = sq.arbiter
                if arb is not None and wtail != win.db_tail:
                    arb.on_doorbell(
                        win, (wtail - win.db_tail) % win.entries,
                        self.sim.now)
                win.db_tail = wtail
            elif value >= sq.state.entries:
                self.bad_doorbells += 1
                return
            else:
                sq.db_tail = value
            assert sq.signal is not None
            sq.signal.fire()
        if self._trace:
            self.tracer.emit("nvme", "doorbell", qid=qid, cq=is_cq,
                             value=value)

    # ------------------------------------------------------------ MSI-X table

    def _msix_read(self, offset: int, length: int) -> bytes:
        rel = offset - MSIX_TABLE_OFFSET
        vector, field = divmod(rel, MSIX_ENTRY_SIZE)
        if vector >= MSIX_VECTORS:
            return bytes(length)
        entry = self.msix[vector]
        raw = (entry.addr.to_bytes(8, "little")
               + entry.data.to_bytes(4, "little")
               + (1 if entry.masked else 0).to_bytes(4, "little"))
        return raw[field: field + length]

    def _msix_write(self, offset: int, data: bytes) -> None:
        rel = offset - MSIX_TABLE_OFFSET
        vector, field = divmod(rel, MSIX_ENTRY_SIZE)
        if vector >= MSIX_VECTORS:
            return
        entry = self.msix[vector]
        raw = bytearray(entry.addr.to_bytes(8, "little")
                        + entry.data.to_bytes(4, "little")
                        + (1 if entry.masked else 0).to_bytes(4, "little"))
        raw[field: field + len(data)] = data
        entry.addr = int.from_bytes(raw[0:8], "little")
        entry.data = int.from_bytes(raw[8:12], "little")
        entry.masked = bool(int.from_bytes(raw[12:16], "little") & 1)

    # ----------------------------------------------------------- SQ workers

    def _sq_worker(self, sq: _ControllerSq) -> t.Generator:
        """Fetch-and-dispatch loop for one submission queue."""
        # hot-path
        cfg = self.config
        sim = self.sim
        state = sq.state
        unpack = SubmissionEntry.unpack
        decode_ns = cfg.command_decode_ns
        is_admin = state.qid == 0
        assert sq.signal is not None
        while sq.active:
            if self.faults is not None:
                yield from self.faults.stall_barrier(self.fault_point)
                if not sq.active:
                    return
            if state.head == sq.db_tail:
                yield sq.signal.wait()
                if not sq.active:
                    return
                # Doorbell processing / arbitration cost, paid per wakeup.
                yield sim.sleep(cfg.doorbell_to_fetch_ns)
                continue
            slot = state.head
            try:
                raw = yield from self.dma_read(state.slot_addr(slot),
                                               SQE_SIZE)
            except FabricFaultError:
                # Fetch lost in the fabric: head is not advanced, so the
                # controller re-fetches the same slot after a pause —
                # hardware keeps retrying until reset.
                self.fetch_retries += 1
                yield sim.sleep(cfg.doorbell_to_fetch_ns)
                continue
            state.head = (state.head + 1) % state.entries
            self.fetches += 1
            sqe = unpack(raw)
            yield sim.sleep(decode_ns)
            self._span_mark(sq, sqe, "fetched")
            if self._trace:
                self.tracer.emit("nvme", "fetched", qid=state.qid,
                                 opcode=sqe.opcode, cid=sqe.cid)
            if is_admin:
                sim.process(self._execute_admin(sq, sqe))
            else:
                sim.process(self._execute_io(sq, sqe))

    def _shared_sq_worker(self, sq: _ControllerSq) -> t.Generator:
        """Fetch-and-dispatch loop for a *shared* (windowed) SQ.

        Round-robin arbitration across tenant windows: each grant
        services exactly one SQE from the next non-empty window after
        the previous winner, so no tenant can starve a neighbour no
        matter how deep its backlog (docs/queue_sharing.md).
        """
        # hot-path
        cfg = self.config
        sim = self.sim
        state = sq.state
        windows = sq.windows
        unpack = SubmissionEntry.unpack
        decode_ns = cfg.command_decode_ns
        assert sq.signal is not None and windows is not None
        arb = sq.arbiter
        nwin = len(windows)
        rr = 0
        while sq.active:
            if self.faults is not None:
                yield from self.faults.stall_barrier(self.fault_point)
                if not sq.active:
                    return
            win = None
            if arb is None:
                for off in range(nwin):
                    cand = windows[(rr + off) % nwin]
                    if not cand.is_empty():
                        win = cand
                        rr = (rr + off + 1) % nwin
                        break
            else:
                win = arb.select(windows)
            if win is None:
                yield sq.signal.wait()
                if not sq.active:
                    return
                yield sim.sleep(cfg.doorbell_to_fetch_ns)
                continue
            granted_at = sim.now
            try:
                raw = yield from self.dma_read(win.slot_addr(state.base_addr),
                                               SQE_SIZE)
            except FabricFaultError:
                # Same retry discipline as the private path: the window
                # head is not advanced, so the same slot is re-fetched.
                self.fetch_retries += 1
                if arb is not None:
                    arb.refund(win)
                yield sim.sleep(cfg.doorbell_to_fetch_ns)
                continue
            win.advance_head()
            if arb is not None:
                arb.on_fetch(win)
            wait_ns = granted_at - win.ready_at
            # The next entry (if any) has been waiting since this grant.
            win.ready_at = granted_at
            self.fetches += 1
            sqe = unpack(raw)
            yield sim.sleep(decode_ns)
            tele = self.telemetry
            if tele.enabled:
                tele.metrics.observe(
                    "repro_nvme_arb_wait_ns", wait_ns,
                    help="time an SQE head waited for shared-SQ "
                    "arbitration before its fetch was granted",
                    ctrl=self.name, qid=state.qid)
                tele.spans.mark_cmd(state.qid, sqe.cid, "arb-granted",
                                    granted_at)
            self._span_mark(sq, sqe, "fetched")
            if self._trace:
                self.tracer.emit("nvme", "fetched", qid=state.qid,
                                 opcode=sqe.opcode, cid=sqe.cid,
                                 window=win.index)
            sim.process(self._execute_io(sq, sqe, win=win))

    # --------------------------------------------------------------- admin

    def _execute_admin(self, sq: _ControllerSq, sqe: SubmissionEntry):
        yield self.sim.timeout(self.config.admin_command_ns)
        status, result = Status.SUCCESS, 0
        try:
            opcode = AdminOpcode(sqe.opcode)
        except ValueError:
            yield from self._complete(sq, sqe, Status.INVALID_OPCODE, 0)
            return

        if opcode == AdminOpcode.IDENTIFY:
            status, result = yield from self._admin_identify(sqe)
        elif opcode == AdminOpcode.CREATE_IO_CQ:
            status = self._admin_create_cq(sqe)
        elif opcode == AdminOpcode.CREATE_IO_SQ:
            status = self._admin_create_sq(sqe)
        elif opcode == AdminOpcode.DELETE_IO_SQ:
            status = self._admin_delete_sq(sqe)
        elif opcode == AdminOpcode.DELETE_IO_CQ:
            status = self._admin_delete_cq(sqe)
        elif opcode in (AdminOpcode.SET_FEATURES, AdminOpcode.GET_FEATURES):
            status, result = self._admin_features(sqe)
        else:
            status = Status.INVALID_OPCODE
        yield from self._complete(sq, sqe, status, result)

    def add_namespace(self, capacity_lbas: int,
                      lba_bytes: int = 512) -> int:
        """Attach another namespace (setup-time, like a format/attach).

        Namespaces share the same media (channels and bandwidth), as on
        a real multi-namespace drive.
        """
        nsid = self._next_nsid
        self._next_nsid += 1
        self.namespaces[nsid] = Namespace(nsid, capacity_lbas, lba_bytes)
        return nsid

    def _admin_identify(self, sqe: SubmissionEntry):
        cns = sqe.cdw10 & 0xFF
        if cns == CNS_CONTROLLER:
            ident = IdentifyController(nn=len(self.namespaces))
            payload = ident.pack()
        elif cns == CNS_NAMESPACE:
            ns = self.namespaces.get(sqe.nsid)
            if ns is None:
                return Status.INVALID_FIELD, 0
            payload = ns.identify().pack()
        elif cns == CNS_ACTIVE_NS_LIST:
            # 1024 x u32 NSIDs greater than CDW1.NSID, ascending.
            buf = bytearray(IDENTIFY_SIZE)
            ids = sorted(n for n in self.namespaces if n > sqe.nsid)
            for i, nsid in enumerate(ids[:1024]):
                buf[i * 4:(i + 1) * 4] = nsid.to_bytes(4, "little")
            payload = bytes(buf)
        else:
            return Status.INVALID_FIELD, 0
        if sqe.prp1 == 0 or sqe.prp1 % PAGE_SIZE:
            return Status.INVALID_FIELD, 0
        assert len(payload) == IDENTIFY_SIZE
        yield from self.fabric_write_wait(sqe.prp1, payload)
        return Status.SUCCESS, 0

    def _admin_create_cq(self, sqe: SubmissionEntry) -> int:
        qid = sqe.cdw10 & 0xFFFF
        entries = ((sqe.cdw10 >> 16) & 0xFFFF) + 1
        contiguous = sqe.cdw11 & 1
        interrupts = bool(sqe.cdw11 & 2)
        vector = (sqe.cdw11 >> 16) & 0xFFFF
        if not contiguous or sqe.prp1 == 0:
            return Status.INVALID_FIELD
        if not 1 <= qid < self.config.max_queue_pairs or qid in self.cqs:
            return Status.INVALID_QUEUE_ID
        if not 2 <= entries <= self.config.max_queue_entries:
            return Status.INVALID_QUEUE_SIZE
        cq = _ControllerCq(CompletionQueueState(qid=qid, base_addr=sqe.prp1,
                                                entries=entries))
        cq.interrupts_enabled = interrupts
        cq.vector = vector
        self.cqs[qid] = cq
        san = self.sanitizer
        if san.enabled:
            san.on_queue_created(self, "cq", cq.state)
        return Status.SUCCESS

    def _admin_create_sq(self, sqe: SubmissionEntry) -> int:
        qid = sqe.cdw10 & 0xFFFF
        entries = ((sqe.cdw10 >> 16) & 0xFFFF) + 1
        contiguous = sqe.cdw11 & 1
        shared = bool(sqe.cdw11 & 8)   # vendor ext: windowed shared SQ
        cqid = (sqe.cdw11 >> 16) & 0xFFFF
        if not contiguous or sqe.prp1 == 0:
            return Status.INVALID_FIELD
        if not 1 <= qid < self.config.max_queue_pairs or qid in self.sqs:
            return Status.INVALID_QUEUE_ID
        if cqid not in self.cqs:
            return Status.INVALID_QUEUE_ID
        if not 2 <= entries <= self.config.max_queue_entries:
            return Status.INVALID_QUEUE_SIZE
        sq = _ControllerSq(SubmissionQueueState(
            qid=qid, base_addr=sqe.prp1, entries=entries, cqid=cqid))
        sq.signal = Signal(self.sim)
        if shared:
            win_entries = sqe.cdw12 & 0xFFFF
            if (win_entries < 2 or entries % win_entries
                    or entries // win_entries > MAX_SQ_WINDOWS):
                return Status.INVALID_FIELD
            sq.windows = [SqWindowState(index=i, start=i * win_entries,
                                        entries=win_entries)
                          for i in range(entries // win_entries)]
            qos = self.qos
            if qos is not None and qos.enabled:
                sq.arbiter = make_arbiter(qos, len(sq.windows))
        self.sqs[qid] = sq
        san = self.sanitizer
        if san.enabled:
            san.on_queue_created(self, "sq", sq.state, shared=shared,
                                 windows=sq.windows)
        if shared:
            self.sim.process(self._shared_sq_worker(sq))
        else:
            self.sim.process(self._sq_worker(sq))
        return Status.SUCCESS

    def _admin_delete_sq(self, sqe: SubmissionEntry) -> int:
        qid = sqe.cdw10 & 0xFFFF
        sq = self.sqs.get(qid)
        if qid == 0 or sq is None:
            return Status.INVALID_QUEUE_ID
        sq.active = False
        assert sq.signal is not None
        sq.signal.fire()
        del self.sqs[qid]
        return Status.SUCCESS

    def _admin_delete_cq(self, sqe: SubmissionEntry) -> int:
        qid = sqe.cdw10 & 0xFFFF
        if qid == 0 or qid not in self.cqs:
            return Status.INVALID_QUEUE_ID
        # Spec: all SQs using the CQ must be deleted first.
        if any(sq.state.cqid == qid for sq in self.sqs.values()):
            return Status.INVALID_QUEUE_ID
        del self.cqs[qid]
        return Status.SUCCESS

    def _admin_features(self, sqe: SubmissionEntry) -> tuple[int, int]:
        fid = sqe.cdw10 & 0xFF
        if fid == FEAT_NUM_QUEUES:
            n = self.config.max_queue_pairs - 1   # I/O queues available
            return Status.SUCCESS, ((n - 1) << 16) | (n - 1)
        return Status.INVALID_FIELD, 0

    # ------------------------------------------------------------------- I/O

    def _execute_io(self, sq: _ControllerSq, sqe: SubmissionEntry,
                    win: SqWindowState | None = None):
        if self.faults is not None and self.faults.command_aborted(
                self.sim.rng, self.fault_point):
            yield from self._complete(sq, sqe, Status.ABORTED_BY_REQUEST, 0,
                                      win=win)
            return
        try:
            opcode = IoOpcode(sqe.opcode)
        except ValueError:
            yield from self._complete(sq, sqe, Status.INVALID_OPCODE, 0,
                                      win=win)
            return
        ns = self.namespaces.get(sqe.nsid)
        if ns is None:
            yield from self._complete(sq, sqe, Status.INVALID_FIELD, 0,
                                      win=win)
            return

        if opcode == IoOpcode.FLUSH:
            yield from self._media_access("flush", 0, sq, sqe)
            yield from self._complete(sq, sqe, Status.SUCCESS, 0, win=win)
            return

        nblocks = sqe.nlb + 1
        nbytes = nblocks * ns.lba_bytes
        try:
            ns.check_range(sqe.slba, nblocks)
        except NamespaceError:
            yield from self._complete(sq, sqe, Status.LBA_OUT_OF_RANGE, 0,
                                      win=win)
            return

        if opcode == IoOpcode.WRITE_ZEROES:
            # No data transfer: the controller zeroes the range itself.
            ok = yield from self._media_access("write", nbytes, sq, sqe)
            if not ok:
                yield from self._complete(sq, sqe, Status.WRITE_FAULT, 0,
                                          win=win)
                return
            ns.write_blocks(sqe.slba, bytes(nbytes))
            yield from self._complete(sq, sqe, Status.SUCCESS, 0, win=win)
            return

        try:
            segs = yield from resolve_prps(sqe.prp1, sqe.prp2, nbytes,
                                           self._read_prp_page)
        except PrpError:
            yield from self._complete(sq, sqe, Status.INVALID_FIELD, 0,
                                      win=win)
            return
        except FabricFaultError:
            yield from self._complete(sq, sqe, Status.DATA_TRANSFER_ERROR, 0,
                                      win=win)
            return

        if opcode == IoOpcode.READ:
            # Media access, then DMA the data out to the host buffers.
            ok = yield from self._media_access("read", nbytes, sq, sqe)
            if not ok:
                yield from self._complete(sq, sqe,
                                          Status.UNRECOVERED_READ_ERROR, 0,
                                          win=win)
                return
            data = ns.read_blocks(sqe.slba, nblocks)
            offset = 0
            for addr, size in segs:
                # Posted writes: the clamp guarantees the subsequent CQE
                # cannot overtake the data on the same flow.
                self.fabric.post_write(self.node, self.host, addr,
                                       data[offset: offset + size])
                offset += size
            yield from self._complete(sq, sqe, Status.SUCCESS, 0, win=win)
        elif opcode == IoOpcode.COMPARE:
            # Fetch the host's reference data, read the medium, compare.
            parts = []
            try:
                for addr, size in segs:
                    part = yield from self.dma_read(addr, size)
                    parts.append(part)
            except FabricFaultError:
                yield from self._complete(sq, sqe,
                                          Status.DATA_TRANSFER_ERROR, 0,
                                          win=win)
                return
            ok = yield from self._media_access("read", nbytes, sq, sqe)
            if not ok:
                yield from self._complete(sq, sqe,
                                          Status.UNRECOVERED_READ_ERROR, 0,
                                          win=win)
                return
            stored = ns.read_blocks(sqe.slba, nblocks)
            status = (Status.SUCCESS if b"".join(parts) == stored
                      else Status.COMPARE_FAILURE)
            yield from self._complete(sq, sqe, status, 0, win=win)
        else:  # WRITE
            # Fetch data from host buffers (non-posted reads), then media.
            parts = []
            try:
                for addr, size in segs:
                    part = yield from self.dma_read(addr, size)
                    parts.append(part)
            except FabricFaultError:
                yield from self._complete(sq, sqe,
                                          Status.DATA_TRANSFER_ERROR, 0,
                                          win=win)
                return
            ok = yield from self._media_access("write", nbytes, sq, sqe)
            if not ok:
                yield from self._complete(sq, sqe, Status.WRITE_FAULT, 0,
                                          win=win)
                return
            ns.write_blocks(sqe.slba, b"".join(parts))
            yield from self._complete(sq, sqe, Status.SUCCESS, 0, win=win)

    def _read_prp_page(self, addr: int):
        data = yield from self.dma_read(addr, PAGE_SIZE)
        return data

    # ------------------------------------------------------------ completion

    def _complete(self, sq: _ControllerSq, sqe: SubmissionEntry,
                  status: int, result: int,
                  win: SqWindowState | None = None):
        # hot-path
        cq = self.cqs.get(sq.state.cqid)
        if cq is None or not cq.active:
            return  # queue torn down under us; drop, as hardware would
        yield self.sim.sleep(self.config.completion_overhead_ns)
        slot, phase = cq.state.produce_slot()
        # On a shared SQ the head reported back is *window-relative*, so
        # each tenant reclaims only its own sub-ring's slots.
        sq_head = sq.state.head if win is None else win.head
        cqe = CompletionEntry(result=result, sq_head=sq_head,
                              sq_id=sq.state.qid, cid=sqe.cid,
                              status=int(status), phase=phase)
        # CQE write is posted; we wait for delivery only to order the
        # interrupt behind it (hardware achieves the same via PCIe
        # ordering rules; the fabric clamp plus this wait are equivalent).
        yield from self.fabric.write(self.node, self.host,
                                     cq.state.slot_addr(slot), cqe.pack())
        self._span_mark(sq, sqe, "cqe-delivered")
        self.commands_completed += 1
        if self._trace:
            self.tracer.emit("nvme", "completed", qid=sq.state.qid,
                             cid=sqe.cid, status=int(status))
        if cq.interrupts_enabled and not self.regs.intms & (1 << cq.vector):
            entry = self.msix[cq.vector]
            if not entry.masked and entry.addr:
                yield self.sim.timeout(
                    self.config.interrupt_generation_ns)
                self.fabric.post_write(
                    self.node, self.host, entry.addr,
                    entry.data.to_bytes(4, "little"))

    # -------------------------------------------------------------- helpers

    def _span_mark(self, sq: _ControllerSq, sqe: SubmissionEntry,
                   boundary: str) -> None:
        """Stamp a telemetry span boundary for the command, if a client
        bound one (admin commands and retired cids are silent misses)."""
        tele = self.telemetry
        if tele.enabled:
            tele.spans.mark_cmd(sq.state.qid, sqe.cid, boundary,
                                self.sim.now)

    def _media_access(self, kind: str, nbytes: int, sq: _ControllerSq,
                      sqe: SubmissionEntry):
        """Media access plus the ``media-done`` span boundary."""
        ok = yield from self.media.access(kind, nbytes)
        self._span_mark(sq, sqe, "media-done")
        return ok

    def fabric_write_wait(self, addr: int, data: bytes):
        """Posted write, but the caller waits for delivery (ordering)."""
        yield from self.fabric.write(self.node, self.host, addr, data)

    @property
    def io_queue_count(self) -> int:
        return sum(1 for qid in self.sqs if qid != 0)
