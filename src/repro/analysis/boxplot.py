"""ASCII rendering of latency boxplots (the shape of the paper's Fig. 10).

Whiskers span *minimum to the 99th percentile*, matching the paper's
convention; the box spans Q1..Q3 with the median marked.
"""

from __future__ import annotations

import typing as t

from ..sim import BoxplotStats


def render_boxplots(stats: t.Sequence[BoxplotStats], width: int = 72,
                    unit: str = "us") -> str:
    """Render a set of boxplots on a shared horizontal microsecond axis."""
    if not stats:
        raise ValueError("no stats to render")
    divisor = 1000.0 if unit == "us" else 1.0
    lo = min(s.minimum for s in stats) / divisor
    hi = max(s.p99 for s in stats) / divisor
    span = max(hi - lo, 1e-9)
    # pad 5% each side
    lo -= span * 0.05
    hi += span * 0.05
    span = hi - lo

    label_width = max(len(s.name) for s in stats) + 2
    plot_width = max(20, width - label_width)

    def col(value_ns: float) -> int:
        v = value_ns / divisor
        c = int((v - lo) / span * (plot_width - 1))
        return min(max(c, 0), plot_width - 1)

    lines = []
    for s in stats:
        row = [" "] * plot_width
        c_min, c_q1 = col(s.minimum), col(s.q1)
        c_med, c_q3, c_p99 = col(s.median), col(s.q3), col(s.p99)
        for c in range(c_min, c_q1):
            row[c] = "-"
        for c in range(c_q1, c_q3 + 1):
            row[c] = "="
        for c in range(c_q3 + 1, c_p99 + 1):
            row[c] = "-"
        row[c_min] = "|"
        row[c_p99] = "|"
        row[c_med] = "#"
        lines.append(f"{s.name:>{label_width - 2}}  {''.join(row)}")

    # axis
    axis = [" "] * plot_width
    ticks = 5
    tick_labels = []
    for i in range(ticks):
        c = int(i * (plot_width - 1) / (ticks - 1))
        axis[c] = "+"
        tick_labels.append((c, f"{lo + span * i / (ticks - 1):.1f}"))
    label_row = [" "] * (plot_width + 8)
    for c, text in tick_labels:
        for j, ch in enumerate(text):
            if c + j < len(label_row):
                label_row[c + j] = ch
    lines.append(f"{'':>{label_width - 2}}  {''.join(axis)}")
    lines.append(f"{'':>{label_width - 2}}  {''.join(label_row).rstrip()}"
                 f" ({unit})")
    lines.append(f"{'':>{label_width - 2}}  legend: |min  ==Q1..Q3  "
                 f"#median  p99|")
    return "\n".join(lines)
