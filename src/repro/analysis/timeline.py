"""Per-I/O timeline rendering from trace records.

Turns a :class:`~repro.sim.trace.Tracer` capture into a readable swim-
lane timeline — the tool behind ``docs/io_walkthrough.md`` and the
``traced_io`` example.  Purely presentational; no simulation state.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..sim.trace import TraceRecord
from ..units import fmt_ns


@dataclasses.dataclass(frozen=True)
class TimelineEvent:
    time_ns: int
    lane: str
    label: str


def events_from_trace(records: t.Sequence[TraceRecord],
                      qid: int | None = None) -> list[TimelineEvent]:
    """Project NVMe/PCIe trace records onto timeline events."""
    lanes = {
        "doorbell": ("controller", "doorbell value={value}"),
        "fetched": ("controller", "SQE fetched (op={opcode:#x} "
                                  "cid={cid})"),
        "completed": ("controller", "CQE posted (cid={cid} "
                                    "status={status:#x})"),
        "enabled": ("controller", "controller ready"),
        "write-delivered": ("fabric", "write delivered ({size}B, "
                                      "{crossings} NTB crossings)"),
        "read-complete": ("fabric", "read complete ({size}B)"),
    }
    out: list[TimelineEvent] = []
    for record in records:
        mapping = lanes.get(record.message)
        if mapping is None:
            continue
        if qid is not None and record.payload.get("qid") not in (None,
                                                                 qid):
            continue
        lane, template = mapping
        try:
            label = template.format(**record.payload)
        except (KeyError, IndexError):
            label = record.message
        out.append(TimelineEvent(record.time_ns, lane, label))
    out.sort(key=lambda e: e.time_ns)
    return out


def render_timeline(events: t.Sequence[TimelineEvent],
                    origin_ns: int | None = None,
                    max_events: int = 60) -> str:
    """Render events as an aligned, time-relative listing."""
    if not events:
        return "(no events)"
    origin = origin_ns if origin_ns is not None else events[0].time_ns
    lanes = sorted({e.lane for e in events})
    lane_width = max(len(lane) for lane in lanes) + 2
    lines = [f"t=0 at {fmt_ns(origin)} absolute"]
    shown = list(events)[:max_events]
    for event in shown:
        rel = event.time_ns - origin
        lines.append(f"  +{rel / 1000.0:9.3f}us  "
                     f"{event.lane:<{lane_width}} {event.label}")
    if len(events) > max_events:
        lines.append(f"  ... {len(events) - max_events} more events")
    return "\n".join(lines)
