"""Result analysis: boxplot rendering and comparison tables."""

from .boxplot import render_boxplots
from .report import (Fig10Report, PAPER_CLAIMS, PaperClaim, format_table)
from .timeline import TimelineEvent, events_from_trace, render_timeline

__all__ = ["render_boxplots", "Fig10Report", "PaperClaim",
           "PAPER_CLAIMS", "format_table",
           "TimelineEvent", "events_from_trace", "render_timeline"]
