"""Tabular reporting helpers for benchmark output.

``format_table`` prints aligned columns; ``Fig10Report`` assembles the
paper's headline comparison (four scenarios x read/write with min-latency
deltas) and checks it against the paper's published numbers.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..sim import BoxplotStats
from ..units import ns_to_us


def format_table(headers: t.Sequence[str],
                 rows: t.Sequence[t.Sequence[t.Any]],
                 title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + \
            [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    out = []
    if title:
        out.append(title)
    sep = "-+-".join("-" * w for w in widths)
    out.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    out.append(sep)
    for row in cells[1:]:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


@dataclasses.dataclass(frozen=True)
class PaperClaim:
    """A numeric claim from the paper with an acceptance band."""

    name: str
    paper_value_us: float
    lo_us: float
    hi_us: float

    def check(self, measured_us: float) -> bool:
        return self.lo_us <= measured_us <= self.hi_us


#: Section VI text: minimum-latency deltas for 4 KiB QD1.
PAPER_CLAIMS = {
    "nvmeof-read-delta": PaperClaim("NVMe-oF vs local, read", 7.7,
                                    6.0, 9.5),
    "nvmeof-write-delta": PaperClaim("NVMe-oF vs local, write", 7.5,
                                     6.0, 9.5),
    "ours-read-delta": PaperClaim("ours remote vs local, read", 1.0,
                                  0.6, 1.7),
    "ours-write-delta": PaperClaim("ours remote vs local, write", 2.0,
                                   1.4, 2.7),
}


@dataclasses.dataclass
class Fig10Report:
    """The four-scenario latency comparison of Fig. 10."""

    read_stats: dict[str, BoxplotStats]
    write_stats: dict[str, BoxplotStats]

    def deltas_us(self) -> dict[str, float]:
        """Min-latency deltas the paper quotes in its text."""
        r, w = self.read_stats, self.write_stats
        return {
            "nvmeof-read-delta": ns_to_us(r["nvmeof-remote"].minimum
                                          - r["local-linux"].minimum),
            "nvmeof-write-delta": ns_to_us(w["nvmeof-remote"].minimum
                                           - w["local-linux"].minimum),
            "ours-read-delta": ns_to_us(r["ours-remote"].minimum
                                        - r["ours-local"].minimum),
            "ours-write-delta": ns_to_us(w["ours-remote"].minimum
                                         - w["ours-local"].minimum),
        }

    def check_claims(self) -> dict[str, bool]:
        deltas = self.deltas_us()
        return {key: PAPER_CLAIMS[key].check(value)
                for key, value in deltas.items()}

    def shape_ok(self) -> bool:
        """The orderings the paper's argument rests on."""
        deltas = self.deltas_us()
        r, w = self.read_stats, self.write_stats
        return (
            # network cost: NVMe-oF delta dwarfs the NTB delta
            deltas["nvmeof-read-delta"] > 3 * deltas["ours-read-delta"]
            and deltas["nvmeof-write-delta"] > 2 * deltas["ours-write-delta"]
            # the naive driver has a higher local baseline than stock
            and r["ours-local"].minimum > r["local-linux"].minimum
            and w["ours-local"].minimum > w["local-linux"].minimum
            # remote NVMe-oF is the slowest configuration
            and r["nvmeof-remote"].minimum > r["ours-remote"].minimum
            and w["nvmeof-remote"].minimum > w["ours-remote"].minimum
        )

    def to_table(self) -> str:
        rows = []
        for name in ("local-linux", "nvmeof-remote", "ours-local",
                     "ours-remote"):
            for op, stats in (("read", self.read_stats),
                              ("write", self.write_stats)):
                s = stats[name]
                u = s.as_us()
                rows.append([name, op, s.count,
                             f"{u['min']:.2f}", f"{u['q1']:.2f}",
                             f"{u['median']:.2f}", f"{u['q3']:.2f}",
                             f"{u['p99']:.2f}", f"{u['max']:.2f}"])
        return format_table(
            ["scenario", "op", "n", "min", "q1", "median", "q3", "p99",
             "max"],
            rows, title="Fig. 10: I/O command completion latency (us)")

    def delta_table(self) -> str:
        deltas = self.deltas_us()
        checks = self.check_claims()
        rows = []
        for key, value in deltas.items():
            claim = PAPER_CLAIMS[key]
            rows.append([claim.name, f"{claim.paper_value_us:.1f}",
                         f"{value:.2f}",
                         "PASS" if checks[key] else "FAIL"])
        return format_table(
            ["minimum-latency delta", "paper (us)", "measured (us)",
             "band"],
            rows, title="Sec. VI text: minimum-latency deltas")
