"""Command-line interface.

Examples::

    python -m repro list
    python -m repro run --scenario ours-remote --rw randread --bs 4k \
        --iodepth 1 --ios 2000
    python -m repro fig10 --ios 800
    python -m repro multihost --clients 8 --iodepth 4 --ios 300
"""

from __future__ import annotations

import argparse
import sys
import typing as t

from .analysis import Fig10Report, format_table, render_boxplots
from .scenarios import (FIG10_SCENARIOS, build_fig10_scenario, cluster,
                        multihost)
from .sim import BoxplotStats
from .units import parse_size
from .workloads import FioJob, run_fio, run_fio_many


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        ["local-linux", "stock Linux driver, local NVMe (Fig. 9a)"],
        ["nvmeof-remote", "kernel initiator -> RDMA -> SPDK target"],
        ["ours-local", "distributed driver, client in the device host"],
        ["ours-remote", "distributed driver, client across the NTB"],
    ]
    print(format_table(["scenario", "description"], rows,
                       title="Available scenarios"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = build_fig10_scenario(args.scenario, seed=args.seed)
    job = FioJob(name="cli", rw=args.rw, bs=parse_size(args.bs),
                 iodepth=args.iodepth, total_ios=args.ios,
                 ramp_ios=min(args.ios // 10, 100))
    print(f"running {args.rw} bs={args.bs} iodepth={args.iodepth} "
          f"ios={args.ios} on {args.scenario} ...")
    result = run_fio(scenario.device, job)
    print(f"  {result.ios} I/Os, {result.iops / 1e3:.1f} kIOPS, "
          f"{result.bandwidth_bytes_per_s / 1e9:.2f} GB/s, "
          f"{result.errors} errors")
    for rec in (result.read_latencies, result.write_latencies):
        if len(rec):
            print(f"  {rec.summary()}")
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    reads: dict[str, BoxplotStats] = {}
    writes: dict[str, BoxplotStats] = {}
    for i, name in enumerate(FIG10_SCENARIOS):
        for op, store in (("randread", reads), ("randwrite", writes)):
            print(f"  {name} {op} ...", file=sys.stderr)
            scenario = build_fig10_scenario(name, seed=args.seed + i)
            result = run_fio(scenario.device,
                             FioJob(rw=op, bs=4096, iodepth=1,
                                    total_ios=args.ios,
                                    ramp_ios=min(args.ios // 10, 100)))
            rec = (result.read_latencies if op == "randread"
                   else result.write_latencies)
            store[name] = BoxplotStats.from_values(rec.values(),
                                                   name=name)
    report = Fig10Report(reads, writes)
    print(report.to_table())
    print("\nREAD:")
    print(render_boxplots([reads[n] for n in FIG10_SCENARIOS]))
    print("\nWRITE:")
    print(render_boxplots([writes[n] for n in FIG10_SCENARIOS]))
    print()
    print(report.delta_table())
    ok = report.shape_ok()
    print(f"\nshape matches the paper: {ok}")
    return 0 if ok else 1


def _cmd_multihost(args: argparse.Namespace) -> int:
    scenario = multihost(args.clients, seed=args.seed,
                         queue_depth=args.iodepth)
    jobs = [(client, FioJob(name=f"h{i}", rw=args.rw,
                            bs=parse_size(args.bs),
                            iodepth=args.iodepth, total_ios=args.ios,
                            region_lbas=1 << 20))
            for i, client in enumerate(scenario.clients)]
    results = run_fio_many(jobs)
    rows = []
    total = 0.0
    for result in results:
        op = "read" if "read" in args.rw else "write"
        stats = result.summary(op)
        rows.append([result.device_name, f"{result.iops / 1e3:.1f}",
                     f"{stats.median / 1e3:.2f}"])
        total += result.iops
    rows.append(["TOTAL", f"{total / 1e3:.1f}", ""])
    print(format_table(["host", "kIOPS", "median lat (us)"], rows,
                       title=f"{args.clients} clients sharing one NVMe"))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    scenario = cluster(n_clients=args.clients, n_devices=args.devices,
                       width=args.width, replicas=args.replicas,
                       seed=args.seed, queue_depth=args.iodepth)
    jobs = [(vol, FioJob(name=f"v{i}", rw=args.rw,
                         bs=parse_size(args.bs),
                         iodepth=args.iodepth, total_ios=args.ios,
                         region_lbas=min(1 << 20,
                                         vol.capacity_lbas)))
            for i, vol in enumerate(scenario.volumes)]
    results = run_fio_many(jobs)
    rows = []
    total = 0.0
    for vol, result in zip(scenario.volumes, results):
        rows.append([result.device_name,
                     "+".join(str(d) for d in vol.layout.devices),
                     f"{result.iops / 1e3:.1f}",
                     f"{result.errors}"])
        total += result.iops
    rows.append(["TOTAL", "", f"{total / 1e3:.1f}", ""])
    print(format_table(["volume", "devices", "kIOPS", "errors"], rows,
                       title=f"{args.clients} clients on "
                             f"{args.devices} shared NVMe devices "
                             f"(width={args.width} "
                             f"replicas={args.replicas})"))
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    # Imported lazily so plain simulation commands never pay for the
    # exporter stack.
    import pathlib

    from .telemetry import run_scenario

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    print(f"running {args.scenario} with telemetry "
          f"(ios={args.ios} seed={args.seed}) ...")
    tr = run_scenario(args.scenario, ios=args.ios, seed=args.seed,
                      iodepth=args.iodepth, bs=parse_size(args.bs))
    trace_path = out_dir / f"{args.scenario}-trace.json"
    prom_path = out_dir / f"{args.scenario}-metrics.prom"
    trace_path.write_text(tr.perfetto_json())
    prom_path.write_text(tr.prometheus_text())
    spans = tr.telemetry.spans.finished()
    clean = sum(1 for s in spans if s.clean)
    total_ios = sum(r.ios for r in tr.results)
    errors = sum(r.errors for r in tr.results)
    print(f"  {total_ios} I/Os, {errors} errors; "
          f"{len(spans)} spans recorded ({clean} clean)")
    print(f"  wrote {trace_path} "
          f"({trace_path.stat().st_size} bytes)")
    print(f"  wrote {prom_path} "
          f"({prom_path.stat().st_size} bytes)")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    # Lazy import, like _cmd_telemetry: plain simulation commands
    # never pay for the exporter stack.
    import pathlib

    from .telemetry import run_slo

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    kill = not args.no_kill
    print(f"running SLO chaos run ({args.clients} clients x "
          f"{args.devices} devices, ios={args.ios} seed={args.seed}, "
          f"kill={'on' if kill else 'off'}) ...")
    run = run_slo(n_clients=args.clients, n_devices=args.devices,
                  ios=args.ios, seed=args.seed, iodepth=args.iodepth,
                  bs=parse_size(args.bs), width=args.width,
                  replicas=args.replicas, interval_ns=args.interval_ns,
                  kill=kill)
    series_path = out_dir / "slo-timeseries.jsonl"
    report_path = out_dir / "slo-report.json"
    trace_path = out_dir / "slo-trace.json"
    prom_path = out_dir / "slo-metrics.prom"
    series_path.write_text(run.timeseries_jsonl())
    report_path.write_text(run.slo_report_json())
    trace_path.write_text(run.perfetto_json())
    prom_path.write_text(run.prometheus_text())

    if run.killed:
        print(f"  killed {run.killed} at t={run.kill_at_ns} ns "
              f"(victim tenants: {', '.join(run.victims) or 'none'})")
    report = run.report
    rows = []
    for tenant, info in sorted(report["tenants"].items()):
        alerts = info["alerts"]
        fired = "; ".join(
            f"fired@{a['fired_at_ns']}"
            + (f" resolved@{a['resolved_at_ns']}"
               if a["resolved_at_ns"] is not None else " (active)")
            for a in alerts) or "-"
        rows.append([tenant, f"{info['compliance']:.4f}",
                     "yes" if info["met"] else "NO", fired])
    spec = report["spec"]
    print(format_table(
        ["tenant", "compliance", "met", "burn-rate alerts"], rows,
        title=f"SLO '{spec['name']}': {spec['target']:.0%} within "
              f"{spec['objective_ns']} ns"))
    for path in (series_path, report_path, trace_path, prom_path):
        print(f"  wrote {path} ({path.stat().st_size} bytes)")
    if args.check and kill and not report["alerts"]:
        print("CHECK FAILED: device kill produced no burn-rate alert")
        return 1
    return 0


def _cmd_qos(args: argparse.Namespace) -> int:
    # Lazy import: pulls in the scenario builders + telemetry stack.
    import json
    import pathlib

    from .qos import run_qos

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    throttle = args.throttle and args.policy in ("wfq", "strict")
    print(f"running noisy-neighbour QoS run (policy={args.policy} "
          f"throttle={'on' if throttle else 'off'} "
          f"bystanders={args.bystanders} seed={args.seed}) ...")
    run = run_qos(args.policy, throttle=throttle,
                  n_bystanders=args.bystanders, seed=args.seed,
                  aggressor_iops=args.aggressor_iops,
                  bystander_iops=args.bystander_iops,
                  horizon_ns=args.horizon_ns)
    summary = run.summary()
    summary_path = out_dir / "qos-summary.json"
    series_path = out_dir / "qos-timeseries.jsonl"
    report_path = out_dir / "qos-report.json"
    prom_path = out_dir / "qos-metrics.prom"
    summary_path.write_text(json.dumps(summary, indent=2,
                                       sort_keys=True) + "\n")
    series_path.write_text(run.timeseries_jsonl())
    report_path.write_text(run.slo_report_json())
    prom_path.write_text(run.prometheus_text())

    rows = []
    for tenant in run.tenants:
        entry = summary["tenants"][tenant]
        rows.append([tenant, entry["role"],
                     f"{entry.get('offered_iops', 0):.0f}",
                     f"{entry.get('p99_ns', 0):.0f}",
                     "yes" if entry["met"] else "NO",
                     str(entry["alerts"])])
    print(format_table(
        ["tenant", "role", "offered iops", "p99 ns", "slo met",
         "alerts"], rows,
        title=f"policy={args.policy} throttle="
              f"{'on' if throttle else 'off'}"))
    if run.throttled:
        print(f"  throttle: {run.throttle_report}")
    for path in (summary_path, series_path, report_path, prom_path):
        print(f"  wrote {path} ({path.stat().st_size} bytes)")

    if args.check:
        bystander_alerts = [t for t in run.bystanders
                            if run.tenant_alerts(t)]
        bystanders_met = all(run.report["tenants"][t]["met"]
                             for t in run.bystanders)
        if args.policy in ("wfq", "strict"):
            # Isolation policies must protect the bystanders and still
            # call out the aggressor.
            if bystander_alerts:
                print(f"CHECK FAILED: bystander alerts under "
                      f"{args.policy}: {bystander_alerts}")
                return 1
            if not bystanders_met:
                print(f"CHECK FAILED: bystander SLO missed under "
                      f"{args.policy}")
                return 1
            if not run.tenant_alerts(run.aggressor):
                print("CHECK FAILED: aggressor fired no alert")
                return 1
        else:
            # fifo/off are the baselines that demonstrably fail to
            # isolate — the check is non-vacuous only if they do fail.
            if not bystander_alerts:
                print(f"CHECK FAILED: {args.policy} isolated the "
                      f"bystanders (expected the noisy neighbour to "
                      f"leak through)")
                return 1
    return 0


def _cmd_sharded(args: argparse.Namespace) -> int:
    # Lazy import: the shard runner pulls in multiprocessing glue the
    # plain simulation commands never need.
    from .scenarios.sharded import build_sharded, merge_program_results
    from .sim import run_sharded

    overrides: dict[str, t.Any] = {"seed": args.seed}
    if args.ios is not None:
        key = ("total_ios" if args.scenario == "fig10-ours-remote"
               else "ios_per_client")
        overrides[key] = args.ios
    build = build_sharded(args.scenario, **overrides)
    mode = args.mode or ("deadline" if args.scenario == "chaos"
                         else "goals")
    deadline = args.deadline
    if mode == "deadline" and deadline is None:
        deadline = 6_000_000
    print(f"running {args.scenario} with shards={args.shards} "
          f"({'multiprocess' if args.parallel else 'virtual'}, "
          f"mode={mode}) ...", file=sys.stderr)
    run = run_sharded(build, shards=args.shards, parallel=args.parallel,
                      mode=mode, deadline=deadline)
    merged = merge_program_results(run.results)
    total = sum(v["completed"] for v in merged["fio"].values())
    errors = sum(v["errors"] for v in merged["fio"].values())
    print(f"  {total} I/Os, {errors} errors, sim time "
          f"{merged['sim_now']} ns; {run.windows} windows, "
          f"{run.messages} cross-shard messages, {run.events} events")
    for name in sorted(merged["checksums"]):
        print(f"  checksum {name}: {merged['checksums'][name]:#010x}")
    if args.verify and args.shards > 1:
        ref = merge_program_results(
            run_sharded(build, shards=1, mode=mode,
                        deadline=deadline).results)
        same = (merged["fio"] == ref["fio"]
                and merged["checksums"] == ref["checksums"]
                and (mode != "deadline"
                     or merged["prometheus"] == ref["prometheus"]))
        print(f"  verify vs shards=1: {'OK' if same else 'MISMATCH'}")
        if not same:
            return 1
    return 0


def _cmd_staticcheck(args: argparse.Namespace) -> int:
    # Imported lazily: the checker is a dev tool and pulls in nothing
    # the simulation needs.
    from .staticcheck import main as staticcheck_main
    argv = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.json:
        argv += ["--format", "json"]
    if args.jobs:
        argv += ["--jobs", str(args.jobs)]
    if args.stats:
        argv += ["--stats"]
    return staticcheck_main(argv)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    # Imported lazily like telemetry: plain simulation commands never
    # pay for the sanitizer stack.
    import pathlib

    from .sanitizer import render_json, render_text, run_scenario

    if args.scenario == "selftest":
        from .sanitizer import selftest
        results = selftest(seed=args.seed)
        ok = True
        for detector, res in results.items():
            state = "ok" if res["ok"] else "FAILED"
            ok = ok and res["ok"]
            print(f"  {detector}: {state} "
                  f"(fired {', '.join(res['fired']) or 'nothing'})")
        print(f"selftest: {'all detectors fire' if ok else 'FAILED'}")
        return 0 if ok else 1

    print(f"running {args.scenario} under sharesan "
          f"(ios={args.ios} seed={args.seed}) ...", file=sys.stderr)
    run = run_scenario(args.scenario, ios=args.ios, seed=args.seed,
                       iodepth=args.iodepth, clients=args.clients)
    report = run.report()
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_json(report) + "\n")
        print(f"wrote {path}", file=sys.stderr)
    print(render_text(report))
    if args.check and not run.clean:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Multi-Host Sharing of a "
                    "Single-Function NVMe Device in a PCIe Cluster' "
                    "(SC 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available scenarios") \
       .set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one fio job on a scenario")
    run.add_argument("--scenario", choices=FIG10_SCENARIOS,
                     default="ours-remote")
    run.add_argument("--rw", default="randread",
                     choices=["randread", "randwrite", "randrw", "read",
                              "write"])
    run.add_argument("--bs", default="4k")
    run.add_argument("--iodepth", type=int, default=1)
    run.add_argument("--ios", type=int, default=1000)
    run.add_argument("--seed", type=int, default=42)
    run.set_defaults(func=_cmd_run)

    fig10 = sub.add_parser("fig10",
                           help="regenerate the Fig. 10 comparison")
    fig10.add_argument("--ios", type=int, default=800)
    fig10.add_argument("--seed", type=int, default=42)
    fig10.set_defaults(func=_cmd_fig10)

    mh = sub.add_parser("multihost",
                        help="N hosts sharing one controller")
    mh.add_argument("--clients", type=int, default=4)
    mh.add_argument("--rw", default="randread",
                    choices=["randread", "randwrite"])
    mh.add_argument("--bs", default="4k")
    mh.add_argument("--iodepth", type=int, default=4)
    mh.add_argument("--ios", type=int, default=300)
    mh.add_argument("--seed", type=int, default=42)
    mh.set_defaults(func=_cmd_multihost)

    cl = sub.add_parser(
        "cluster",
        help="M clients on N shared devices with striped/replicated "
             "volumes (ANA-style multipath)")
    cl.add_argument("--clients", type=int, default=8)
    cl.add_argument("--devices", type=int, default=2)
    cl.add_argument("--width", type=int, default=1,
                    help="member devices per volume")
    cl.add_argument("--replicas", type=int, default=1,
                    help="copies of each chunk (<= width)")
    cl.add_argument("--rw", default="randread",
                    choices=["randread", "randwrite", "randrw"])
    cl.add_argument("--bs", default="4k")
    cl.add_argument("--iodepth", type=int, default=4)
    cl.add_argument("--ios", type=int, default=300)
    cl.add_argument("--seed", type=int, default=42)
    cl.set_defaults(func=_cmd_cluster)

    tele = sub.add_parser(
        "telemetry",
        help="run a scenario with spans/metrics on and export "
             "Perfetto JSON + Prometheus text")
    tele.add_argument("--scenario", default="ours-remote",
                      choices=list(FIG10_SCENARIOS) + ["chaos"])
    tele.add_argument("--ios", type=int, default=200)
    tele.add_argument("--bs", default="4k")
    tele.add_argument("--iodepth", type=int, default=4)
    tele.add_argument("--seed", type=int, default=7)
    tele.add_argument("--out-dir", default="telemetry-out",
                      help="directory for the exported files")
    tele.set_defaults(func=_cmd_telemetry)

    slo = sub.add_parser(
        "slo",
        help="device-kill chaos run under SLO watch: per-tenant "
             "latency histograms, time series and burn-rate alerts")
    slo.add_argument("--clients", type=int, default=4)
    slo.add_argument("--devices", type=int, default=2)
    slo.add_argument("--width", type=int, default=1,
                     help="member devices per volume")
    slo.add_argument("--replicas", type=int, default=1,
                     help="copies of each chunk (2 = kill becomes a "
                          "failover latency spike, not an error burn)")
    slo.add_argument("--ios", type=int, default=400,
                     help="I/Os per tenant")
    slo.add_argument("--bs", default="4k")
    slo.add_argument("--iodepth", type=int, default=4)
    slo.add_argument("--seed", type=int, default=7)
    slo.add_argument("--interval-ns", type=int, default=200_000,
                     help="sampling interval (simulated ns)")
    slo.add_argument("--no-kill", action="store_true",
                     help="skip the device kill (healthy baseline)")
    slo.add_argument("--out-dir", default="slo-out",
                     help="directory for the exported files")
    slo.add_argument("--check", action="store_true",
                     help="exit non-zero if the kill fired no alert")
    slo.set_defaults(func=_cmd_slo)

    qos = sub.add_parser(
        "qos",
        help="open-loop noisy-neighbour run with per-tenant QoS at "
             "the shared-SQ arbitration point")
    qos.add_argument("--policy", default="wfq",
                     choices=["off", "fifo", "wfq", "strict"])
    qos.add_argument("--no-throttle", dest="throttle",
                     action="store_false",
                     help="disable burn-rate admission throttling "
                          "(wfq/strict only; fifo/off never throttle)")
    qos.add_argument("--bystanders", type=int, default=3)
    qos.add_argument("--aggressor-iops", type=float, default=1_000_000.0)
    qos.add_argument("--bystander-iops", type=float, default=50_000.0)
    qos.add_argument("--horizon-ns", type=int, default=8_000_000,
                     help="open-loop arrival horizon (simulated ns)")
    qos.add_argument("--seed", type=int, default=7)
    qos.add_argument("--out-dir", default="qos-out",
                     help="directory for the exported files")
    qos.add_argument("--check", action="store_true",
                     help="exit non-zero unless wfq/strict isolate the "
                          "bystanders (and fifo/off visibly don't)")
    qos.set_defaults(func=_cmd_qos)

    sh = sub.add_parser(
        "sharded",
        help="run a scenario on the sharded conservative-lookahead "
             "event loop (bit-identical to shards=1)")
    sh.add_argument("--scenario", default="multihost-4",
                    choices=["fig10-ours-remote", "multihost-4",
                             "chaos", "cluster-4dev"])
    sh.add_argument("--shards", type=int, default=2,
                    help="replica count (1 = plain single loop)")
    sh.add_argument("--parallel", "--mp", action="store_true",
                    dest="parallel",
                    help="forked worker per shard instead of virtual "
                         "(in-process) sharding")
    sh.add_argument("--mode", choices=["goals", "deadline"],
                    default=None,
                    help="stop when workloads finish (goals) or at a "
                         "fixed simulated time (deadline); default "
                         "deadline for chaos, goals otherwise")
    sh.add_argument("--deadline", type=int, default=None,
                    help="simulated end time in ns (deadline mode)")
    sh.add_argument("--ios", type=int, default=None,
                    help="I/Os per client (scenario default if unset)")
    sh.add_argument("--seed", type=int, default=42)
    sh.add_argument("--verify", action="store_true",
                    help="also run shards=1 and compare fio stats, "
                         "checksums and (deadline mode) metrics")
    sh.set_defaults(func=_cmd_sharded)

    sc = sub.add_parser("staticcheck",
                        help="run the AST invariant checker "
                             "(determinism, posted writes, units)")
    sc.add_argument("paths", nargs="*", default=["src"])
    sc.add_argument("--select", help="comma-separated rule names")
    sc.add_argument("--json", action="store_true",
                    help="machine-readable output")
    sc.add_argument("--jobs", type=int, default=0,
                    help="scan files with N worker processes")
    sc.add_argument("--stats", action="store_true",
                    help="print findings-per-rule and timing summary")
    sc.set_defaults(func=_cmd_staticcheck)

    san = sub.add_parser(
        "sanitize",
        help="run a scenario under ShareSan (ownership/race checks) "
             "or the detector selftest")
    san.add_argument("scenario",
                     choices=["scale-out", "chaos", "multihost",
                              "selftest"])
    san.add_argument("--ios", type=int, default=50,
                     help="I/Os per client")
    san.add_argument("--iodepth", type=int, default=4)
    san.add_argument("--seed", type=int, default=7)
    san.add_argument("--clients", type=int, default=None,
                     help="override the scenario's client count")
    san.add_argument("--check", action="store_true",
                     help="exit non-zero if any finding was reported")
    san.add_argument("--json", metavar="PATH",
                     help="also write the full report as JSON")
    san.set_defaults(func=_cmd_sanitize)
    return parser


def main(argv: t.Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
