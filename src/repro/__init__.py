"""repro — simulation-based reproduction of *Multi-Host Sharing of a
Single-Function NVMe Device in a PCIe Cluster* (Markussen et al., SC 2024).

Quick start::

    from repro import scenarios, workloads

    scenario = scenarios.ours_remote(seed=1)
    result = workloads.run_fio(scenario.device,
                               workloads.FioJob(rw="randread", bs=4096,
                                                iodepth=1, total_ios=2000))
    print(result.summary("read"))

Layers (bottom-up): :mod:`repro.sim` (event kernel), :mod:`repro.pcie`
(fabric + NTBs), :mod:`repro.nvme` (controller model), :mod:`repro.sisci`
/ :mod:`repro.smartio` (shared-memory APIs), :mod:`repro.driver` (the
paper's manager/client driver + stock baseline), :mod:`repro.rdma` /
:mod:`repro.nvmeof` (the comparison stack), :mod:`repro.workloads`,
:mod:`repro.scenarios` and :mod:`repro.analysis`.
"""

from . import (analysis, config, driver, memory, nvme, nvmeof, pcie, rdma,
               scenarios, sim, sisci, smartio, units, workloads)
from .config import DEFAULT_CONFIG, SimulationConfig
from .driver import (BlockRequest, DistributedNvmeClient, NvmeManager,
                     StockNvmeDriver)
from .scenarios import (build_fig10_scenario, local_linux, multihost,
                        nvmeof_remote, ours_local, ours_remote)
from .sim import Simulator
from .workloads import FioJob, FioResult, run_fio, run_fio_many

__version__ = "1.0.0"

__all__ = [
    "Simulator", "SimulationConfig", "DEFAULT_CONFIG",
    "FioJob", "FioResult", "run_fio", "run_fio_many",
    "BlockRequest", "StockNvmeDriver", "NvmeManager",
    "DistributedNvmeClient",
    "build_fig10_scenario", "local_linux", "nvmeof_remote",
    "ours_local", "ours_remote", "multihost",
    "sim", "pcie", "nvme", "memory", "sisci", "smartio", "driver",
    "rdma", "nvmeof", "workloads", "scenarios", "analysis", "config",
    "units",
]
