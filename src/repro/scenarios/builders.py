"""Prebuilt benchmark scenarios — the paper's Fig. 9 configurations.

Each builder returns a :class:`Scenario` holding a live simulator and a
started block device, ready for :func:`repro.workloads.run_fio`:

* ``local_linux``      — stock Linux driver, local NVMe (Fig. 9a left);
* ``nvmeof_remote``    — kernel initiator -> 100 Gb/s RDMA -> SPDK
  target -> NVMe (Fig. 9a right);
* ``ours_local``       — distributed driver, client in the device's own
  host (Fig. 9b left);
* ``ours_remote``      — distributed driver, client one NTB hop away
  (Fig. 9b right);
* ``multihost``        — N clients sharing one controller (Sec. VI's
  31-host claim).
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..config import SimulationConfig
from ..driver import (BlockDevice, DistributedNvmeClient, NvmeManager,
                      StockNvmeDriver)
from ..nvmeof import NvmeofInitiator, SpdkTarget
from ..sim import Simulator
from ..telemetry.hub import Telemetry
from .testbed import LocalTestbed, PcieTestbed, RdmaTestbed

#: The four Fig. 10 scenario names, in the paper's presentation order.
FIG10_SCENARIOS = ("local-linux", "nvmeof-remote", "ours-local",
                   "ours-remote")


@dataclasses.dataclass
class Scenario:
    """A live, started benchmark configuration."""

    label: str
    sim: Simulator
    device: BlockDevice
    testbed: t.Any
    extras: dict = dataclasses.field(default_factory=dict)

    @property
    def telemetry(self) -> Telemetry | None:
        """The hub wired in at build time (``telemetry=True``), if any."""
        return self.extras.get("telemetry")


def local_linux(config: SimulationConfig | None = None,
                seed: int | None = None,
                queue_depth: int = 64,
                telemetry: bool = False) -> Scenario:
    """Stock Linux NVMe driver on a local device."""
    bed = LocalTestbed(config=config, seed=seed)
    driver = StockNvmeDriver(bed.sim, bed.fabric, bed.host,
                             bed.nvme.bars[0].base, bed.config,
                             queue_depth=queue_depth)
    extras = {}
    if telemetry:
        extras["telemetry"] = Telemetry(bed.sim).attach(
            fabric=bed.fabric, controllers=[bed.nvme], devices=[driver])
    bed.sim.run(until=bed.sim.process(driver.start()))
    return Scenario("local-linux", bed.sim, driver, bed, extras=extras)


def nvmeof_remote(config: SimulationConfig | None = None,
                  seed: int | None = None,
                  queue_depth: int = 32,
                  telemetry: bool = False) -> Scenario:
    """NVMe-oF: kernel initiator over RDMA to an SPDK target."""
    bed = RdmaTestbed(config=config, seed=seed)
    target = SpdkTarget(bed.sim, bed.fabric, bed.target_host,
                        bed.nvme.bars[0].base, bed.target_nic, bed.config)
    bed.sim.run(until=bed.sim.process(target.start()))
    initiator = NvmeofInitiator(bed.sim, bed.initiator_host,
                                bed.initiator_nic, bed.config,
                                queue_depth=queue_depth)
    extras: dict = {"target": target}
    if telemetry:
        extras["telemetry"] = Telemetry(bed.sim).attach(
            fabric=bed.fabric, controllers=[bed.nvme],
            devices=[initiator])
    bed.sim.run(until=bed.sim.process(initiator.connect(target)))
    return Scenario("nvmeof-remote", bed.sim, initiator, bed,
                    extras=extras)


def _ours(client_host: int, config: SimulationConfig | None,
          seed: int | None, queue_depth: int, label: str,
          n_hosts: int = 2, telemetry: bool = False,
          shard_boundary: bool = False, **client_kwargs) -> Scenario:
    bed = PcieTestbed(config=config, n_hosts=n_hosts, with_nvme=True,
                      seed=seed, shard_boundary=shard_boundary)
    tele = None
    if telemetry:
        tele = Telemetry(bed.sim).attach(fabric=bed.fabric, ntbs=bed.ntbs,
                                         controllers=[bed.nvme])
    with bed.sim.domain("host0"):
        manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                              bed.nvme_device_id, bed.config)
        if tele is not None:
            tele.attach(managers=[manager])
        bed.sim.run(until=bed.sim.process(manager.start()))
    with bed.sim.domain(f"host{client_host}"):
        client = DistributedNvmeClient(bed.sim, bed.smartio,
                                       bed.node(client_host),
                                       bed.nvme_device_id, bed.config,
                                       queue_depth=queue_depth,
                                       **client_kwargs)
        if tele is not None:
            tele.attach(clients=[client])
        bed.sim.run(until=bed.sim.process(client.start()))
    extras: dict = {"manager": manager}
    if tele is not None:
        extras["telemetry"] = tele
    return Scenario(label, bed.sim, client, bed, extras=extras)


def ours_local(config: SimulationConfig | None = None,
               seed: int | None = None, queue_depth: int = 32,
               telemetry: bool = False, shard_boundary: bool = False,
               **client_kwargs) -> Scenario:
    """Distributed driver, client co-located with the device."""
    return _ours(0, config, seed, queue_depth, "ours-local",
                 telemetry=telemetry, shard_boundary=shard_boundary,
                 **client_kwargs)


def ours_remote(config: SimulationConfig | None = None,
                seed: int | None = None, queue_depth: int = 32,
                telemetry: bool = False, shard_boundary: bool = False,
                **client_kwargs) -> Scenario:
    """Distributed driver, client across the NTB cluster switch."""
    return _ours(1, config, seed, queue_depth, "ours-remote",
                 telemetry=telemetry, shard_boundary=shard_boundary,
                 **client_kwargs)


def build_fig10_scenario(name: str,
                         config: SimulationConfig | None = None,
                         seed: int | None = None,
                         telemetry: bool = False) -> Scenario:
    builders = {
        "local-linux": local_linux,
        "nvmeof-remote": nvmeof_remote,
        "ours-local": ours_local,
        "ours-remote": ours_remote,
    }
    try:
        return builders[name](config=config, seed=seed,
                              telemetry=telemetry)
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"pick one of {FIG10_SCENARIOS}") from None


@dataclasses.dataclass
class MultiHostScenario:
    sim: Simulator
    clients: list[DistributedNvmeClient]
    manager: NvmeManager
    testbed: PcieTestbed
    telemetry: Telemetry | None = None
    sanitizer: t.Any = None


def multihost(n_clients: int, config: SimulationConfig | None = None,
              seed: int | None = None, queue_depth: int = 16,
              include_device_host: bool = False,
              sharing: str = "auto",
              telemetry: bool = False,
              sanitizer: bool = False,
              shard_boundary: bool = False) -> MultiHostScenario:
    """N clients sharing the single-function controller in host0.

    With ``include_device_host`` the device's own host also runs a
    client (the paper's sharing is symmetric); otherwise all clients
    are remote.  With QP sharing enabled (the default) the client
    count may exceed the controller's 31 queue pairs, up to
    ``config.sharing.capacity(31)``; overflow clients become tenants
    of manager-hosted shared queue pairs (docs/queue_sharing.md).
    """
    cfg = config or SimulationConfig()
    limit = cfg.nvme.max_queue_pairs - 1
    cap = cfg.sharing.capacity(limit) if sharing != "never" else limit
    if n_clients > cap:
        raise ValueError(
            f"cluster admits at most {cap} clients "
            f"({limit} I/O queue pairs, sharing "
            f"{'on' if cap > limit else 'off'})")
    first = 0 if include_device_host else 1
    n_hosts = first + n_clients
    bed = PcieTestbed(config=cfg, n_hosts=max(2, n_hosts),
                      with_nvme=True, seed=seed,
                      shard_boundary=shard_boundary)
    tele = None
    if telemetry:
        tele = Telemetry(bed.sim).attach(fabric=bed.fabric,
                                         controllers=[bed.nvme])
    san = None
    if sanitizer:
        from ..sanitizer import ShareSan
        san = ShareSan(bed.sim, telemetry=tele).attach(
            controllers=[bed.nvme], ntbs=bed.ntbs, hosts=bed.hosts)
    with bed.sim.domain("host0"):
        manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                              bed.nvme_device_id, bed.config)
        if tele is not None:
            tele.attach(managers=[manager])
        if san is not None:
            san.attach(managers=[manager])
        bed.sim.run(until=bed.sim.process(manager.start()))
    clients = []
    for i in range(n_clients):
        host_index = first + i
        with bed.sim.domain(f"host{host_index}"):
            client = DistributedNvmeClient(
                bed.sim, bed.smartio, bed.node(host_index),
                bed.nvme_device_id, bed.config, queue_depth=queue_depth,
                sharing=sharing, slot_index=i,
                name=f"host{host_index}-nvme")
            if tele is not None:
                tele.attach(clients=[client])
            if san is not None:
                san.attach(clients=[client])
            bed.sim.run(until=bed.sim.process(client.start()))
        clients.append(client)
    return MultiHostScenario(bed.sim, clients, manager, bed,
                             telemetry=tele, sanitizer=san)


def scale_out_cluster(n_clients: int = 64,
                      config: SimulationConfig | None = None,
                      seed: int | None = None, queue_depth: int = 16,
                      telemetry: bool = False,
                      sanitizer: bool = False) -> MultiHostScenario:
    """A beyond-31-hosts cluster exercising shared queue pairs.

    The default 64 clients need 33 more seats than the controller has
    queue pairs; the builder widens the shared-QP reserve so capacity
    covers ``n_clients`` and lets admission place the overflow."""
    from .cluster import widen_sharing
    cfg = config or SimulationConfig()
    if not cfg.sharing.enabled:
        raise ValueError("scale_out_cluster requires sharing.enabled")
    cfg = widen_sharing(cfg, n_clients)
    return multihost(n_clients, config=cfg, seed=seed,
                     queue_depth=queue_depth, telemetry=telemetry,
                     sanitizer=sanitizer)
