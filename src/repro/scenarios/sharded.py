"""Shard programs: the paper's scenarios packaged for ``run_sharded``.

A *shard program* (contract in :mod:`repro.sim.shard`) wraps a built
scenario so the shard runner can replicate it, freeze foreign timing
domains and drive the owned workloads window-by-window.  Each builder
here returns a zero-argument ``build`` callable suitable for
:func:`repro.sim.run_sharded` — under multiprocess sharding it runs
inside forked workers, so it must be self-contained.

What a program collects per replica (all picklable):

* per-client fio accounting from the owned block devices (completed
  I/Os, error count, bytes moved, exact latency sum) — meaningful in
  both goals and deadline mode, including half-finished runs;
* a CRC32 digest of every owned controller's namespace contents — the
  end-to-end data-integrity checksum the equivalence tests compare;
* metrics snapshots taken at switchover (``base``) and at the end
  (``end``), merged by :func:`merge_program_results` into one registry
  whose Prometheus rendering is byte-identical across shard counts for
  fixed-deadline runs.

Unsupported under ``shards > 1`` (clear error, not silent corruption):
span recording / Perfetto export, the time-series sampler, the SLO
engine and ShareSan — all observe cross-domain interleavings that a
replica cannot see in full.  :func:`merge_program_results` returns a
``perfetto_json`` callable that raises :class:`ShardError` when the
run was sharded; the builders refuse ``sanitizer=True`` up front.
"""

from __future__ import annotations

import typing as t
import zlib

from ..faults import FaultEvent, FaultPlan
from ..sim import ShardError, Simulator, merge_disjoint, \
    merge_metric_snapshots, value_fingerprint
from ..telemetry.prometheus import registry_to_prometheus
from ..workloads import FioJob, fio_generator
from .builders import multihost, ours_remote
from .chaos import chaos_cluster
from .cluster import cluster

__all__ = [
    "ShardProgram", "SHARDED_SCENARIOS", "build_sharded",
    "merge_program_results", "metric_merge_rule", "SHARD_CHAOS_PLAN",
]

#: Fixed fault plan for the sharded chaos scenario — link flap, lossy
#: cable and a controller stall, none of which kill a client (surprise
#: removal is a per-replica session teardown and stays a non-sharded
#: test concern).
SHARD_CHAOS_PLAN = FaultPlan((
    FaultEvent(200_000, "link_down", "link:host2", duration_ns=500_000),
    FaultEvent(400_000, "tlp_drop", "link:host3", probability=0.1,
               duration_ns=800_000),
    FaultEvent(900_000, "ctrl_stall", "ctrl:nvme0", duration_ns=300_000),
))


def metric_merge_rule(name: str, kind: str, labels: dict) -> str:
    """Merge rule for one telemetry series (see merge_metric_snapshots).

    The default partition: counters accumulate only in the replica
    owning the accounting component (sum of deltas); gauges, summaries
    and histograms reflect single-owner state (exactly one replica may
    change them).  Exceptions:

    * the fault injector is deliberately replicated into every shard,
      so its direct actions (link transitions, link-up state, stall
      counts) happen everywhere and must agree exactly;
    * ``repro_sim_time_ns`` and ``repro_io_iops`` are derived from the
      clock, which every replica advances — take the maximum (a
      device's completion count only grows in its owning replica, so
      the max IS the owner's value).
    """
    if name == "repro_faults_injected_total":
        if labels.get("kind") in ("link-down", "stall"):
            return "equal"
        return "sum-delta"
    if name in ("repro_ntb_link_transitions_total", "repro_ntb_link_up"):
        return "equal"
    if name in ("repro_sim_time_ns", "repro_io_iops"):
        return "max"
    if kind == "counter":
        return "sum-delta"
    return "one"


def _namespace_digest(controller: t.Any) -> int:
    """CRC32 over a controller's namespace contents (sorted extents)."""
    crc = 0
    for nsid in sorted(controller.namespaces):
        ns = controller.namespaces[nsid]
        for index in sorted(ns._extents):
            crc = zlib.crc32(index.to_bytes(8, "little"), crc)
            crc = zlib.crc32(bytes(ns._extents[index]), crc)
    return crc


class ShardProgram:
    """One built scenario plus its workload plan, shard-runner shaped.

    ``workloads`` is a tuple of ``(domain, name, device, job)``: the
    fio job is spawned (under its domain tag) only in the replica that
    owns the domain.  ``controllers`` is a tuple of ``(domain, name,
    controller)`` used for the owned-side namespace digests.  The
    optional ``injector`` is started in *every* replica — fault state
    (link up/down, drop probability) is checked at transaction issue
    time in the source replica, so it must be visible everywhere.
    """

    def __init__(self, label: str, sim: Simulator, fabric: t.Any,
                 domains: t.Sequence[str], telemetry: t.Any,
                 workloads: t.Sequence[tuple],
                 controllers: t.Sequence[tuple] = (),
                 injector: t.Any = None) -> None:
        self.label = label
        self.sim = sim
        self.fabric = fabric
        self.domains = tuple(domains)
        self.telemetry = telemetry
        self.workloads = tuple(workloads)
        self.controllers = tuple(controllers)
        self.injector = injector
        self._procs: list = []
        self._base: dict | None = None

    def start(self, owned: frozenset) -> list:
        # The base snapshot is taken at switchover, when every replica
        # is still bit-identical; the merge anchors deltas against it.
        self._base = self.telemetry.collect().snapshot()
        if self.injector is not None:
            # Replicated on purpose; spawned outside any domain tag so
            # it is never frozen.
            self.injector.start()
        procs = []
        for domain, name, device, job in self.workloads:
            if domain in owned:
                with self.sim.domain(domain):
                    proc = self.sim.process(fio_generator(device, job))
                self._procs.append(proc)
                procs.append(proc)
        return procs

    def goals_done(self) -> bool:
        return all(proc.triggered for proc in self._procs)

    def collect(self, owned: frozenset) -> dict:
        fio: dict[str, dict] = {}
        for domain, name, device, _job in self.workloads:
            if domain not in owned:
                continue
            latencies = device.latencies
            fio[name] = {
                "completed": device.completed,
                "errors": device.errors,
                "bytes": device.bytes_moved,
                "lat_count": len(latencies),
                "lat_sum": int(latencies.values().sum()),
            }
        checksums = {
            name: _namespace_digest(ctrl)
            for domain, name, ctrl in self.controllers if domain in owned
        }
        return {
            "label": self.label,
            "owned": sorted(owned),
            "sim_now": self.sim.now,
            "fio": fio,
            "checksums": checksums,
            "metrics_base": self._base,
            "metrics_end": self.telemetry.collect().snapshot(),
        }


def _snapshots_equal(a: dict, b: dict) -> bool:
    """Compare two metric snapshots by value fingerprint.

    # cross-shard merge — family names are iterated sorted; series
    lists are already in the renderer's sorted order."""
    if sorted(a) != sorted(b):
        return False
    for name in sorted(a):
        fa, fb = a[name], b[name]
        if (fa["kind"], fa["help"], fa["unit"]) \
                != (fb["kind"], fb["help"], fb["unit"]):
            return False
        if len(fa["series"]) != len(fb["series"]):
            return False
        for sa, sb in zip(fa["series"], fb["series"]):
            if sa["labels"] != sb["labels"]:
                return False
            if value_fingerprint(sa["value"]) \
                    != value_fingerprint(sb["value"]):
                return False
    return True


def merge_program_results(results: list[dict]) -> dict:
    """Combine per-replica ``ShardProgram.collect`` dicts.

    # cross-shard merge — per-shard dicts are unioned with sorted keys
    (ownership makes them disjoint) and the metric snapshots go
    through the policy-driven registry merge."""
    base = results[0]["metrics_base"]
    for index, result in enumerate(results[1:], start=1):
        if not _snapshots_equal(base, result["metrics_base"]):
            raise ShardError(
                f"replica divergence: shard {index}'s switchover metrics "
                f"snapshot differs from shard 0's")
    registry = merge_metric_snapshots(
        base, [r["metrics_end"] for r in results], metric_merge_rule)
    sharded = len(results) > 1

    def perfetto_json() -> str:
        if sharded:
            raise ShardError(
                "span recording / Perfetto export is not supported with "
                "shards > 1: spans observe cross-domain interleavings a "
                "single replica cannot see in full; rerun with shards=1 "
                "or REPRO_NO_SHARDING=1")
        raise ShardError(
            "this shard program collects metrics only; build the "
            "scenario directly for span recording")

    return {
        "label": results[0]["label"],
        "sim_now": max(r["sim_now"] for r in results),
        "fio": merge_disjoint([r["fio"] for r in results]),
        "checksums": merge_disjoint([r["checksums"] for r in results]),
        "metrics": registry,
        "prometheus": registry_to_prometheus(registry),
        "perfetto_json": perfetto_json,
    }


# ---------------------------------------------------------------------------
# Program builders (each returns a zero-arg ``build`` for run_sharded)
# ---------------------------------------------------------------------------

def _check_unsupported(sanitizer: bool) -> None:
    if sanitizer:
        raise ShardError(
            "ShareSan is not supported with shards > 1: it orders "
            "cross-host accesses globally, which a replica cannot "
            "observe; rerun with shards=1 or REPRO_NO_SHARDING=1")


def build_fig10(seed: int = 7, total_ios: int = 400,
                queue_depth: int = 32, iodepth: int = 8,
                rw: str = "randrw",
                sanitizer: bool = False) -> t.Callable[[], ShardProgram]:
    """Fig. 10 ``ours-remote``: one client, one NTB hop (2 domains).

    Defaults to ``randrw`` (unlike the read-only Fig. 10 benchmark) so
    the namespace digest is a real data-integrity check, not a CRC of
    an empty extent map.
    """
    _check_unsupported(sanitizer)

    def build() -> ShardProgram:
        scenario = ours_remote(seed=seed, queue_depth=queue_depth,
                               telemetry=True, shard_boundary=True)
        bed = scenario.testbed
        job = FioJob(name="fig10", rw=rw, bs=4096,
                     iodepth=iodepth, total_ios=total_ios)
        return ShardProgram(
            "fig10-ours-remote", scenario.sim, bed.fabric, bed.domains,
            scenario.telemetry,
            workloads=[("host1", "host1-fio", scenario.device, job)],
            controllers=[("host0", "nvme0", bed.nvme)])
    return build


def build_multihost(n_clients: int = 4, seed: int = 404,
                    ios_per_client: int = 300, queue_depth: int = 16,
                    rw: str = "randrw", sanitizer: bool = False
                    ) -> t.Callable[[], ShardProgram]:
    """Sec. VI multi-host sharing: N remote clients, one controller."""
    _check_unsupported(sanitizer)

    def build() -> ShardProgram:
        scenario = multihost(n_clients, seed=seed,
                             queue_depth=queue_depth, telemetry=True,
                             shard_boundary=True)
        bed = scenario.testbed
        workloads = []
        for i, client in enumerate(scenario.clients):
            job = FioJob(name=f"mh{i}", rw=rw, bs=4096,
                         iodepth=8, total_ios=ios_per_client,
                         region_lbas=1 << 20, seed_stream=f"fio{i}")
            workloads.append((f"host{1 + i}", client.name, client, job))
        return ShardProgram(
            f"multihost-{n_clients}", scenario.sim, bed.fabric,
            bed.domains, scenario.telemetry, workloads,
            controllers=[("host0", "nvme0", bed.nvme)])
    return build


def build_chaos(n_clients: int = 3, seed: int = 321,
                ios_per_client: int = 150, plan: FaultPlan | None = None,
                sanitizer: bool = False) -> t.Callable[[], ShardProgram]:
    """Fault-injected cluster (recovery on): run in deadline mode so
    the injector's full plan replays regardless of workload length."""
    _check_unsupported(sanitizer)

    def build() -> ShardProgram:
        scenario = chaos_cluster(n_clients=n_clients,
                                 plan=plan or SHARD_CHAOS_PLAN,
                                 seed=seed, telemetry=True,
                                 shard_boundary=True)
        bed = scenario.testbed
        workloads = []
        for i, client in enumerate(scenario.clients):
            job = FioJob(name=f"j{i}", rw="randrw", iodepth=4,
                         total_ios=ios_per_client, seed_stream=f"fio{i}")
            workloads.append((f"host{1 + i}", client.name, client, job))
        assert bed.nvme is not None
        return ShardProgram(
            f"chaos-{n_clients}", scenario.sim, bed.fabric, bed.domains,
            scenario.telemetry, workloads,
            controllers=[("host0", "nvme0", bed.nvme)],
            injector=scenario.injector)
    return build


def build_cluster(n_clients: int = 4, n_devices: int = 4, seed: int = 99,
                  ios_per_client: int = 120, queue_depth: int = 8,
                  rw: str = "randrw", sanitizer: bool = False
                  ) -> t.Callable[[], ShardProgram]:
    """Multi-device cluster: a volume per client over N controllers."""
    _check_unsupported(sanitizer)

    def build() -> ShardProgram:
        scenario = cluster(n_clients=n_clients, n_devices=n_devices,
                           seed=seed, queue_depth=queue_depth,
                           telemetry=True, shard_boundary=True)
        bed = scenario.testbed
        workloads = []
        for i, volume in enumerate(scenario.volumes):
            job = FioJob(name=f"cl{i}", rw=rw, bs=4096,
                         iodepth=4, total_ios=ios_per_client,
                         seed_stream=f"fio{i}")
            workloads.append((f"host{n_devices + i}", f"vol{i}",
                              volume, job))
        controllers = [(f"host{i}", ctrl.name, ctrl)
                       for i, ctrl in enumerate(scenario.controllers)]
        return ShardProgram(
            f"cluster-{n_clients}x{n_devices}", scenario.sim, bed.fabric,
            bed.domains, scenario.telemetry, workloads,
            controllers=controllers)
    return build


#: name -> builder factory, for the CLI and the benchmarks
SHARDED_SCENARIOS: dict[str, t.Callable[..., t.Callable[[], ShardProgram]]]
SHARDED_SCENARIOS = {
    "fig10-ours-remote": build_fig10,
    "multihost-4": build_multihost,
    "chaos": build_chaos,
    "cluster-4dev": build_cluster,
}


def build_sharded(name: str, **overrides: t.Any
                  ) -> t.Callable[[], ShardProgram]:
    """Resolve a named shard-program builder (CLI / bench entry)."""
    try:
        factory = SHARDED_SCENARIOS[name]
    except KeyError:
        raise ShardError(
            f"unknown sharded scenario {name!r}; "
            f"pick one of {sorted(SHARDED_SCENARIOS)}") from None
    return factory(**overrides)
