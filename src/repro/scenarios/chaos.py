"""Chaos testbed: a multi-client cluster with fault injection wired in.

Builds the :func:`~repro.scenarios.builders.multihost` topology and
threads one :class:`~repro.faults.FaultPointRegistry` through every
layer that exposes fault points:

* ``link:<host>``   — each host's NTB adapter (down / drop / delay),
  hooked into both the adapter (:class:`~repro.pcie.ntb.NtbFunction`)
  and the fabric's per-transaction checks;
* ``ctrl:<name>``   — the NVMe controller (stall / per-command abort);
* ``client:<name>`` — every distributed-driver client (kill).

Recovery is enabled via :class:`~repro.config.ReliabilityConfig`
(command timeouts + retries in the clients, heartbeat liveness leases in
the manager) and a shared :class:`~repro.sim.Tracer` records the
``fault``/``recovery`` event streams, so a run is fully auditable and —
given the same ``(seed, plan)`` — bit-identical across replays.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..config import ReliabilityConfig, SimulationConfig
from ..driver import DistributedNvmeClient, NvmeManager
from ..faults import FaultInjector, FaultPlan, FaultPointRegistry
from ..sim import Simulator, Tracer
from ..telemetry.hub import Telemetry
from .testbed import PcieTestbed

#: Reliability knobs used when the caller does not bring their own:
#: timeouts well above healthy latencies, sub-millisecond leases so
#: chaos tests converge in a few simulated milliseconds.
CHAOS_RELIABILITY = ReliabilityConfig(
    command_timeout_ns=2_000_000,
    max_retries=3,
    retry_backoff_ns=200_000,
    heartbeat_interval_ns=100_000,
    lease_timeout_ns=1_000_000,
    lease_check_interval_ns=250_000,
)


def with_chaos_reliability(base: SimulationConfig,
                           reliability: ReliabilityConfig | None = None,
                           ) -> SimulationConfig:
    """Resolve the reliability profile for a fault-injected run.

    The caller's explicit choice wins; the all-off default (under which
    every injected fault is a silent hang) falls back to
    :data:`CHAOS_RELIABILITY`.
    """
    rel = reliability or base.reliability
    if rel.command_timeout_ns == 0 and rel.lease_timeout_ns == 0:
        rel = CHAOS_RELIABILITY
    return dataclasses.replace(base, reliability=rel)


@dataclasses.dataclass
class ChaosScenario:
    """A live cluster plus its fault-injection plumbing."""

    sim: Simulator
    clients: list[DistributedNvmeClient]
    manager: NvmeManager
    testbed: PcieTestbed
    registry: FaultPointRegistry
    injector: FaultInjector
    tracer: Tracer
    plan: FaultPlan
    telemetry: Telemetry | None = None
    sanitizer: t.Any = None

    def link_points(self) -> list[str]:
        return [f"link:{h.name}" for h in self.testbed.hosts]

    def client_points(self) -> list[str]:
        return [f"client:{c.name}" for c in self.clients]

    @property
    def ctrl_point(self) -> str:
        assert self.testbed.nvme is not None
        return self.testbed.nvme.fault_point

    def trace_log(self, *categories: str) -> list[tuple]:
        """Flat, comparable view of the trace (for replay assertions)."""
        wanted = set(categories) or None
        return [r.as_tuple() for r in self.tracer.records
                if wanted is None or r.category in wanted]


def chaos_cluster(n_clients: int = 4,
                  plan: FaultPlan | None = None,
                  config: SimulationConfig | None = None,
                  seed: int | None = None,
                  queue_depth: int = 8,
                  queue_entries: int = 64,
                  reliability: ReliabilityConfig | None = None,
                  trace_categories: t.Collection[str] | None = None,
                  telemetry: bool = False,
                  sharing: str = "auto",
                  sanitizer: bool = False,
                  shard_boundary: bool = False,
                  ) -> ChaosScenario:
    """N remote clients sharing host0's controller, faults injectable.

    The injector is created but **not started**; tests start it (and the
    workload) so nothing fires before the cluster is fully up.
    """
    base = with_chaos_reliability(config or SimulationConfig(),
                                  reliability)

    n_hosts = 1 + n_clients
    bed = PcieTestbed(config=base, n_hosts=max(2, n_hosts),
                      with_nvme=True, seed=seed,
                      shard_boundary=shard_boundary)
    tracer = Tracer(bed.sim, categories=trace_categories)
    # The testbed creates the simulator, so the shared tracer can only
    # exist now; retrofit it into the already-built components.
    bed.tracer = tracer
    bed.fabric.tracer = tracer
    assert bed.nvme is not None
    bed.nvme.tracer = tracer

    registry = FaultPointRegistry(bed.sim)
    for host, ntb in zip(bed.hosts, bed.ntbs):
        registry.register(f"link:{host.name}", obj=ntb)
    registry.register(bed.nvme.fault_point, obj=bed.nvme)
    bed.fabric.faults = registry
    bed.nvme.faults = registry

    tele = None
    if telemetry:
        tele = Telemetry(bed.sim).attach(fabric=bed.fabric, ntbs=bed.ntbs,
                                         controllers=[bed.nvme],
                                         faults=registry)

    san = None
    if sanitizer:
        from ..sanitizer import ShareSan
        san = ShareSan(bed.sim, telemetry=tele).attach(
            controllers=[bed.nvme], ntbs=bed.ntbs, hosts=bed.hosts)

    with bed.sim.domain("host0"):
        manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                              bed.nvme_device_id, base, tracer=tracer)
        if tele is not None:
            tele.attach(managers=[manager])
        if san is not None:
            san.attach(managers=[manager])
        bed.sim.run(until=bed.sim.process(manager.start()))

    clients: list[DistributedNvmeClient] = []
    for i in range(n_clients):
        host_index = 1 + i
        with bed.sim.domain(f"host{host_index}"):
            client = DistributedNvmeClient(
                bed.sim, bed.smartio, bed.node(host_index),
                bed.nvme_device_id, base, queue_depth=queue_depth,
                queue_entries=queue_entries, sharing=sharing,
                slot_index=i, name=f"host{host_index}-nvme",
                tracer=tracer)
            if tele is not None:
                tele.attach(clients=[client])
            if san is not None:
                san.attach(clients=[client])
            bed.sim.run(until=bed.sim.process(client.start()))
        clients.append(client)
        registry.register(f"client:{client.name}", obj=client)

    # Deliberately *not* domain-tagged: under sharding the injector is
    # replicated into every shard so link state is visible at every
    # issue-side check (see repro.scenarios.sharded).
    injector = FaultInjector(bed.sim, registry, plan or FaultPlan(()),
                             tracer=tracer)
    return ChaosScenario(sim=bed.sim, clients=clients, manager=manager,
                         testbed=bed, registry=registry,
                         injector=injector, tracer=tracer,
                         plan=injector.plan, telemetry=tele,
                         sanitizer=san)
