"""Noisy-neighbour QoS scenario: N tenants on ONE shared queue pair.

The QoS arbitration point (docs/qos.md) sits where the controller picks
which tenant window to fetch the next SQE from.  That point only
*matters* when it is the saturated stage: with the default Optane-class
media (~6.9 us, 5 channels ~ 0.72 IO/us) the media drains slower than
the serialized fetch loop (~1 IO/us), so backlog pools inside the
device where no fetch policy can reorder it.  :data:`QOS_MEDIA` models
a faster low-latency device (~1.2 us, 8 channels ~ 6.7 IO/us) so the
shared-SQ fetch loop is the bottleneck — the regime where arbitration
decides who waits.

:func:`noisy_neighbor` packs one aggressor plus ``n_bystanders``
bystanders into a single shared QP (``reserved_qps=1``,
``sharing="force"``), window index = admission order = tenant index, so
``qos.weights`` line up with the client list.
"""

from __future__ import annotations

from ..config import (MediaConfig, QosConfig, SimulationConfig, replace)
from .builders import MultiHostScenario, multihost

#: Fast NVMe media (Z-NAND/XL-FLASH class) for QoS runs — see module
#: docstring for why the fetch loop must out-slow the media here.
QOS_MEDIA = MediaConfig(
    name="lowlat-znand",
    read_median_ns=1_200,
    write_median_ns=1_500,
    sigma=0.02,
    read_cap_ns=1_500,
    write_cap_ns=1_900,
    channels=8,
)

#: Arbitration policies :func:`noisy_neighbor` accepts; ``off`` keeps
#: the original round-robin fetch loop (bit-identical to the seed).
QOS_POLICIES = ("off", "fifo", "wfq", "strict")


def noisy_neighbor(n_bystanders: int = 3,
                   policy: str = "wfq",
                   quantum: int = 4,
                   weights: tuple[int, ...] = (),
                   throttle_window: int = 0,
                   config: SimulationConfig | None = None,
                   seed: int | None = None,
                   queue_depth: int = 63,
                   window_entries: int = 64,
                   telemetry: bool = True,
                   sanitizer: bool = False) -> MultiHostScenario:
    """One aggressor + ``n_bystanders`` bystanders on one shared QP.

    Client 0 (tenant ``host1``) is the designated aggressor — the
    builder only shapes the queue topology; the caller decides what
    load each tenant offers (see :func:`repro.qos.run_qos`).

    ``policy="off"`` leaves :class:`QosConfig` disabled so the run is
    bit-identical to a seed-configured cluster; any other value enables
    fetch arbitration with the given knobs.  ``throttle_window`` is
    recorded in the config for :class:`repro.qos.AdmissionThrottle`;
    the builder itself does not start the throttle process.
    """
    if policy not in QOS_POLICIES:
        raise ValueError(f"unknown policy {policy!r}; "
                         f"pick one of {QOS_POLICIES}")
    n_tenants = 1 + n_bystanders
    if n_tenants < 2:
        raise ValueError("need at least one bystander")
    if n_tenants > 16:
        raise ValueError("a shared QP holds at most 16 tenants")
    cfg = config or SimulationConfig()
    sq_entries = window_entries * n_tenants
    if sq_entries > cfg.nvme.max_queue_entries:
        raise ValueError(
            f"{n_tenants} windows x {window_entries} entries exceed "
            f"the device's {cfg.nvme.max_queue_entries}-entry queues")
    sharing = replace(cfg.sharing, enabled=True, reserved_qps=1,
                      sq_entries=sq_entries,
                      window_entries=window_entries)
    qos = QosConfig(
        enabled=policy != "off",
        policy=policy if policy != "off" else "fifo",
        quantum=quantum,
        weights=weights,
        throttle_window=throttle_window,
    )
    cfg = replace(cfg, sharing=sharing, qos=qos,
                  nvme=replace(cfg.nvme, media=QOS_MEDIA))
    return multihost(n_tenants, config=cfg, seed=seed,
                     queue_depth=queue_depth, sharing="force",
                     telemetry=telemetry, sanitizer=sanitizer)
