"""Prebuilt testbeds and benchmark scenarios (the paper's Fig. 9)."""

from .builders import (FIG10_SCENARIOS, MultiHostScenario, Scenario,
                       build_fig10_scenario, local_linux, multihost,
                       nvmeof_remote, ours_local, ours_remote,
                       scale_out_cluster)
from .chaos import CHAOS_RELIABILITY, ChaosScenario, chaos_cluster
from .cluster import (ClusterScenario, cluster, cluster_scale_out,
                      widen_sharing)
from .qos import QOS_MEDIA, QOS_POLICIES, noisy_neighbor
from .testbed import LocalTestbed, PcieTestbed, RdmaTestbed

__all__ = [
    "PcieTestbed", "LocalTestbed", "RdmaTestbed",
    "Scenario", "MultiHostScenario", "FIG10_SCENARIOS",
    "build_fig10_scenario", "local_linux", "nvmeof_remote",
    "ours_local", "ours_remote", "multihost", "scale_out_cluster",
    "ChaosScenario", "chaos_cluster", "CHAOS_RELIABILITY",
    "ClusterScenario", "cluster", "cluster_scale_out", "widen_sharing",
    "QOS_MEDIA", "QOS_POLICIES", "noisy_neighbor",
]
