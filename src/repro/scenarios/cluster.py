"""Multi-device cluster scenarios: M clients over N shared controllers.

The paper's topology shares *one* single-function controller; this
builder installs a controller (plus its :class:`NvmeManager`) in each
of the first ``n_devices`` hosts, registers them all with a
:class:`~repro.cluster.ClusterCoordinator`, and gives every client
host a :class:`~repro.cluster.ClusterVolume` — a striped, optionally
replicated namespace whose members the placement scheduler chose.

The same builder serves the perf path (``cluster_scale_out``: 64
clients across 4 devices, opening the aggregate-IOPS axis beyond the
single-controller ceiling) and the chaos path (``faults=True`` wires
the PR-2 fault plumbing through every controller and link so a device
can be killed mid-run and failover observed).
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..cluster import ClusterCoordinator, ClusterVolume
from ..config import ReliabilityConfig, SimulationConfig
from ..driver import DistributedNvmeClient, NvmeManager
from ..faults import FaultInjector, FaultPlan, FaultPointRegistry
from ..sim import NULL_TRACER, Simulator, Tracer
from ..telemetry.hub import Telemetry
from .chaos import with_chaos_reliability
from .testbed import PcieTestbed


def widen_sharing(config: SimulationConfig,
                  tenants_per_device: int) -> SimulationConfig:
    """Grow ``sharing.reserved_qps`` until one controller can admit
    ``tenants_per_device`` clients; raises if even a fully shared
    controller cannot."""
    limit = config.nvme.max_queue_pairs - 1
    share = config.sharing
    if not share.enabled or tenants_per_device <= limit:
        return config
    reserve = share.reserved_qps
    while (reserve < limit
           and dataclasses.replace(
               share,
               reserved_qps=reserve).capacity(limit) < tenants_per_device):
        reserve += 1
    if dataclasses.replace(
            share, reserved_qps=reserve).capacity(limit) \
            < tenants_per_device:
        raise ValueError(
            f"{tenants_per_device} clients exceed even a fully shared "
            f"controller ({limit} QPs x {share.windows_per_qp} windows)")
    if reserve == share.reserved_qps:
        return config
    return dataclasses.replace(
        config, sharing=dataclasses.replace(share, reserved_qps=reserve))


@dataclasses.dataclass
class ClusterScenario:
    """A live multi-device cluster, one volume per client host."""

    sim: Simulator
    volumes: list[ClusterVolume]
    subclients: list[DistributedNvmeClient]
    managers: dict[int, NvmeManager]        # device_id -> manager
    controllers: list[t.Any]
    coordinator: ClusterCoordinator
    testbed: PcieTestbed
    telemetry: Telemetry | None = None
    sanitizer: t.Any = None
    # fault plumbing, present when built with ``faults=True``
    registry: FaultPointRegistry | None = None
    injector: FaultInjector | None = None
    tracer: Tracer | None = None
    plan: FaultPlan | None = None

    @property
    def clients(self) -> list[ClusterVolume]:
        """Workload-facing devices (``run_fio_many`` symmetry)."""
        return self.volumes

    def ctrl_points(self) -> list[str]:
        return [c.fault_point for c in self.controllers]

    def trace_log(self, *categories: str) -> list[tuple]:
        assert self.tracer is not None, "built without faults=True"
        wanted = set(categories) or None
        return [r.as_tuple() for r in self.tracer.records
                if wanted is None or r.category in wanted]


def cluster(n_clients: int = 8, n_devices: int = 2,
            width: int = 1, replicas: int = 1,
            stripe_lbas: int = 128, volume_lbas: int = 1 << 20,
            config: SimulationConfig | None = None,
            seed: int | None = None, queue_depth: int = 16,
            sharing: str = "auto",
            telemetry: bool = False, sanitizer: bool = False,
            faults: bool = False, plan: FaultPlan | None = None,
            reliability: ReliabilityConfig | None = None,
            trace_categories: t.Collection[str] | None = None,
            shard_boundary: bool = False,
            ) -> ClusterScenario:
    """N controllers in hosts ``0..n_devices-1``, clients behind them.

    Every client host gets one volume, placed by the least-loaded
    scheduler over ``width`` member devices with ``replicas`` copies
    per chunk.  With ``faults=True`` the chaos plumbing (tracer, fault
    registry, injector) is threaded through every controller and link;
    the injector is created but **not started**.
    """
    if n_devices < 1:
        raise ValueError("need at least one device")
    if not 1 <= width <= n_devices:
        raise ValueError(f"width {width} must be in [1, {n_devices}]")
    base = config or SimulationConfig()
    if faults:
        base = with_chaos_reliability(base, reliability)
    # Placement balances equal-size volumes, so the per-device tenant
    # count is the balanced share; widen the shared-QP reserve for it.
    per_device = -(-n_clients * width // n_devices)
    base = widen_sharing(base, per_device)

    n_hosts = n_devices + n_clients
    bed = PcieTestbed(config=base, n_hosts=max(2, n_hosts),
                      with_nvme=True, seed=seed,
                      shard_boundary=shard_boundary)
    assert bed.nvme is not None
    controllers = [bed.nvme]
    for i in range(1, n_devices):
        controllers.append(bed.install_nvme(i))

    tracer: Tracer | None = None
    registry: FaultPointRegistry | None = None
    if faults:
        tracer = Tracer(bed.sim, categories=trace_categories)
        bed.tracer = tracer
        bed.fabric.tracer = tracer
        registry = FaultPointRegistry(bed.sim)
        for host, ntb in zip(bed.hosts, bed.ntbs):
            registry.register(f"link:{host.name}", obj=ntb)
        bed.fabric.faults = registry
        for ctrl in controllers:
            ctrl.tracer = tracer
            ctrl.faults = registry
            registry.register(ctrl.fault_point, obj=ctrl)

    tele = None
    if telemetry:
        tele = Telemetry(bed.sim).attach(fabric=bed.fabric, ntbs=bed.ntbs,
                                         controllers=controllers,
                                         faults=registry)
    san = None
    if sanitizer:
        from ..sanitizer import ShareSan
        san = ShareSan(bed.sim, telemetry=tele).attach(
            controllers=controllers, ntbs=bed.ntbs, hosts=bed.hosts)

    trc = tracer if tracer is not None else NULL_TRACER
    coordinator = ClusterCoordinator()
    managers: dict[int, NvmeManager] = {}
    device_ids = list(bed.nvme_device_ids)
    for i, ctrl in enumerate(controllers):
        device_id = device_ids[i]
        with bed.sim.domain(f"host{i}"):
            manager = NvmeManager(bed.sim, bed.smartio, bed.node(i),
                                  device_id, base, tracer=trc)
            if tele is not None:
                tele.attach(managers=[manager])
            if san is not None:
                san.attach(managers=[manager])
            bed.sim.run(until=bed.sim.process(manager.start()))
        managers[device_id] = manager
        coordinator.add_backend(device_id, manager)

    next_slot = {d: 0 for d in device_ids}
    volumes: list[ClusterVolume] = []
    subclients: list[DistributedNvmeClient] = []
    for i in range(n_clients):
        host_index = n_devices + i
        layout = coordinator.create_volume(
            f"vol{i}", capacity_lbas=volume_lbas, width=width,
            replicas=replicas, stripe_lbas=stripe_lbas)
        paths: list[DistributedNvmeClient] = []
        with bed.sim.domain(f"host{host_index}"):
            for device_id in layout.devices:
                slot = next_slot[device_id]
                next_slot[device_id] += 1
                sub = DistributedNvmeClient(
                    bed.sim, bed.smartio, bed.node(host_index),
                    device_id, base, queue_depth=queue_depth,
                    sharing=sharing, slot_index=slot,
                    name=f"host{host_index}-d{device_id}", tracer=trc)
                if tele is not None:
                    tele.attach(clients=[sub])
                if san is not None:
                    san.attach(clients=[sub])
                bed.sim.run(until=bed.sim.process(sub.start()))
                if registry is not None:
                    registry.register(f"client:{sub.name}", obj=sub)
                paths.append(sub)
                subclients.append(sub)
            volume = ClusterVolume(bed.sim, layout, paths,
                                   queue_depth=queue_depth, tracer=trc)
            if tele is not None:
                tele.attach(volumes=[volume])
        volumes.append(volume)

    injector = None
    the_plan = None
    if faults:
        assert registry is not None and tracer is not None
        injector = FaultInjector(bed.sim, registry, plan or FaultPlan(()),
                                 tracer=tracer)
        the_plan = injector.plan
    return ClusterScenario(sim=bed.sim, volumes=volumes,
                           subclients=subclients, managers=managers,
                           controllers=controllers,
                           coordinator=coordinator, testbed=bed,
                           telemetry=tele, sanitizer=san,
                           registry=registry, injector=injector,
                           tracer=tracer, plan=the_plan)


def cluster_scale_out(n_clients: int = 64, n_devices: int = 4,
                      width: int = 1, replicas: int = 1,
                      config: SimulationConfig | None = None,
                      seed: int | None = None, queue_depth: int = 16,
                      telemetry: bool = False,
                      sanitizer: bool = False) -> ClusterScenario:
    """The aggregate-IOPS scenario: 64 clients spread over 4 devices.

    With one device this degenerates to the PR-5 shared-QP cluster
    (64 tenants on a 31-QP controller); with four, placement spreads
    the same clients 16-per-device and the aggregate scales with the
    added media and queue resources — the ratio
    ``benchmarks/bench_cluster_scaling.py`` records and CI gates.
    """
    return cluster(n_clients=n_clients, n_devices=n_devices,
                   width=width, replicas=replicas, config=config,
                   seed=seed, queue_depth=queue_depth,
                   telemetry=telemetry, sanitizer=sanitizer)
