"""Reusable cluster testbeds.

:class:`PcieTestbed` builds the paper's hardware: N hosts, each with a
Dolphin-style NTB adapter (MXH932), cabled to a central NTB cluster
switch (MXS924), with a single-function NVMe controller installed in one
host (Fig. 9b).  SISCI runtimes and the SmartIO service are instantiated
on top, so driver code can be written exactly as the paper describes.

Path host_i -> NVMe-host crosses three switch chips each direction
(adapter, cluster switch, adapter), matching ``ClusterConfig`` defaults.
"""

from __future__ import annotations

import typing as t

from ..config import SimulationConfig
from ..nvme import NvmeController
from ..nvme.media import Media
from ..pcie import Cluster, Fabric, Host, NtbFunction
from ..sim import NULL_TRACER, ShardBoundary, Simulator
from ..sisci import SegmentId, SisciNode
from ..smartio import SmartIoService
from ..units import MiB


class PcieTestbed:
    """N NTB-connected hosts; optional NVMe controller in ``hosts[0]``."""

    def __init__(self, config: SimulationConfig | None = None,
                 n_hosts: int = 2, with_nvme: bool = True,
                 media: Media | None = None,
                 dram_size: int = 512 * MiB,
                 extra_path_chips: int = 0,
                 tracer=NULL_TRACER, seed: int | None = None,
                 shard_boundary: bool = False) -> None:
        self.config = config or SimulationConfig()
        self.sim = Simulator(seed=self.config.seed
                             if seed is None else seed)
        self.tracer = tracer
        self.cluster = Cluster(self.sim, self.config.pcie)
        self.fabric = Fabric(self.sim, self.cluster, self.config.pcie,
                             tracer=tracer)

        self.hosts: list[Host] = []
        self.ntbs: list[NtbFunction] = []
        self.sisci_nodes: list[SisciNode] = []
        directory: dict[SegmentId, t.Any] = {}
        self.smartio = SmartIoService(self.sim)

        xswitch = self.cluster.add_switch("mxs924")
        ccfg = self.config.cluster
        for i in range(n_hosts):
            # Everything a host owns — and any process spawned while
            # building it — carries the host's timing-domain tag (inert
            # unless a shard boundary is installed; see repro.sim.shard).
            with self.sim.domain(f"host{i}"):
                host = self.cluster.add_host(f"host{i}",
                                             dram_size=dram_size)
                adapter = self.cluster.add_switch(f"host{i}.mxh932",
                                                  host=host)
                self.cluster.connect(host.rc, adapter,
                                     bandwidth=ccfg.ntb_link_bandwidth)
                # ``extra_path_chips`` chains additional switch chips
                # between host0's adapter and the cluster switch — the
                # hop-count ablation for the paper's 100-150 ns/chip
                # claim.
                upstream = adapter
                if i == 0:
                    for k in range(extra_path_chips):
                        chip = self.cluster.add_switch(f"extra-chip{k}")
                        self.cluster.connect(
                            upstream, chip,
                            bandwidth=ccfg.ntb_link_bandwidth)
                        upstream = chip
                self.cluster.connect(upstream, xswitch,
                                     bandwidth=ccfg.ntb_link_bandwidth)
                ntb = NtbFunction(self.sim, f"host{i}.ntb",
                                  aperture=ccfg.ntb_aperture_bytes)
                ntb.install(host, adapter, self.fabric)
                node = SisciNode(self.sim, host, ntb, self.fabric,
                                 node_id=i + 4, directory=directory)
                self.smartio.register_node(node)
            self.hosts.append(host)
            self.ntbs.append(ntb)
            self.sisci_nodes.append(node)

        #: timing domains, in shard-assignment order
        self.domains: tuple[str, ...] = tuple(
            f"host{i}" for i in range(n_hosts))
        if shard_boundary:
            node_domain = {name: node.host.name
                           for name, node in self.cluster.nodes.items()
                           if node.host is not None}
            # The hop-count ablation chips hang off host0's branch but
            # are built host-less; without an explicit tag they would
            # look like shared fan-in and break replica partitioning.
            for k in range(extra_path_chips):
                node_domain[f"extra-chip{k}"] = "host0"
            pcfg = self.config.pcie
            self.fabric.boundary = ShardBoundary(
                self.sim, self.domains, node_domain,
                lookahead_ns=(pcfg.switch_latency_min_ns
                              + pcfg.root_complex_latency_ns))

        self.nvme: NvmeController | None = None
        self.nvme_device_id: int | None = None
        self.nvme_device_ids: list[int] = []
        if with_nvme:
            self.nvme = self.install_nvme(0, media=media)

    def install_nvme(self, host_index: int,
                     media: Media | None = None,
                     name: str | None = None) -> NvmeController:
        """Install an NVMe controller endpoint in a host (Gen3 x4 link)
        and register it with SmartIO."""
        host = self.hosts[host_index]
        name = name or f"nvme{host_index}"
        with self.sim.domain(host.name):
            node = self.cluster.add_endpoint(f"{host.name}.{name}",
                                             host=host)
            self.cluster.connect(host.rc, node, bandwidth=3.2)
            ctrl = NvmeController(self.sim, name, self.config.nvme,
                                  media=media, tracer=self.tracer)
            if self.config.qos.enabled:
                # QoS fetch arbitration (docs/qos.md): shared SQs the
                # manager creates on this controller get an arbiter.
                ctrl.qos = self.config.qos
            ctrl.install(host, node, self.fabric)
            device_id = self.smartio.register_device(ctrl)
        boundary = self.fabric.boundary
        if boundary is not None:
            boundary.node_domain[node.name] = host.name
        self.nvme_device_ids.append(device_id)
        if self.nvme_device_id is None:
            self.nvme_device_id = device_id
        return ctrl

    def node(self, index: int) -> SisciNode:
        return self.sisci_nodes[index]


class RdmaTestbed:
    """Two standalone hosts joined by a 100 Gb/s RDMA link; NVMe in
    ``target_host`` — the NVMe-oF scenario of Fig. 9a."""

    def __init__(self, config: SimulationConfig | None = None,
                 media: Media | None = None,
                 dram_size: int = 512 * MiB,
                 tracer=NULL_TRACER, seed: int | None = None) -> None:
        from ..rdma import IbLink, RdmaNic

        self.config = config or SimulationConfig()
        self.sim = Simulator(seed=self.config.seed
                             if seed is None else seed)
        self.tracer = tracer
        self.cluster = Cluster(self.sim, self.config.pcie)
        self.fabric = Fabric(self.sim, self.cluster, self.config.pcie,
                             tracer=tracer)

        self.target_host = self.cluster.add_host("target",
                                                 dram_size=dram_size)
        self.initiator_host = self.cluster.add_host("initiator",
                                                    dram_size=dram_size)

        nvme_node = self.cluster.add_endpoint("target.nvme0",
                                              host=self.target_host)
        self.cluster.connect(self.target_host.rc, nvme_node, bandwidth=3.2)
        self.nvme = NvmeController(self.sim, "nvme0", self.config.nvme,
                                   media=media, tracer=tracer)
        self.nvme.install(self.target_host, nvme_node, self.fabric)

        # ConnectX-5-class NICs on Gen3 x16-ish links.
        tgt_nic_node = self.cluster.add_endpoint("target.cx5",
                                                 host=self.target_host)
        ini_nic_node = self.cluster.add_endpoint("initiator.cx5",
                                                 host=self.initiator_host)
        self.cluster.connect(self.target_host.rc, tgt_nic_node,
                             bandwidth=14.0)
        self.cluster.connect(self.initiator_host.rc, ini_nic_node,
                             bandwidth=14.0)
        self.target_nic = RdmaNic(self.sim, "target-cx5",
                                  self.config.rdma)
        self.target_nic.install(self.target_host, tgt_nic_node,
                                self.fabric)
        self.initiator_nic = RdmaNic(self.sim, "initiator-cx5",
                                     self.config.rdma)
        self.initiator_nic.install(self.initiator_host, ini_nic_node,
                                   self.fabric)
        self.link = IbLink(self.sim, self.config.rdma)
        self.link.attach(self.target_nic, self.initiator_nic)


class LocalTestbed:
    """A single host with a local NVMe controller and no NTB fabric —
    the 'local baseline' machine of Fig. 9a."""

    def __init__(self, config: SimulationConfig | None = None,
                 media: Media | None = None,
                 dram_size: int = 512 * MiB,
                 tracer=NULL_TRACER, seed: int | None = None) -> None:
        self.config = config or SimulationConfig()
        self.sim = Simulator(seed=self.config.seed
                             if seed is None else seed)
        self.tracer = tracer
        self.cluster = Cluster(self.sim, self.config.pcie)
        self.fabric = Fabric(self.sim, self.cluster, self.config.pcie,
                             tracer=tracer)
        self.host = self.cluster.add_host("host0", dram_size=dram_size)
        node = self.cluster.add_endpoint("host0.nvme0", host=self.host)
        self.cluster.connect(self.host.rc, node, bandwidth=3.2)
        self.nvme = NvmeController(self.sim, "nvme0", self.config.nvme,
                                   media=media, tracer=tracer)
        self.nvme.install(self.host, node, self.fabric)
