"""The SmartIO host-abstraction service (paper Sec. IV).

A cluster-wide service that

* registers devices under unique cluster-wide identifiers and tracks
  which host they physically live in;
* auto-exports device BARs as segments, so any host can memory-map a
  remote device's registers through its NTB;
* maps SISCI segments *for a device* ("DMA windows"): sets up the
  device-side NTB so the device's native DMA engine reaches (possibly
  remote) segment memory, and hands back the device-visible address —
  callers stay agnostic of physical address-space layouts;
* supports exclusive/non-exclusive device acquisition; and
* allocates segments by access-pattern *hint* rather than by host name.

All of this is control-plane work: it happens at setup, never per-I/O.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..pcie import Bar, NtbFunction, PCIeFunction
from ..sim import Simulator
from ..sisci import LocalSegment, SisciError, SisciNode
from .hints import AccessHints, Placement


class SmartIoError(Exception):
    pass


@dataclasses.dataclass
class DeviceRecord:
    device_id: int
    function: PCIeFunction
    node: SisciNode                  # SISCI runtime of the device's host
    exclusive_ref: "DeviceRef | None" = None
    refs: list["DeviceRef"] = dataclasses.field(default_factory=list)
    #: (node_id, segment_id) of the manager's metadata segment, once a
    #: manager has claimed the device (distributed-driver protocol).
    metadata_segment: tuple[int, int] | None = None


class DeviceRef:
    """A host's handle on a registered device."""

    def __init__(self, service: "SmartIoService", record: DeviceRecord,
                 node: SisciNode, exclusive: bool) -> None:
        self.service = service
        self.record = record
        self.node = node                  # the *acquiring* host's runtime
        self.exclusive = exclusive
        self.released = False
        self._bar_windows: list[int] = []
        self._dma_windows: list[int] = []

    # -- registers ------------------------------------------------------------

    @property
    def function(self) -> PCIeFunction:
        return self.record.function

    def map_bar(self, bar_index: int = 0) -> int:
        """Map a device BAR for this host's CPU; returns the local
        physical address (through the NTB when the device is remote)."""
        self._check_live()
        bar = self.record.function.bars[bar_index]
        assert bar.base is not None
        device_host = self.record.node.host
        if device_host is self.node.host:
            return bar.base
        window = self.node.ntb.map_window(
            device_host, bar.base, bar.size,
            label=f"bar{bar_index}-dev{self.record.device_id}")
        self._bar_windows.append(window)
        return window

    # -- DMA windows -------------------------------------------------------------

    def map_segment_for_device(self, segment: LocalSegment) -> int:
        """Make ``segment`` reachable by the device's DMA engine.

        Returns the address the *device* must use (an address in the
        device host's space) — the "resolved address" drivers place in
        SQEs and PRPs.  SmartIO resolves the multi-address-space problem
        here so driver code never sees a remote host's layout.
        """
        self._check_live()
        device_host = self.record.node.host
        if segment.host is device_host:
            return segment.phys_addr
        window = self.record.node.ntb.map_window(
            segment.host, segment.phys_addr, segment.size,
            label=f"dmawin-{segment.id}-dev{self.record.device_id}")
        self._dma_windows.append(window)
        return window

    def unmap_segment_for_device(self, device_addr: int) -> None:
        """Tear down a DMA window from :meth:`map_segment_for_device`.

        A no-op for device-local segments (which needed no window).
        Used when queue memory is given back before the device ever saw
        the address — e.g. a private-QP request redirected to a shared
        queue pair.
        """
        self._check_live()
        if device_addr in self._dma_windows:
            self.record.node.ntb.unmap_window(device_addr)
            self._dma_windows.remove(device_addr)

    # -- lifecycle -----------------------------------------------------------------

    def downgrade(self) -> None:
        """Drop exclusivity while keeping the reference (manager pattern:
        lock, reset and prepare the device, then allow others in)."""
        self._check_live()
        if self.exclusive:
            self.exclusive = False
            self.record.exclusive_ref = None

    def release(self) -> None:
        if self.released:
            return
        self.released = True
        for window in self._bar_windows:
            self.node.ntb.unmap_window(window)
        for window in self._dma_windows:
            self.record.node.ntb.unmap_window(window)
        self._bar_windows.clear()
        self._dma_windows.clear()
        if self.exclusive:
            self.record.exclusive_ref = None
        self.record.refs.remove(self)

    def _check_live(self) -> None:
        if self.released:
            raise SmartIoError("device reference has been released")


class SmartIoService:
    """Cluster-wide device registry + placement service."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._devices: dict[int, DeviceRecord] = {}
        self._nodes: dict[int, SisciNode] = {}
        self._next_device_id = 1
        self._next_segment_id = 0x5000_0000  # hinted-allocation namespace

    # -- node / device registration -------------------------------------------

    def register_node(self, node: SisciNode) -> None:
        if node.node_id in self._nodes:
            raise SmartIoError(f"node id {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def register_device(self, function: PCIeFunction) -> int:
        """Register a device; its BARs become cluster-visible."""
        node = self._node_for_host(function.host)
        device_id = self._next_device_id
        self._next_device_id += 1
        self._devices[device_id] = DeviceRecord(device_id, function, node)
        return device_id

    def _node_for_host(self, host) -> SisciNode:
        for node in self._nodes.values():
            if node.host is host:
                return node
        raise SmartIoError(f"host {host} has no registered SISCI node")

    # -- discovery -----------------------------------------------------------------

    def list_devices(self) -> list[tuple[int, str, str]]:
        """(device_id, function name, host name) for every device."""
        return [(r.device_id, r.function.name, r.node.host.name)
                for r in self._devices.values()]

    def device_host_name(self, device_id: int) -> str:
        return self._record(device_id).node.host.name

    def set_device_metadata(self, device_id: int,
                            location: tuple[int, int]) -> None:
        """Advertise the (node_id, segment_id) of a manager's metadata
        segment — part of the information SmartIO "distributes ... to
        other hosts in the network" (paper Sec. IV)."""
        self._record(device_id).metadata_segment = location

    def device_metadata(self, device_id: int) -> tuple[int, int]:
        location = self._record(device_id).metadata_segment
        if location is None:
            raise SmartIoError(
                f"device {device_id} is not managed (no metadata segment)")
        return location

    def _record(self, device_id: int) -> DeviceRecord:
        try:
            return self._devices[device_id]
        except KeyError:
            raise SmartIoError(f"unknown device id {device_id}") from None

    # -- acquisition ----------------------------------------------------------------

    def acquire(self, device_id: int, node: SisciNode,
                exclusive: bool = False) -> DeviceRef:
        record = self._record(device_id)
        if record.exclusive_ref is not None:
            raise SmartIoError(
                f"device {device_id} is exclusively held")
        if exclusive and record.refs:
            raise SmartIoError(
                f"device {device_id} has {len(record.refs)} active "
                "references; cannot lock")
        ref = DeviceRef(self, record, node, exclusive)
        record.refs.append(ref)
        if exclusive:
            record.exclusive_ref = ref
        return ref

    # -- hinted allocation -------------------------------------------------------------

    def alloc_segment_hinted(self, requester: SisciNode, device_id: int,
                             size: int, hints: AccessHints,
                             segment_id: int | None = None) -> LocalSegment:
        """Allocate a segment in the host chosen by the access hints.

        ``requester`` is the CPU side of the hint; the device side is the
        host the device lives in.  The segment is created available.
        """
        return self.alloc_segment_placed(requester, device_id, size,
                                         hints.placement(), segment_id)

    def alloc_segment_placed(self, requester: SisciNode, device_id: int,
                             size: int, placement: Placement,
                             segment_id: int | None = None) -> LocalSegment:
        """Allocate a segment on an explicitly chosen side.

        Benchmarks use this to ablate the hint heuristics (e.g. forcing
        an SQ into client memory to measure the Fig. 8 effect).
        """
        record = self._record(device_id)
        owner = (record.node if placement is Placement.DEVICE_SIDE
                 else requester)
        if segment_id is None:
            segment_id = self._next_segment_id
            self._next_segment_id += 1
        seg = owner.create_segment(segment_id, size)
        seg.set_available()
        return seg
