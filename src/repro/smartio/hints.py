"""Access-pattern hints for segment placement (paper Sec. IV, Fig. 8).

Instead of naming a host, callers describe who touches the memory and
how; SmartIO places the segment to keep *non-posted reads* short:

* the device mostly **reads** it (an SQ: CPU writes commands, controller
  fetches them) -> allocate in **device-side** memory, so the controller
  never reads across the NTB;
* the device mostly **writes** it (a CQ or read-data buffer: controller
  posts, CPU polls) -> allocate in **CPU-side** memory, so polling is
  local and the device's writes ride cheap posted transactions.

Ties fall back to CPU-side placement (polling locality wins — reads by
the CPU across the NTB would stall the processor, while the device
tolerates posted-write distance for free).
"""

from __future__ import annotations

import dataclasses
import enum


class Placement(enum.Enum):
    DEVICE_SIDE = "device"
    CPU_SIDE = "cpu"


@dataclasses.dataclass(frozen=True)
class AccessHints:
    """Expected access pattern of a segment."""

    device_reads: bool = False
    device_writes: bool = False
    cpu_reads: bool = False
    cpu_writes: bool = False

    def placement(self) -> Placement:
        if self.device_reads and not self.device_writes:
            return Placement.DEVICE_SIDE
        if self.device_writes and not self.device_reads:
            return Placement.CPU_SIDE
        if self.cpu_reads and not self.cpu_writes:
            # CPU polls it: keep it local to the CPU.
            return Placement.CPU_SIDE
        if self.cpu_writes and not self.cpu_reads:
            return Placement.DEVICE_SIDE
        return Placement.CPU_SIDE


#: An SQ: written by driver software, fetched (read) by the controller.
SQ_HINTS = AccessHints(device_reads=True, cpu_writes=True)
#: A CQ: posted (written) by the controller, polled (read) by software.
CQ_HINTS = AccessHints(device_writes=True, cpu_reads=True)
#: A data bounce buffer: both sides read and write.
BUFFER_HINTS = AccessHints(device_reads=True, device_writes=True,
                           cpu_reads=True, cpu_writes=True)
