"""SmartIO device-oriented shared-memory extension: cluster-wide device
registry, BAR export, DMA windows and hint-based segment placement."""

from .hints import (AccessHints, Placement, BUFFER_HINTS, CQ_HINTS,
                    SQ_HINTS)
from .service import DeviceRecord, DeviceRef, SmartIoError, SmartIoService

__all__ = ["SmartIoService", "DeviceRef", "DeviceRecord", "SmartIoError",
           "AccessHints", "Placement", "SQ_HINTS", "CQ_HINTS",
           "BUFFER_HINTS"]
