"""PCIe device functions and BARs.

A :class:`PCIeFunction` owns one or more BARs; each BAR is a contiguous
MMIO region whose reads/writes are dispatched to the function's handler
methods *at TLP delivery time* (not submission time), so doorbell side
effects observe correct arrival ordering.

Functions are attached to a :class:`~repro.pcie.topology.Node` in some
host; their BARs are assigned host physical addresses at install time
(modelling enumeration).
"""

from __future__ import annotations

import typing as t

from ..sim import Simulator
from .topology import Host, Node

if t.TYPE_CHECKING:  # pragma: no cover
    from .fabric import Fabric


class Bar:
    """One Base Address Register region of a function."""

    __slots__ = ("function", "index", "size", "base")

    def __init__(self, function: "PCIeFunction", index: int, size: int) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError("BAR size must be a positive power of two")
        self.function = function
        self.index = index
        self.size = size
        self.base: int | None = None  # assigned at install

    def contains(self, addr: int, length: int = 1) -> bool:
        return (self.base is not None and self.base <= addr
                and addr + length <= self.base + self.size)

    def offset_of(self, addr: int) -> int:
        assert self.base is not None
        return addr - self.base

    def __repr__(self) -> str:  # pragma: no cover
        loc = f"{self.base:#x}" if self.base is not None else "unassigned"
        return (f"<BAR{self.index} of {self.function.name} "
                f"size={self.size:#x} at {loc}>")


class PCIeFunction:
    """Base class for device functions (NVMe controller, NTB, NIC)."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.bars: dict[int, Bar] = {}
        self.host: Host | None = None
        self.node: Node | None = None
        self.fabric: "Fabric | None" = None

    # -- construction ----------------------------------------------------

    def add_bar(self, index: int, size: int) -> Bar:
        if index in self.bars:
            raise ValueError(f"{self.name}: BAR{index} already exists")
        bar = Bar(self, index, size)
        self.bars[index] = bar
        return bar

    def install(self, host: Host, node: Node, fabric: "Fabric") -> None:
        """Attach the function to a host at a topology node and assign
        BAR addresses in the host's physical address space."""
        if self.host is not None:
            raise RuntimeError(f"{self.name} is already installed")
        self.host = host
        self.node = node
        self.fabric = fabric
        host.functions.append(self)
        for bar in self.bars.values():
            bar.base = host.assign_bar(
                bar.size, bar, label=f"{self.name}.bar{bar.index}")
        self.on_installed()

    def on_installed(self) -> None:
        """Hook for subclasses (e.g. to start controller processes)."""

    # -- MMIO dispatch (invoked by the fabric at delivery time) -----------

    def mmio_read(self, bar: Bar, offset: int, length: int) -> bytes:
        raise NotImplementedError(
            f"{self.name}: BAR{bar.index} read at {offset:#x} unsupported")

    def mmio_write(self, bar: Bar, offset: int, data: bytes) -> None:
        raise NotImplementedError(
            f"{self.name}: BAR{bar.index} write at {offset:#x} unsupported")

    # -- DMA helpers (the function acting as bus master) --------------------

    def dma_read(self, addr: int, length: int):
        """Generator: read ``length`` bytes at ``addr`` in the function's
        host address space (non-posted, full round trip)."""
        assert self.fabric is not None and self.host and self.node
        return self.fabric.read(self.node, self.host, addr, length)

    def dma_write(self, addr: int, data: bytes):
        """Generator: posted write; completes when the write is *delivered*
        (device models typically don't wait on it, but the generator lets
        them when ordering matters)."""
        assert self.fabric is not None and self.host and self.node
        return self.fabric.write(self.node, self.host, addr, data)

    def __repr__(self) -> str:  # pragma: no cover
        where = self.host.name if self.host else "uninstalled"
        return f"<{type(self).__name__} {self.name} in {where}>"
