"""Cluster topology: nodes, links and hosts.

The physical layout is a graph whose nodes are PCIe agents:

* ``rc`` — a host's root complex (also where CPU-originated transactions
  enter the fabric);
* ``switch`` — a PCIe switch chip (including NTB adapter cards and the
  Dolphin cluster switch, which *are* switch chips — each traversal
  costs the paper's 100-150 ns per direction);
* ``endpoint`` — a device function's attachment point.

Hosts own DRAM, an address map, and the set of functions installed in
them.  Path computation is a plain BFS over the (small) graph with
memoised results; we do not need networkx's generality on a ~10-node
graph and this keeps the hot path allocation-free.
"""

from __future__ import annotations

import typing as t

from ..config import PcieConfig
from ..memory import HostMemory, RangeAllocator
from ..sim import Resource, Simulator
from .address import AddressMap

if t.TYPE_CHECKING:  # pragma: no cover
    from .device import PCIeFunction


class TopologyError(Exception):
    pass


class _BufferedDraw:
    """Batched uniform draws from one switch-chip stream.

    ``gen.integers(lo, hi, size=N)`` consumes the underlying bit stream
    element-wise, so serving from a prefetched batch yields *bit-identical*
    values, in the same order, as the scalar calls it replaces — at ~1/40th
    the per-draw cost.  One instance per stream is shared by every hop
    plan referencing that chip, so the globally served sequence matches
    what per-call scalar draws in ``hop_latency`` order would produce.
    The batch is converted to Python ints up front: latencies must stay
    plain ``int`` (numpy scalars would leak into heap keys and exports).
    """

    __slots__ = ("gen", "lo", "hi", "buf", "pos")

    BATCH = 256

    def __init__(self, gen, lo: int, hi: int) -> None:
        self.gen = gen
        self.lo = lo
        self.hi = hi              # exclusive, mirroring uniform_ns
        self.buf: list[int] = []
        self.pos = 0


class Node:
    """A PCIe agent in the cluster graph."""

    __slots__ = ("name", "kind", "neighbors", "host")

    def __init__(self, name: str, kind: str,
                 host: "Host | None" = None) -> None:
        if kind not in ("rc", "switch", "endpoint"):
            raise ValueError(f"unknown node kind: {kind}")
        self.name = name
        self.kind = kind
        self.host = host
        self.neighbors: dict[Node, Link] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.name} ({self.kind})>"


class Link:
    """A full-duplex point-to-point link between two nodes.

    Each direction is an independent FIFO resource; holding it for the
    payload's serialization time models cut-through occupancy and gives
    natural queueing under contention.
    """

    __slots__ = ("a", "b", "bandwidth", "name", "_res")

    def __init__(self, sim: Simulator, a: Node, b: Node,
                 bandwidth: float, name: str = "") -> None:
        if bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        self.a = a
        self.b = b
        self.bandwidth = bandwidth
        self.name = name or f"{a.name}<->{b.name}"
        self._res = {(a, b): Resource(sim, 1), (b, a): Resource(sim, 1)}

    def resource(self, src: Node, dst: Node) -> Resource:
        try:
            return self._res[(src, dst)]
        except KeyError:
            raise TopologyError(
                f"link {self.name} does not join {src.name}->{dst.name}"
            ) from None


class Host:
    """One computer system: RC + DRAM + devices + an address map."""

    #: where DRAM is mapped in every host's physical space
    DRAM_BASE = 0x0000_0000_1000_0000
    #: MMIO region for BAR assignment
    MMIO_BASE = 0x0000_00E0_0000_0000
    MMIO_LIMIT = 0x0000_00F0_0000_0000

    def __init__(self, sim: Simulator, name: str,
                 dram_size: int = 1 << 30) -> None:
        self.sim = sim
        self.name = name
        self.rc = Node(f"{name}.rc", "rc", host=self)
        self.memory = HostMemory(sim, dram_size, base=self.DRAM_BASE,
                                 name=f"{name}.dram")
        self.dram_alloc = RangeAllocator(self.DRAM_BASE, dram_size,
                                         name=f"{name}.dram-alloc")
        self.addr_map = AddressMap(name=f"{name}.addrmap")
        self.addr_map.add(self.DRAM_BASE, dram_size, self.memory,
                          label="dram")
        self._mmio_cursor = self.MMIO_BASE
        self.functions: list["PCIeFunction"] = []

    def alloc_dma(self, size: int, alignment: int = 4096) -> int:
        """Allocate DMA-able DRAM; returns a physical address."""
        return self.dram_alloc.alloc(size, alignment)

    def free_dma(self, addr: int) -> None:
        self.dram_alloc.free(addr)

    def assign_bar(self, size: int, target: t.Any, label: str) -> int:
        """Assign an MMIO range for a BAR (enumeration-time behaviour)."""
        base = self.addr_map.find_free(size, self._mmio_cursor,
                                       self.MMIO_LIMIT,
                                       alignment=max(0x1000, size))
        self.addr_map.add(base, size, target, label=label)
        self._mmio_cursor = base + size
        return base


class Cluster:
    """The whole PCIe network: hosts, external switches, and links."""

    def __init__(self, sim: Simulator, config: PcieConfig) -> None:
        self.sim = sim
        self.config = config
        self.hosts: dict[str, Host] = {}
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        self._paths: dict[tuple[Node, Node], tuple[Node, ...]] = {}
        # Per-path latency plans: (fixed_ns, (_BufferedDraw, ...)).  Plans
        # cache which streams to draw from, never *which value comes next*
        # — each draw still advances its stream exactly once per traversed
        # chip, in hop_latency call order, so RNG consumption is identical
        # with and without the cache.
        self._hop_plans: dict[tuple[Node, ...], tuple] = {}
        # (path, cut) -> (pre_fixed, pre_draws, suf_fixed, suf_draws)
        self._split_hop_plans: dict[tuple, tuple] = {}
        self._links_plans: dict[tuple[Node, ...],
                                tuple[tuple[Link, Node, Node], ...]] = {}
        # Per-switch-stream batched draws, shared across all hop plans so
        # the globally served sequence per stream is exactly what scalar
        # ``integers`` calls in hop_latency order would have produced.
        # Survives ``connect()`` — clearing it would skip prefetched
        # values and diverge from the scalar draw order.
        self._draw_buffers: dict[str, "_BufferedDraw"] = {}

    # -- construction -----------------------------------------------------

    def add_host(self, name: str, dram_size: int = 1 << 30) -> Host:
        if name in self.hosts:
            raise TopologyError(f"duplicate host name: {name}")
        host = Host(self.sim, name, dram_size)
        self.hosts[name] = host
        self._register(host.rc)
        return host

    def add_switch(self, name: str, host: Host | None = None) -> Node:
        node = Node(name, "switch", host=host)
        self._register(node)
        return node

    def add_endpoint(self, name: str, host: Host | None = None) -> Node:
        node = Node(name, "endpoint", host=host)
        self._register(node)
        return node

    def connect(self, a: Node, b: Node,
                bandwidth: float | None = None) -> Link:
        if b in a.neighbors:
            raise TopologyError(f"{a.name} and {b.name} already connected")
        link = Link(self.sim, a, b,
                    bandwidth or self.config.default_link_bandwidth)
        a.neighbors[b] = link
        b.neighbors[a] = link
        self.links.append(link)
        self._paths.clear()
        self._hop_plans.clear()
        self._split_hop_plans.clear()
        self._links_plans.clear()
        return link

    def _register(self, node: Node) -> None:
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name: {node.name}")
        self.nodes[node.name] = node

    # -- path computation ---------------------------------------------------

    def path(self, src: Node, dst: Node) -> tuple[Node, ...]:
        """Shortest node path from src to dst (inclusive), memoised."""
        if src is dst:
            return (src,)
        key = (src, dst)
        cached = self._paths.get(key)
        if cached is not None:
            return cached
        # Plain BFS; the graph has ~a dozen nodes and results are memoised.
        from collections import deque

        prev: dict[Node, Node] = {src: src}
        queue: deque[Node] = deque([src])
        while queue and dst not in prev:
            node = queue.popleft()
            for neigh in node.neighbors:
                if neigh not in prev:
                    prev[neigh] = node
                    queue.append(neigh)
        if dst not in prev:
            raise TopologyError(f"no path {src.name} -> {dst.name}")
        chain = [dst]
        while chain[-1] is not src:
            chain.append(prev[chain[-1]])
        result = tuple(reversed(chain))
        self._paths[key] = result
        self._paths[(dst, src)] = tuple(chain)
        return result

    def hop_latency(self, path: tuple[Node, ...]) -> int:
        """One-way traversal latency of the intermediate nodes of a path.

        Each switch chip draws uniformly from the paper's 100-150 ns
        band; root complexes add their fixed traversal cost.  Endpoint
        nodes at the extremes contribute nothing here (their service
        costs are accounted by the target handler).
        """
        # hot-path
        plan = self._hop_plans.get(path)
        if plan is None:
            plan = self._build_hop_plan(path)
            self._hop_plans[path] = plan
        total, draws = plan
        for d in draws:
            pos = d.pos
            if pos == len(d.buf):
                d.buf = d.gen.integers(d.lo, d.hi, size=d.BATCH).tolist()
                pos = 0
            total += d.buf[pos]
            d.pos = pos + 1
        return total

    def _build_hop_plan(self, path: tuple[Node, ...]) -> tuple:
        """Split a path's latency into its fixed part and the RNG draws
        it performs, mirroring :meth:`RngRegistry.uniform_ns` exactly
        (a degenerate lo==hi band folds into the fixed part with no
        draw, just as ``uniform_ns`` short-circuits without one)."""
        cfg = self.config
        lo, hi = cfg.switch_latency_min_ns, cfg.switch_latency_max_ns
        if hi < lo:
            raise ValueError("high < low")
        rng = self.sim.rng
        fixed = 0
        draws = []
        buffers = self._draw_buffers
        for node in path[1:-1]:
            if node.kind == "switch":
                if hi == lo:
                    fixed += lo
                else:
                    # Streams are keyed per (chip, initiator) so that a
                    # chip shared by flows from several hosts serves each
                    # flow from an independent stream.  This keeps RNG
                    # consumption a pure function of one timing domain's
                    # activity — the property the shard runner needs for
                    # bit-identical partitioned execution.
                    stream = f"chip:{node.name}:from:{path[0].name}"
                    buf = buffers.get(stream)
                    if buf is None:
                        buf = _BufferedDraw(rng.stream(stream), lo, hi + 1)
                        buffers[stream] = buf
                    draws.append(buf)
            elif node.kind == "rc":
                fixed += cfg.root_complex_latency_ns
        # An RC at either extreme still forwards the transaction between
        # its CPU/DRAM side and the fabric.
        for node in (path[0], path[-1]):
            if node.kind == "rc" and len(path) > 1:
                fixed += cfg.root_complex_latency_ns
        return (fixed, tuple(draws))

    def _draw(self, d: "_BufferedDraw") -> int:
        # hot-path
        pos = d.pos
        if pos == len(d.buf):
            d.buf = d.gen.integers(d.lo, d.hi, size=d.BATCH).tolist()
            pos = 0
        d.pos = pos + 1
        return d.buf[pos]

    def hop_latency_split(self, path: tuple[Node, ...],
                          cut: int) -> tuple[int, int]:
        """Like :meth:`hop_latency` but split at node index ``cut`` into
        ``(prefix_ns, suffix_ns)`` — the portions accounted to the
        source-side and destination-side timing domains.  Draws come
        from the same streams in the same (path) order as
        :meth:`hop_latency` on the full path, so evaluating a path split
        or whole consumes identical RNG state.
        """
        # hot-path
        plan = self._split_hop_plans.get((path, cut))
        if plan is None:
            plan = self._build_split_hop_plan(path, cut)
            self._split_hop_plans[(path, cut)] = plan
        pre, pre_draws, suf, suf_draws = plan
        draw = self._draw
        for d in pre_draws:
            pre += draw(d)
        for d in suf_draws:
            suf += draw(d)
        return pre, suf

    def _build_split_hop_plan(self, path: tuple[Node, ...],
                              cut: int) -> tuple:
        if not 1 <= cut <= len(path) - 1:
            raise TopologyError(f"split index {cut} outside path")
        cfg = self.config
        lo, hi = cfg.switch_latency_min_ns, cfg.switch_latency_max_ns
        rng = self.sim.rng
        buffers = self._draw_buffers
        parts = [[0, []], [0, []]]  # (fixed, draws) for prefix / suffix
        for i, node in enumerate(path[1:-1], start=1):
            part = parts[0] if i < cut else parts[1]
            if node.kind == "switch":
                if hi == lo:
                    part[0] += lo
                else:
                    stream = f"chip:{node.name}:from:{path[0].name}"
                    buf = buffers.get(stream)
                    if buf is None:
                        buf = _BufferedDraw(rng.stream(stream), lo, hi + 1)
                        buffers[stream] = buf
                    part[1].append(buf)
            elif node.kind == "rc":
                part[0] += cfg.root_complex_latency_ns
        if path[0].kind == "rc" and len(path) > 1:
            parts[0][0] += cfg.root_complex_latency_ns
        if path[-1].kind == "rc" and len(path) > 1:
            parts[1][0] += cfg.root_complex_latency_ns
        return (parts[0][0], tuple(parts[0][1]),
                parts[1][0], tuple(parts[1][1]))

    def links_on(self, path: tuple[Node, ...]) -> tuple[tuple[Link, Node, Node], ...]:
        # hot-path
        cached = self._links_plans.get(path)
        if cached is not None:
            return cached
        out = tuple((a.neighbors[b], a, b) for a, b in zip(path, path[1:]))
        self._links_plans[path] = out
        return out
