"""PCIe fabric substrate: address spaces, topology, devices, NTBs and the
posted/non-posted transaction engine."""

from .address import AddressError, AddressMap, Mapping
from .device import Bar, PCIeFunction
from .fabric import Fabric, FabricFaultError, Resolution
from .ntb import NtbError, NtbFunction, NtbLinkDown, NtbWindow
from .tlp import TlpKind, WireCost, completion_cost, read_request_cost, write_cost
from .topology import Cluster, Host, Link, Node, TopologyError

__all__ = [
    "AddressMap", "AddressError", "Mapping",
    "PCIeFunction", "Bar",
    "Fabric", "FabricFaultError", "Resolution",
    "NtbFunction", "NtbWindow", "NtbError", "NtbLinkDown",
    "TlpKind", "WireCost", "write_cost", "read_request_cost",
    "completion_cost",
    "Cluster", "Host", "Node", "Link", "TopologyError",
]
