"""Per-host physical address maps.

Each host has a single flat physical address space into which DRAM, device
BARs and NTB apertures are mapped ("the defining feature of PCIe is that
devices are mapped into the same address space as the CPU", paper
Sec. III).  The map is an ordered list of non-overlapping ranges, each
owned by a handler object (DRAM, a device BAR, an NTB window region).
"""

from __future__ import annotations

import bisect
import dataclasses
import typing as t


class AddressError(Exception):
    """Address not mapped, or access straddles a mapping boundary."""


@dataclasses.dataclass(frozen=True, slots=True)
class Mapping:
    """One entry in an address map: ``[base, base+size)`` -> ``target``."""

    base: int
    size: int
    target: t.Any
    label: str = ""

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.base <= addr and addr + length <= self.end


class AddressMap:
    """Sorted, non-overlapping interval map over one address space."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._bases: list[int] = []
        self._mappings: list[Mapping] = []
        #: bumped on every add/remove; route caches validate against it
        self.version = 0

    def add(self, base: int, size: int, target: t.Any,
            label: str = "") -> Mapping:
        if size <= 0:
            raise ValueError("mapping size must be positive")
        mapping = Mapping(base, size, target, label)
        i = bisect.bisect_left(self._bases, base)
        # Overlap checks against both neighbours.
        if i > 0 and self._mappings[i - 1].end > base:
            raise AddressError(
                f"{self.name}: [{base:#x},{mapping.end:#x}) overlaps "
                f"{self._mappings[i - 1]}")
        if i < len(self._mappings) and self._mappings[i].base < mapping.end:
            raise AddressError(
                f"{self.name}: [{base:#x},{mapping.end:#x}) overlaps "
                f"{self._mappings[i]}")
        self._bases.insert(i, base)
        self._mappings.insert(i, mapping)
        self.version += 1
        return mapping

    def remove(self, mapping: Mapping) -> None:
        i = bisect.bisect_left(self._bases, mapping.base)
        if i >= len(self._mappings) or self._mappings[i] is not mapping:
            raise AddressError(f"{self.name}: mapping not present: {mapping}")
        del self._bases[i]
        del self._mappings[i]
        self.version += 1

    def lookup(self, addr: int, length: int = 1) -> Mapping:
        """Find the mapping covering ``[addr, addr+length)``.

        Raises :class:`AddressError` for unmapped addresses and for
        accesses that straddle two mappings (hardware would split such a
        TLP; our device models never legitimately generate one, so a
        straddle is treated as a modelling bug).
        """
        i = bisect.bisect_right(self._bases, addr) - 1
        if i >= 0:
            m = self._mappings[i]
            if m.contains(addr, length):
                return m
            if m.contains(addr):
                raise AddressError(
                    f"{self.name}: access [{addr:#x},+{length}) straddles "
                    f"the end of {m.label or m}")
        raise AddressError(f"{self.name}: address {addr:#x} is not mapped")

    def mappings(self) -> tuple[Mapping, ...]:
        return tuple(self._mappings)

    def find_free(self, size: int, start: int, limit: int,
                  alignment: int = 0x1000) -> int:
        """First free base >= start where ``size`` bytes fit below limit."""
        def align(v: int) -> int:
            return (v + alignment - 1) // alignment * alignment

        candidate = align(start)
        for m in self._mappings:
            if m.end <= candidate:
                continue
            if m.base >= candidate + size:
                break
            candidate = align(m.end)
        if candidate + size > limit:
            raise AddressError(
                f"{self.name}: no free window of {size:#x} bytes "
                f"in [{start:#x},{limit:#x})")
        return candidate
