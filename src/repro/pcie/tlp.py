"""Transaction-layer packet accounting.

We do not simulate individual TLPs as events (a 128 KiB DMA would be 512
packets); instead each *transaction* carries enough accounting to compute
its wire footprint exactly: payload chunked at the max-payload-size (for
writes/completions) or max-read-request-size (for read requests), plus
per-packet header overhead.  The paper's latency story depends on the
*category* of each transaction:

* **posted** (memory writes): fire-and-forget, one-way latency;
* **non-posted** (memory reads): a request travels to the completer and
  completions carry the data back — a full round trip, which is why the
  command-fetch path dominates remote-queue placement (paper Fig. 8).
"""

from __future__ import annotations

import dataclasses
import enum
import math

from ..config import PcieConfig


class TlpKind(enum.Enum):
    MEM_WRITE = "MWr"       # posted
    MEM_READ = "MRd"        # non-posted (expects CplD)
    COMPLETION = "CplD"     # completion with data


@dataclasses.dataclass(frozen=True, slots=True)
class WireCost:
    """Bytes on the wire and packet count for one transaction leg."""

    packets: int
    bytes_on_wire: int


def write_cost(payload: int, cfg: PcieConfig) -> WireCost:
    """Wire footprint of a posted-write burst of ``payload`` bytes."""
    if payload < 0:
        raise ValueError("negative payload")
    if payload == 0:
        return WireCost(1, cfg.tlp_header_bytes)
    packets = math.ceil(payload / cfg.max_payload_size)
    return WireCost(packets, payload + packets * cfg.tlp_header_bytes)


def read_request_cost(length: int, cfg: PcieConfig) -> WireCost:
    """Wire footprint of the header-only MRd request leg."""
    if length <= 0:
        raise ValueError("read length must be positive")
    packets = math.ceil(length / cfg.max_read_request_size)
    return WireCost(packets, packets * cfg.tlp_header_bytes)


def completion_cost(length: int, cfg: PcieConfig) -> WireCost:
    """Wire footprint of the data-bearing completion leg of a read."""
    if length <= 0:
        raise ValueError("read length must be positive")
    packets = math.ceil(length / cfg.max_payload_size)
    return WireCost(packets, length + packets * cfg.cpl_header_bytes)
