"""The PCIe transaction engine.

Routes memory reads and writes from an initiator node to their target —
DRAM, a device BAR, or across NTB windows into another host — charging:

* per-switch-chip forwarding latency (100-150 ns/chip/direction,
  paper Sec. VI) and root-complex traversals;
* NTB LUT translation per window crossing;
* link occupancy: every link on the path is held for the transaction's
  serialization time (cut-through pipe), giving natural FIFO queueing
  under contention;
* target service time (DRAM access or device MMIO handling).

**Posted vs non-posted** (the crux of the paper's Fig. 8 argument):
writes are *posted* — they complete at the initiator immediately and are
delivered after a one-way traversal; reads are *non-posted* — the
initiator waits a full round trip plus target service.  PCIe ordering of
posted writes on the same initiator->destination flow is enforced with a
monotonic-arrival clamp, so an SQE write always lands before the doorbell
write that follows it.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..config import PcieConfig
from ..memory import HostMemory
from ..sim import NULL_TRACER, Process, Simulator
from ..units import serialize_ns
from .address import AddressError
from .device import Bar
from .ntb import NtbFunction, NtbLinkDown
from .tlp import completion_cost, read_request_cost, write_cost
from .topology import Cluster, Host, Node

#: Safety bound on NTB window chains (window -> window -> ...).
MAX_NTB_CROSSINGS = 3


class FabricFaultError(Exception):
    """A non-posted transaction ended in a completion timeout because a
    fault point on its path was down or dropped the TLP.  Raised to the
    initiator *after* ``PcieConfig.completion_timeout_ns`` has elapsed,
    mirroring real completion-timeout semantics."""

    def __init__(self, point: str, addr: int) -> None:
        super().__init__(f"completion timeout at {point} (addr {addr:#x})")
        self.point = point
        self.addr = addr


@dataclasses.dataclass(frozen=True)
class Resolution:
    """Outcome of walking an address through NTB windows to its target."""

    kind: str                    # "mem" | "mmio"
    host: Host                   # host whose space finally contains it
    node: Node                   # topology node of the target
    crossings: int               # NTB windows traversed
    memory: HostMemory | None = None
    addr: int = 0                # final physical address (mem) …
    bar: Bar | None = None
    offset: int = 0              # … or offset within the BAR (mmio)


class Fabric:
    """Transaction router over a :class:`~repro.pcie.topology.Cluster`."""

    def __init__(self, sim: Simulator, cluster: Cluster,
                 config: PcieConfig, tracer=NULL_TRACER) -> None:
        self.sim = sim
        self.cluster = cluster
        self.config = config
        self.tracer = tracer
        # Posted-ordering clamp: (initiator node, final host) -> last
        # arrival time of a posted write on that flow.
        self._posted_clamp: dict[tuple[Node, Host], int] = {}
        #: optional FaultPointRegistry consulted on every transaction;
        #: None keeps the fault-free hot path branch-light.
        self.faults = None
        #: accounting
        self.posted_writes = 0
        self.posted_bytes = 0
        self.reads = 0
        self.read_bytes = 0
        self.dropped_writes = 0
        self.timed_out_reads = 0

    # -- address resolution ----------------------------------------------------

    def resolve(self, host: Host, addr: int, length: int) -> Resolution:
        """Walk ``addr`` in ``host``'s space through NTB windows until it
        lands on DRAM or a device BAR."""
        crossings = 0
        while True:
            mapping = host.addr_map.lookup(addr, length)
            target = mapping.target
            if isinstance(target, HostMemory):
                return Resolution(kind="mem", host=host, node=host.rc,
                                  crossings=crossings, memory=target,
                                  addr=addr)
            if isinstance(target, Bar):
                fn = target.function
                if isinstance(fn, NtbFunction):
                    if crossings >= MAX_NTB_CROSSINGS:
                        raise AddressError(
                            f"NTB window chain longer than "
                            f"{MAX_NTB_CROSSINGS} at {addr:#x}")
                    host, addr = fn.translate(target, addr, length)
                    crossings += 1
                    continue
                assert fn.node is not None and fn.host is not None
                return Resolution(kind="mmio", host=fn.host, node=fn.node,
                                  crossings=crossings, bar=target,
                                  offset=target.offset_of(addr))
            raise AddressError(
                f"unroutable target {target!r} at {addr:#x}")

    # -- link occupancy -----------------------------------------------------------

    def _occupy(self, path: tuple[Node, ...], wire_bytes: int):
        """Occupy the links on the path for the transfer (cut-through).

        Links are acquired in a canonical global order (deadlock-free);
        each link is then held for *its own* serialization time — a
        slow edge link (e.g. the device's Gen3 x4) must not inflate the
        occupancy of faster shared links, or unrelated flows through a
        cluster switch would be throttled to the slowest device's rate.
        The caller's latency charge is the slowest stage (the pipe's
        fill time).
        """
        trips = self.cluster.links_on(path)
        if not trips or wire_bytes <= 0:
            return
        pairs = [(link.resource(a, b), link) for link, a, b in trips]
        pairs.sort(key=lambda p: p[0].order)
        acquired = []
        for resource, _link in pairs:
            req = resource.request()
            acquired.append((resource, req))
            yield req
        max_hold = 0
        for (resource, req), (_res, link) in zip(acquired, pairs):
            hold = serialize_ns(wire_bytes, link.bandwidth)
            max_hold = max(max_hold, hold)
            release_at = self.sim.timeout(hold)
            assert release_at.callbacks is not None
            release_at.callbacks.append(
                lambda _ev, r=resource, q=req: r.release(q))
        yield self.sim.timeout(max_hold)

    # -- transactions ------------------------------------------------------------

    def write(self, initiator: Node, host: Host, addr: int,
              data: bytes | bytearray | memoryview):
        """Posted memory write (generator; returns at *delivery* time).

        Callers that do not need to observe delivery should use
        :meth:`post_write`, which spawns this as a detached process —
        that is the hardware-accurate behaviour for CPU stores and
        device DMA writes.
        """
        data = bytes(data)
        try:
            res = self.resolve(host, addr, len(data))
        except NtbLinkDown as down:
            # Posted semantics: the write vanishes silently at the
            # severed adapter; the initiator never learns.
            self._drop_write(down.point, addr, len(data))
            return
        point = None
        if self.faults is not None:
            point = (self.faults.link_blocked(host.name, res.host.name)
                     or self.faults.tlp_dropped(self.sim.rng, host.name,
                                                res.host.name))
        if point is not None:
            self._drop_write(point, addr, len(data))
            return
        path = self.cluster.path(initiator, res.node)
        self.posted_writes += 1
        self.posted_bytes += len(data)

        yield from self._occupy(path, write_cost(len(data), self.config).bytes_on_wire)
        latency = self.cluster.hop_latency(path)
        latency += res.crossings * self.config.ntb_translation_ns
        if self.faults is not None:
            latency += self.faults.tlp_delay_ns(host.name, res.host.name)
        if res.kind == "mem":
            latency += self.config.memory_write_latency_ns
        else:
            latency += self.config.device_mmio_write_ns

        arrival = self.sim.now + latency
        key = (initiator, res.host)
        prior = self._posted_clamp.get(key, 0)
        if arrival < prior:
            arrival = prior  # posted ordering: never pass an earlier write
        self._posted_clamp[key] = arrival
        yield self.sim.timeout(arrival - self.sim.now)

        if res.kind == "mem":
            assert res.memory is not None
            res.memory.write(res.addr, data)
        else:
            assert res.bar is not None
            res.bar.function.mmio_write(res.bar, res.offset, data)
        self.tracer.emit("pcie", "write-delivered", addr=addr,
                         final=res.addr if res.kind == "mem" else res.offset,
                         size=len(data), crossings=res.crossings)

    def _drop_write(self, point: str, addr: int, size: int) -> None:
        self.dropped_writes += 1
        self.tracer.emit("fault", "write-dropped", point=point, addr=addr,
                         size=size)

    def post_write(self, initiator: Node, host: Host, addr: int,
                   data: bytes | bytearray | memoryview) -> Process:
        """Fire-and-forget posted write (returns the delivery process)."""
        return self.sim.process(self.write(initiator, host, addr, data))

    def read(self, initiator: Node, host: Host, addr: int, length: int):
        """Non-posted memory read (generator; returns the data bytes).

        Charges the full round trip: request leg, target service,
        completion leg with data serialization — "the longer the path
        between a device and the memory it reads from, the higher the
        request-completion latency becomes" (paper Sec. V).
        """
        if length <= 0:
            raise ValueError("read length must be positive")
        try:
            res = self.resolve(host, addr, length)
        except NtbLinkDown as down:
            yield from self._read_timeout(down.point, addr)
        point = None
        if self.faults is not None:
            point = (self.faults.link_blocked(host.name, res.host.name)
                     or self.faults.tlp_dropped(self.sim.rng, host.name,
                                                res.host.name))
        if point is not None:
            yield from self._read_timeout(point, addr)
        path = self.cluster.path(initiator, res.node)
        self.reads += 1
        self.read_bytes += length

        # Request leg (headers only).
        yield from self._occupy(
            path, read_request_cost(length, self.config).bytes_on_wire)
        req_latency = self.cluster.hop_latency(path)
        req_latency += res.crossings * self.config.ntb_translation_ns
        if self.faults is not None:
            req_latency += self.faults.tlp_delay_ns(host.name, res.host.name)
        yield self.sim.timeout(req_latency)

        # Target service + data fetch.
        if res.kind == "mem":
            assert res.memory is not None
            yield self.sim.timeout(self.config.memory_read_latency_ns)
            data = res.memory.read(res.addr, length)
        else:
            assert res.bar is not None
            yield self.sim.timeout(self.config.device_mmio_read_ns)
            data = res.bar.function.mmio_read(res.bar, res.offset, length)
            if len(data) != length:
                raise AddressError(
                    f"{res.bar.function.name} returned {len(data)} bytes "
                    f"for a {length}-byte read")

        # Completion leg (data flows back).
        rpath = tuple(reversed(path))
        yield from self._occupy(
            rpath, completion_cost(length, self.config).bytes_on_wire)
        cpl_latency = self.cluster.hop_latency(rpath)
        yield self.sim.timeout(cpl_latency)
        self.tracer.emit("pcie", "read-complete", addr=addr, size=length,
                         crossings=res.crossings)
        return data

    def _read_timeout(self, point: str, addr: int) -> t.Generator:
        """Non-posted request into a severed/lossy path: the completion
        never arrives, so the initiator sits out its completion timeout
        and then sees the failure."""
        self.timed_out_reads += 1
        yield self.sim.timeout(self.config.completion_timeout_ns)
        self.tracer.emit("fault", "read-timeout", point=point, addr=addr)
        raise FabricFaultError(point, addr)

    # -- conveniences -----------------------------------------------------------

    def read_u32(self, initiator: Node, host: Host, addr: int):
        data = yield from self.read(initiator, host, addr, 4)
        return int.from_bytes(data, "little")

    def write_u32(self, initiator: Node, host: Host, addr: int,
                  value: int) -> Process:
        return self.post_write(initiator, host, addr,
                               (value & 0xFFFF_FFFF).to_bytes(4, "little"))
