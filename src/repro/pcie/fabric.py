"""The PCIe transaction engine.

Routes memory reads and writes from an initiator node to their target —
DRAM, a device BAR, or across NTB windows into another host — charging:

* per-switch-chip forwarding latency (100-150 ns/chip/direction,
  paper Sec. VI) and root-complex traversals;
* NTB LUT translation per window crossing;
* link occupancy: every link on the path is held for the transaction's
  serialization time (cut-through pipe), giving natural FIFO queueing
  under contention;
* target service time (DRAM access or device MMIO handling).

**Posted vs non-posted** (the crux of the paper's Fig. 8 argument):
writes are *posted* — they complete at the initiator immediately and are
delivered after a one-way traversal; reads are *non-posted* — the
initiator waits a full round trip plus target service.  PCIe ordering of
posted writes on the same initiator->destination flow is enforced with a
monotonic-arrival clamp, so an SQE write always lands before the doorbell
write that follows it.

**Route cache.**  Queue slots, doorbells and bounce-buffer partitions are
hit with the same ``(host, addr, length)`` triples millions of times per
run, and each uncached hit re-walks the address map and re-allocates a
:class:`Resolution`.  ``resolve()`` therefore memoizes successful walks.
Correctness contract (see docs/performance.md):

* entries are validated on every hit against the ``version`` of each
  :class:`~repro.pcie.address.AddressMap` consulted and the
  ``lut_version`` of each NTB traversed — remaps rebuild the entry;
* ``link_up`` is checked *live* per crossing in traversal order, and the
  per-NTB ``translations``/``bytes_forwarded`` counters are replayed in
  that same order, so a hit is byte-identical to the uncached walk even
  mid-fault (fault-registry link events flip ``link_up`` directly);
* ``REPRO_NO_ROUTE_CACHE=1`` disables the cache entirely (escape hatch,
  read at Fabric construction).
"""

from __future__ import annotations

import dataclasses
import os
import typing as t

from ..config import PcieConfig
from ..memory import HostMemory
from ..sim import NULL_TRACER, Process, Simulator
from ..units import serialize_ns
from .address import AddressError
from .device import Bar
from .ntb import NtbFunction, NtbLinkDown
from .tlp import completion_cost, read_request_cost, write_cost
from .topology import Cluster, Host, Node

#: Safety bound on NTB window chains (window -> window -> ...).
MAX_NTB_CROSSINGS = 3


class FabricFaultError(Exception):
    """A non-posted transaction ended in a completion timeout because a
    fault point on its path was down or dropped the TLP.  Raised to the
    initiator *after* ``PcieConfig.completion_timeout_ns`` has elapsed,
    mirroring real completion-timeout semantics."""

    def __init__(self, point: str, addr: int) -> None:
        super().__init__(f"completion timeout at {point} (addr {addr:#x})")
        self.point = point
        self.addr = addr


@dataclasses.dataclass(frozen=True, slots=True)
class Resolution:
    """Outcome of walking an address through NTB windows to its target."""

    kind: str                    # "mem" | "mmio"
    host: Host                   # host whose space finally contains it
    node: Node                   # topology node of the target
    crossings: int               # NTB windows traversed
    memory: HostMemory | None = None
    addr: int = 0                # final physical address (mem) …
    bar: Bar | None = None
    offset: int = 0              # … or offset within the BAR (mmio)


class _RouteEntry:
    """One cached resolve() outcome with its invalidation guards."""

    __slots__ = ("res", "map_guards", "ntb_guards")

    def __init__(self, res: Resolution,
                 map_guards: tuple, ntb_guards: tuple) -> None:
        self.res = res
        #: ((AddressMap, version-at-build), ...) in walk order
        self.map_guards = map_guards
        #: ((NtbFunction, lut_version-at-build), ...) in walk order
        self.ntb_guards = ntb_guards


class Fabric:
    """Transaction router over a :class:`~repro.pcie.topology.Cluster`."""

    def __init__(self, sim: Simulator, cluster: Cluster,
                 config: PcieConfig, tracer=NULL_TRACER) -> None:
        self.sim = sim
        self.cluster = cluster
        self.config = config
        self.tracer = tracer
        # Posted-ordering clamp: (initiator node, final host) -> last
        # arrival time of a posted write on that flow.
        self._posted_clamp: dict[tuple[Node, Host], int] = {}
        #: optional FaultPointRegistry consulted on every transaction;
        #: None keeps the fault-free hot path branch-light.
        self.faults = None
        #: accounting
        self.posted_writes = 0
        self.posted_bytes = 0
        self.reads = 0
        self.read_bytes = 0
        self.dropped_writes = 0
        self.timed_out_reads = 0
        # (host, addr, length) -> _RouteEntry; None when disabled.
        self._route_cache: dict[tuple, _RouteEntry] | None = (
            None if os.environ.get("REPRO_NO_ROUTE_CACHE") == "1" else {})
        # (path, wire_bytes) -> (resources, holds, max_hold) | ()
        self._occupy_plans: dict[tuple, tuple] = {}
        # payload-length -> bytes_on_wire, per TLP category (pure
        # functions of the frozen config, so plain int memoization).
        self._write_wire: dict[int, int] = {}
        self._read_req_wire: dict[int, int] = {}
        self._cpl_wire: dict[int, int] = {}

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        # _trace gates the per-TLP emits on the hot path; keep it in sync
        # so attaching a tracer after construction still records events.
        self._tracer = value
        self._trace = value is not NULL_TRACER

    # -- address resolution ----------------------------------------------------

    def resolve(self, host: Host, addr: int, length: int) -> Resolution:
        """Walk ``addr`` in ``host``'s space through NTB windows until it
        lands on DRAM or a device BAR (memoized; see module docstring)."""
        # hot-path
        cache = self._route_cache
        if cache is not None:
            entry = cache.get((host, addr, length))
            if entry is not None:
                for amap, version in entry.map_guards:
                    if amap.version != version:
                        break
                else:
                    for fn, lut_version in entry.ntb_guards:
                        if fn.lut_version != lut_version:
                            break
                    else:
                        # Guards valid: replay the walk's observable side
                        # effects exactly — per crossing in order, check
                        # the live link first (NtbFunction.translate
                        # raises *before* bumping its own counters).
                        for fn, _v in entry.ntb_guards:
                            if not fn.link_up:
                                raise NtbLinkDown(fn.name)
                            fn.translations += 1
                            fn.bytes_forwarded += length
                        return entry.res
        orig_key = (host, addr, length)
        crossings = 0
        map_guards: list[tuple] = []
        ntb_guards: list[tuple] = []
        while True:
            amap = host.addr_map
            map_guards.append((amap, amap.version))
            mapping = amap.lookup(addr, length)
            target = mapping.target
            if isinstance(target, HostMemory):
                # One construction per cache miss; every hit returns it.
                # staticcheck: ignore[hotpath-alloc] miss path, built once per key
                res = Resolution(kind="mem", host=host, node=host.rc,
                                 crossings=crossings, memory=target,
                                 addr=addr)
                break
            if isinstance(target, Bar):
                fn = target.function
                if isinstance(fn, NtbFunction):
                    if crossings >= MAX_NTB_CROSSINGS:
                        raise AddressError(
                            f"NTB window chain longer than "
                            f"{MAX_NTB_CROSSINGS} at {addr:#x}")
                    ntb_guards.append((fn, fn.lut_version))
                    host, addr = fn.translate(target, addr, length)
                    crossings += 1
                    continue
                assert fn.node is not None and fn.host is not None
                # staticcheck: ignore[hotpath-alloc] miss path, built once per key
                res = Resolution(kind="mmio", host=fn.host, node=fn.node,
                                 crossings=crossings, bar=target,
                                 offset=target.offset_of(addr))
                break
            raise AddressError(
                f"unroutable target {target!r} at {addr:#x}")
        if cache is not None:
            cache[orig_key] = _RouteEntry(res, tuple(map_guards),
                                          tuple(ntb_guards))
        return res

    # -- link occupancy -----------------------------------------------------------

    def _occupy(self, path: tuple[Node, ...], wire_bytes: int):
        """Occupy the links on the path for the transfer (cut-through).

        Links are acquired in a canonical global order (deadlock-free);
        each link is then held for *its own* serialization time — a
        slow edge link (e.g. the device's Gen3 x4) must not inflate the
        occupancy of faster shared links, or unrelated flows through a
        cluster switch would be throttled to the slowest device's rate.
        The caller's latency charge is the slowest stage (the pipe's
        fill time).
        """
        # hot-path
        plan = self._occupy_plans.get((path, wire_bytes))
        if plan is None:
            plan = self._build_occupy_plan(path, wire_bytes)
            self._occupy_plans[(path, wire_bytes)] = plan
        if not plan:
            return
        resources, holds, max_hold = plan
        sim = self.sim
        sleep = sim.sleep
        acquired = []
        append = acquired.append
        for resource in resources:
            req = resource.request()
            append(req)
            yield req
        for req, resource, hold in zip(acquired, resources, holds):
            sleep(hold).callbacks.append(
                lambda _ev, r=resource, q=req: r.release(q))
        yield sleep(max_hold)

    def _build_occupy_plan(self, path: tuple[Node, ...],
                           wire_bytes: int) -> tuple:
        """Precompute the occupancy of a (path, size) pair: the link
        resources in canonical acquisition order with their per-link
        hold times.  Pure function of the (static) topology."""
        trips = self.cluster.links_on(path)
        if not trips or wire_bytes <= 0:
            return ()
        pairs = [(link.resource(a, b), link) for link, a, b in trips]
        pairs.sort(key=lambda p: p[0].order)
        resources = tuple(resource for resource, _link in pairs)
        holds = tuple(serialize_ns(wire_bytes, link.bandwidth)
                      for _resource, link in pairs)
        return (resources, holds, max(holds))

    # -- transactions ------------------------------------------------------------

    def write(self, initiator: Node, host: Host, addr: int,
              data: bytes | bytearray | memoryview):
        """Posted memory write (generator; returns at *delivery* time).

        Callers that do not need to observe delivery should use
        :meth:`post_write`, which spawns this as a detached process —
        that is the hardware-accurate behaviour for CPU stores and
        device DMA writes.
        """
        # hot-path
        if type(data) is not bytes:
            data = bytes(data)
        length = len(data)
        try:
            res = self.resolve(host, addr, length)
        except NtbLinkDown as down:
            # Posted semantics: the write vanishes silently at the
            # severed adapter; the initiator never learns.
            self._drop_write(down.point, addr, length)
            return
        sim = self.sim
        cfg = self.config
        faults = self.faults
        if faults is not None:
            point = (faults.link_blocked(host.name, res.host.name)
                     or faults.tlp_dropped(sim.rng, host.name,
                                           res.host.name))
            if point is not None:
                self._drop_write(point, addr, length)
                return
        path = self.cluster.path(initiator, res.node)
        self.posted_writes += 1
        self.posted_bytes += length

        wire = self._write_wire.get(length)
        if wire is None:
            wire = write_cost(length, cfg).bytes_on_wire
            self._write_wire[length] = wire
        yield from self._occupy(path, wire)
        latency = self.cluster.hop_latency(path)
        if res.crossings:
            latency += res.crossings * cfg.ntb_translation_ns
        if faults is not None:
            latency += faults.tlp_delay_ns(host.name, res.host.name)
        if res.kind == "mem":
            latency += cfg.memory_write_latency_ns
        else:
            latency += cfg.device_mmio_write_ns

        now = sim._now
        arrival = now + latency
        key = (initiator, res.host)
        prior = self._posted_clamp.get(key, 0)
        if arrival < prior:
            arrival = prior  # posted ordering: never pass an earlier write
        self._posted_clamp[key] = arrival
        yield sim.sleep(arrival - now)

        if res.kind == "mem":
            res.memory.write(res.addr, data)
        else:
            res.bar.function.mmio_write(res.bar, res.offset, data)
        if self._trace:
            self.tracer.emit("pcie", "write-delivered", addr=addr,
                             final=res.addr if res.kind == "mem"
                             else res.offset,
                             size=length, crossings=res.crossings)

    def _drop_write(self, point: str, addr: int, size: int) -> None:
        self.dropped_writes += 1
        self.tracer.emit("fault", "write-dropped", point=point, addr=addr,
                         size=size)

    def post_write(self, initiator: Node, host: Host, addr: int,
                   data: bytes | bytearray | memoryview) -> Process:
        """Fire-and-forget posted write (returns the delivery process)."""
        # hot-path: spawn the Process directly, skipping the
        # Simulator.process wrapper frame (one spawn per posted TLP).
        return Process(self.sim, self.write(initiator, host, addr, data))

    def read(self, initiator: Node, host: Host, addr: int, length: int):
        """Non-posted memory read (generator; returns the data bytes).

        Charges the full round trip: request leg, target service,
        completion leg with data serialization — "the longer the path
        between a device and the memory it reads from, the higher the
        request-completion latency becomes" (paper Sec. V).
        """
        # hot-path
        if length <= 0:
            raise ValueError("read length must be positive")
        try:
            res = self.resolve(host, addr, length)
        except NtbLinkDown as down:
            yield from self._read_timeout(down.point, addr)
        sim = self.sim
        cfg = self.config
        faults = self.faults
        if faults is not None:
            point = (faults.link_blocked(host.name, res.host.name)
                     or faults.tlp_dropped(sim.rng, host.name,
                                           res.host.name))
            if point is not None:
                yield from self._read_timeout(point, addr)
        path = self.cluster.path(initiator, res.node)
        self.reads += 1
        self.read_bytes += length

        # Request leg (headers only).
        wire = self._read_req_wire.get(length)
        if wire is None:
            wire = read_request_cost(length, cfg).bytes_on_wire
            self._read_req_wire[length] = wire
        yield from self._occupy(path, wire)
        req_latency = self.cluster.hop_latency(path)
        if res.crossings:
            req_latency += res.crossings * cfg.ntb_translation_ns
        if faults is not None:
            req_latency += faults.tlp_delay_ns(host.name, res.host.name)
        yield sim.sleep(req_latency)

        # Target service + data fetch.
        if res.kind == "mem":
            yield sim.sleep(cfg.memory_read_latency_ns)
            data = res.memory.read(res.addr, length)
        else:
            yield sim.sleep(cfg.device_mmio_read_ns)
            data = res.bar.function.mmio_read(res.bar, res.offset, length)
            if len(data) != length:
                raise AddressError(
                    f"{res.bar.function.name} returned {len(data)} bytes "
                    f"for a {length}-byte read")

        # Completion leg (data flows back).
        rpath = tuple(reversed(path))
        wire = self._cpl_wire.get(length)
        if wire is None:
            wire = completion_cost(length, cfg).bytes_on_wire
            self._cpl_wire[length] = wire
        yield from self._occupy(rpath, wire)
        cpl_latency = self.cluster.hop_latency(rpath)
        yield sim.sleep(cpl_latency)
        if self._trace:
            self.tracer.emit("pcie", "read-complete", addr=addr,
                             size=length, crossings=res.crossings)
        return data

    def _read_timeout(self, point: str, addr: int) -> t.Generator:
        """Non-posted request into a severed/lossy path: the completion
        never arrives, so the initiator sits out its completion timeout
        and then sees the failure."""
        self.timed_out_reads += 1
        yield self.sim.timeout(self.config.completion_timeout_ns)
        self.tracer.emit("fault", "read-timeout", point=point, addr=addr)
        raise FabricFaultError(point, addr)

    # -- conveniences -----------------------------------------------------------

    def read_u32(self, initiator: Node, host: Host, addr: int):
        data = yield from self.read(initiator, host, addr, 4)
        return int.from_bytes(data, "little")

    def write_u32(self, initiator: Node, host: Host, addr: int,
                  value: int) -> Process:
        return self.post_write(initiator, host, addr,
                               (value & 0xFFFF_FFFF).to_bytes(4, "little"))
