"""The PCIe transaction engine.

Routes memory reads and writes from an initiator node to their target —
DRAM, a device BAR, or across NTB windows into another host — charging:

* per-switch-chip forwarding latency (100-150 ns/chip/direction,
  paper Sec. VI) and root-complex traversals;
* NTB LUT translation per window crossing;
* link occupancy: every link on the path is held for the transaction's
  serialization time (cut-through pipe), giving natural FIFO queueing
  under contention;
* target service time (DRAM access or device MMIO handling).

**Posted vs non-posted** (the crux of the paper's Fig. 8 argument):
writes are *posted* — they complete at the initiator immediately and are
delivered after a one-way traversal; reads are *non-posted* — the
initiator waits a full round trip plus target service.  PCIe ordering of
posted writes on the same initiator->destination flow is enforced with a
monotonic-arrival clamp, so an SQE write always lands before the doorbell
write that follows it.

**Route cache.**  Queue slots, doorbells and bounce-buffer partitions are
hit with the same ``(host, addr, length)`` triples millions of times per
run, and each uncached hit re-walks the address map and re-allocates a
:class:`Resolution`.  ``resolve()`` therefore memoizes successful walks.
Correctness contract (see docs/performance.md):

* entries are validated on every hit against the ``version`` of each
  :class:`~repro.pcie.address.AddressMap` consulted and the
  ``lut_version`` of each NTB traversed — remaps rebuild the entry;
* ``link_up`` is checked *live* per crossing in traversal order, and the
  per-NTB ``translations``/``bytes_forwarded`` counters are replayed in
  that same order, so a hit is byte-identical to the uncached walk even
  mid-fault (fault-registry link events flip ``link_up`` directly);
* ``REPRO_NO_ROUTE_CACHE=1`` disables the cache entirely (escape hatch,
  read at Fabric construction).
"""

from __future__ import annotations

import dataclasses
import os
import typing as t

from ..config import PcieConfig
from ..memory import HostMemory
from ..sim import NULL_TRACER, Event, Process, Request, Simulator
from ..sim.events import NORMAL, URGENT
from ..units import serialize_ns
from .address import AddressError
from .device import Bar
from .ntb import NtbFunction, NtbLinkDown
from .tlp import completion_cost, read_request_cost, write_cost
from .topology import Cluster, Host, Node

#: Safety bound on NTB window chains (window -> window -> ...).
MAX_NTB_CROSSINGS = 3


class _Ticket:
    """Return value of :meth:`Fabric.post_write` when no local delivery
    event exists (dropped writes; cross-shard sends).  Callers only ever
    probe ``.callbacks`` (guarding on None), so a shared inert instance
    suffices."""

    __slots__ = ()
    callbacks = None


_TICKET = _Ticket()


def _release_group(resources, acquired, idxs) -> None:
    # hot-path: one callback releases every link whose hold expired now.
    for i in idxs:
        resources[i].release(acquired[i])


def _grant_inline(resource) -> Request:
    """Acquire a free resource without a heap push.

    Equivalent to ``request()`` when the grant is immediate, minus the
    zero-delay grant event nothing would wait on — ``release()`` works
    unchanged via the holders set.  Callers must have checked that the
    resource has capacity and no waiters.
    """
    # hot-path
    req = Request.__new__(Request)
    req.sim = resource.sim
    req.callbacks = []
    req._value = req
    req._ok = True
    req._processed = True
    req._defused = False
    req.resource = resource
    resource._holders.add(req)
    return req


class FabricFaultError(Exception):
    """A non-posted transaction ended in a completion timeout because a
    fault point on its path was down or dropped the TLP.  Raised to the
    initiator *after* ``PcieConfig.completion_timeout_ns`` has elapsed,
    mirroring real completion-timeout semantics."""

    def __init__(self, point: str, addr: int) -> None:
        super().__init__(f"completion timeout at {point} (addr {addr:#x})")
        self.point = point
        self.addr = addr


@dataclasses.dataclass(frozen=True, slots=True)
class Resolution:
    """Outcome of walking an address through NTB windows to its target."""

    kind: str                    # "mem" | "mmio"
    host: Host                   # host whose space finally contains it
    node: Node                   # topology node of the target
    crossings: int               # NTB windows traversed
    memory: HostMemory | None = None
    addr: int = 0                # final physical address (mem) …
    bar: Bar | None = None
    offset: int = 0              # … or offset within the BAR (mmio)


class _RouteEntry:
    """One cached resolve() outcome with its invalidation guards."""

    __slots__ = ("res", "map_guards", "ntb_guards")

    def __init__(self, res: Resolution,
                 map_guards: tuple, ntb_guards: tuple) -> None:
        self.res = res
        #: ((AddressMap, version-at-build), ...) in walk order
        self.map_guards = map_guards
        #: ((NtbFunction, lut_version-at-build), ...) in walk order
        self.ntb_guards = ntb_guards


class Fabric:
    """Transaction router over a :class:`~repro.pcie.topology.Cluster`."""

    def __init__(self, sim: Simulator, cluster: Cluster,
                 config: PcieConfig, tracer=NULL_TRACER) -> None:
        self.sim = sim
        self.cluster = cluster
        self.config = config
        self.tracer = tracer
        # Posted-ordering clamp: (initiator node, final host) -> last
        # arrival time of a posted write on that flow.
        self._posted_clamp: dict[tuple[Node, Host], int] = {}
        #: optional FaultPointRegistry consulted on every transaction;
        #: None keeps the fault-free hot path branch-light.
        self.faults = None
        #: accounting
        self.posted_writes = 0
        self.posted_bytes = 0
        self.reads = 0
        self.read_bytes = 0
        self.dropped_writes = 0
        self.timed_out_reads = 0
        # (host, addr, length) -> _RouteEntry; None when disabled.
        self._route_cache: dict[tuple, _RouteEntry] | None = (
            None if os.environ.get("REPRO_NO_ROUTE_CACHE") == "1" else {})
        # (path, wire_bytes) -> (resources, holds, max_hold) | ()
        self._occupy_plans: dict[tuple, tuple] = {}
        #: shard boundary (repro.sim.shard.ShardBoundary) or None; when
        #: installed, transactions whose target lies in a different
        #: timing domain than their initiator run the decomposed
        #: source-leg/destination-leg protocol (see docs/performance.md)
        self.boundary = None
        #: in-flight transaction count (shard-runner quiesce support)
        self.inflight = 0
        # cross-domain reads awaiting their completion message
        self._pending_reads: dict[int, Event] = {}
        self._read_seq = 0
        # path -> index of the first destination-domain node
        self._cut_cache: dict[tuple, int] = {}
        # (path, wire_bytes, cut) -> (pre_pairs, suf_pairs, fill_ns)
        self._cross_plans: dict[tuple, tuple] = {}
        # (host name, function name) -> PCIeFunction (message targets)
        self._fn_index: dict[tuple[str, str], t.Any] = {}
        # payload-length -> bytes_on_wire, per TLP category (pure
        # functions of the frozen config, so plain int memoization).
        self._write_wire: dict[int, int] = {}
        self._read_req_wire: dict[int, int] = {}
        self._cpl_wire: dict[int, int] = {}

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        # _trace gates the per-TLP emits on the hot path; keep it in sync
        # so attaching a tracer after construction still records events.
        self._tracer = value
        self._trace = value is not NULL_TRACER

    # -- address resolution ----------------------------------------------------

    def resolve(self, host: Host, addr: int, length: int) -> Resolution:
        """Walk ``addr`` in ``host``'s space through NTB windows until it
        lands on DRAM or a device BAR (memoized; see module docstring)."""
        # hot-path
        cache = self._route_cache
        if cache is not None:
            entry = cache.get((host, addr, length))
            if entry is not None:
                for amap, version in entry.map_guards:
                    if amap.version != version:
                        break
                else:
                    for fn, lut_version in entry.ntb_guards:
                        if fn.lut_version != lut_version:
                            break
                    else:
                        # Guards valid: replay the walk's observable side
                        # effects exactly — per crossing in order, check
                        # the live link first (NtbFunction.translate
                        # raises *before* bumping its own counters).
                        for fn, _v in entry.ntb_guards:
                            if not fn.link_up:
                                raise NtbLinkDown(fn.name)
                            fn.translations += 1
                            fn.bytes_forwarded += length
                        return entry.res
        orig_key = (host, addr, length)
        crossings = 0
        map_guards: list[tuple] = []
        ntb_guards: list[tuple] = []
        while True:
            amap = host.addr_map
            map_guards.append((amap, amap.version))
            mapping = amap.lookup(addr, length)
            target = mapping.target
            if isinstance(target, HostMemory):
                # One construction per cache miss; every hit returns it.
                # staticcheck: ignore[hotpath-alloc] miss path, built once per key
                res = Resolution(kind="mem", host=host, node=host.rc,
                                 crossings=crossings, memory=target,
                                 addr=addr)
                break
            if isinstance(target, Bar):
                fn = target.function
                if isinstance(fn, NtbFunction):
                    if crossings >= MAX_NTB_CROSSINGS:
                        raise AddressError(
                            f"NTB window chain longer than "
                            f"{MAX_NTB_CROSSINGS} at {addr:#x}")
                    ntb_guards.append((fn, fn.lut_version))
                    host, addr = fn.translate(target, addr, length)
                    crossings += 1
                    continue
                assert fn.node is not None and fn.host is not None
                # staticcheck: ignore[hotpath-alloc] miss path, built once per key
                res = Resolution(kind="mmio", host=fn.host, node=fn.node,
                                 crossings=crossings, bar=target,
                                 offset=target.offset_of(addr))
                break
            raise AddressError(
                f"unroutable target {target!r} at {addr:#x}")
        if cache is not None:
            cache[orig_key] = _RouteEntry(res, tuple(map_guards),
                                          tuple(ntb_guards))
        return res

    # -- link occupancy -----------------------------------------------------------

    def _occupy(self, path: tuple[Node, ...], wire_bytes: int):
        """Occupy the links on the path for the transfer (cut-through).

        Links are acquired in a canonical global order (deadlock-free);
        each link is then held for *its own* serialization time — a
        slow edge link (e.g. the device's Gen3 x4) must not inflate the
        occupancy of faster shared links, or unrelated flows through a
        cluster switch would be throttled to the slowest device's rate.
        The caller's latency charge is the slowest stage (the pipe's
        fill time).
        """
        # hot-path
        plan = self._occupy_plans.get((path, wire_bytes))
        if plan is None:
            plan = self._build_occupy_plan(path, wire_bytes)
            self._occupy_plans[(path, wire_bytes)] = plan
        if not plan:
            return
        resources, _holds, max_hold, groups = plan
        sim = self.sim
        acquired = []
        append = acquired.append
        for resource in resources:
            # Uncontended grants skip the queue entirely — no zero-delay
            # grant event, no suspension (the dominant case by far).
            if len(resource._holders) < resource.capacity \
                    and not resource._waiting:
                append(_grant_inline(resource))
            else:
                req = resource.request()
                append(req)
                yield req
        sleep = sim.sleep
        for hold, idxs in groups:
            # One release timer per distinct hold time: links with equal
            # serialization time share a single event.
            sleep(hold).callbacks.append(
                lambda _ev, a=acquired, r=resources, ix=idxs:
                    _release_group(r, a, ix))
        yield sleep(max_hold)

    def _build_occupy_plan(self, path: tuple[Node, ...],
                           wire_bytes: int) -> tuple:
        """Precompute the occupancy of a (path, size) pair: the link
        resources in canonical acquisition order with their per-link
        hold times (grouped by hold so equal holds share one release
        timer).  Pure function of the (static) topology."""
        trips = self.cluster.links_on(path)
        if not trips or wire_bytes <= 0:
            return ()
        pairs = [(link.resource(a, b), link) for link, a, b in trips]
        pairs.sort(key=lambda p: p[0].order)
        resources = tuple(resource for resource, _link in pairs)
        holds = tuple(serialize_ns(wire_bytes, link.bandwidth)
                      for _resource, link in pairs)
        by_hold: dict[int, list[int]] = {}
        for i, hold in enumerate(holds):
            by_hold.setdefault(hold, []).append(i)
        groups = tuple((hold, tuple(idxs))
                       for hold, idxs in sorted(by_hold.items()))
        return (resources, holds, max(holds), groups)

    # -- transactions ------------------------------------------------------------

    def write(self, initiator: Node, host: Host, addr: int,
              data: bytes | bytearray | memoryview):
        """Posted memory write (generator; returns at *delivery* time).

        Callers that do not need to observe delivery should use
        :meth:`post_write`, which spawns this as a detached process —
        that is the hardware-accurate behaviour for CPU stores and
        device DMA writes.
        """
        # hot-path
        if type(data) is not bytes:
            data = bytes(data)
        issue = self._issue_write(initiator, host, addr, data)
        if issue is None:
            return
        res, path, wire, dst_dom = issue
        if dst_dom is not None:
            yield from self._cross_write_tail(initiator, host, res, path,
                                              dst_dom, addr, data, wire)
        else:
            yield from self._write_tail(initiator, host, res, path, addr,
                                        data, wire)

    def _issue_write(self, initiator: Node, host: Host, addr: int,
                     data: bytes):
        """Shared posted-write issue logic: resolve, fault coin flips,
        accounting.  Returns ``(res, path, wire, dst_domain_or_None)``,
        or None when the write was dropped."""
        # hot-path
        length = len(data)
        try:
            res = self.resolve(host, addr, length)
        except NtbLinkDown as down:
            # Posted semantics: the write vanishes silently at the
            # severed adapter; the initiator never learns.
            self._drop_write(down.point, addr, length)
            return None
        faults = self.faults
        if faults is not None:
            point = (faults.link_blocked(host.name, res.host.name)
                     or faults.tlp_dropped(self.sim.rng, host.name,
                                           res.host.name))
            if point is not None:
                self._drop_write(point, addr, length)
                return None
        path = self.cluster.path(initiator, res.node)
        self.posted_writes += 1
        self.posted_bytes += length
        wire = self._write_wire.get(length)
        if wire is None:
            wire = write_cost(length, self.config).bytes_on_wire
            self._write_wire[length] = wire
        dst_dom = None
        b = self.boundary
        if b is not None:
            nd = b.node_domain
            dom = nd.get(res.node.name)
            if dom is not None and dom != nd.get(initiator.name):
                dst_dom = dom
        return res, path, wire, dst_dom

    def _write_tail(self, initiator: Node, host: Host, res: Resolution,
                    path: tuple, addr: int, data: bytes, wire: int):
        """Single-domain posted-write body: occupancy, hop latency,
        posted-ordering clamp, delivery."""
        # hot-path
        sim = self.sim
        cfg = self.config
        self.inflight += 1
        try:
            yield from self._occupy(path, wire)
            latency = self.cluster.hop_latency(path)
            if res.crossings:
                latency += res.crossings * cfg.ntb_translation_ns
            faults = self.faults
            if faults is not None:
                latency += faults.tlp_delay_ns(host.name, res.host.name)
            if res.kind == "mem":
                latency += cfg.memory_write_latency_ns
            else:
                latency += cfg.device_mmio_write_ns

            now = sim._now
            arrival = now + latency
            key = (initiator, res.host)
            prior = self._posted_clamp.get(key, 0)
            if arrival < prior:
                arrival = prior  # posted ordering: never pass an earlier write
            self._posted_clamp[key] = arrival
            yield sim.sleep(arrival - now)

            self._finish_local_write(res, data, addr, accounted=True)
        finally:
            self.inflight -= 1

    def _cross_write_tail(self, initiator: Node, host: Host,
                          res: Resolution, path: tuple, dst_dom: str,
                          addr: int, data: bytes, wire: int):
        """Source-domain half of a cross-domain posted write: occupy the
        source-side links (charging the full-path pipe-fill time),
        evaluate the entire flight time from source-owned RNG streams,
        and hand the write to the destination domain effective at its
        nominal arrival instant.  The destination side re-models its own
        link occupancy on arrival (store-and-forward at the boundary)."""
        sim = self.sim
        self.inflight += 1
        try:
            cut = self._cut_of(path, dst_dom)
            pre_pairs, _suf, fill = self._cross_plan(path, wire, cut)
            yield from self._occupy_part(pre_pairs, fill)
            arrival = self._cross_arrival(initiator, host, res, path, cut,
                                          sim._now)
            self._send(dst_dom, arrival,
                       self._write_payload(initiator, res, addr, data, wire))
            # Posted semantics: the writer observes nominal delivery.
            yield sim.sleep(arrival - sim._now)
        finally:
            self.inflight -= 1

    def _cross_arrival(self, initiator: Node, host: Host, res: Resolution,
                       path: tuple, cut: int, now: int) -> int:
        """Nominal arrival instant of a cross-domain write whose flight
        starts at ``now``, with the posted-ordering clamp applied."""
        cfg = self.config
        pre, suf = self.cluster.hop_latency_split(path, cut)
        latency = pre + suf
        if res.crossings:
            latency += res.crossings * cfg.ntb_translation_ns
        faults = self.faults
        if faults is not None:
            latency += faults.tlp_delay_ns(host.name, res.host.name)
        if res.kind == "mem":
            latency += cfg.memory_write_latency_ns
        else:
            latency += cfg.device_mmio_write_ns
        arrival = now + latency
        key = (initiator, res.host)
        prior = self._posted_clamp.get(key, 0)
        if arrival < prior:
            arrival = prior
        self._posted_clamp[key] = arrival
        return arrival

    def _finish_local_write(self, res: Resolution, data: bytes, addr: int,
                            accounted: bool = False) -> None:
        """Apply a same-domain posted write at its delivery instant."""
        # hot-path
        if not accounted:
            self.inflight -= 1
        if res.kind == "mem":
            res.memory.write(res.addr, data)
        else:
            b = self.boundary
            if b is not None:
                # Processes the MMIO handler spawns (controller fetch
                # loops, CQE writers) belong to the target's domain.
                sim = self.sim
                prev = sim._domain
                sim._domain = b.node_domain.get(res.node.name, prev)
                try:
                    res.bar.function.mmio_write(res.bar, res.offset, data)
                finally:
                    sim._domain = prev
            else:
                res.bar.function.mmio_write(res.bar, res.offset, data)
        if self._trace:
            self.tracer.emit("pcie", "write-delivered", addr=addr,
                             final=res.addr if res.kind == "mem"
                             else res.offset,
                             size=len(data), crossings=res.crossings)

    def _drop_write(self, point: str, addr: int, size: int) -> None:
        self.dropped_writes += 1
        self.tracer.emit("fault", "write-dropped", point=point, addr=addr,
                         size=size)

    def post_write(self, initiator: Node, host: Host, addr: int,
                   data: bytes | bytearray | memoryview):
        """Fire-and-forget posted write.

        Returns an event that triggers at local delivery (callers may
        append callbacks to it); dropped and cross-shard writes have no
        local delivery instant and return an inert ticket whose
        ``callbacks`` is None.
        """
        # hot-path: when every source-side link is free, the whole issue
        # runs inline — no process spawn, no occupancy generator, no
        # per-link grant events.  Contended issues fall back to the
        # generator body *after* the side-effecting steps (resolve,
        # fault draws, accounting) have run exactly once.
        if type(data) is not bytes:
            data = bytes(data)
        sim = self.sim
        issue = self._issue_write(initiator, host, addr, data)
        if issue is None:
            return _TICKET
        res, path, wire, dst_dom = issue
        if dst_dom is not None:
            cut = self._cut_of(path, dst_dom)
            pre_pairs, _suf, fill = self._cross_plan(path, wire, cut)
            for resource, _hold in pre_pairs:
                if len(resource._holders) >= resource.capacity \
                        or resource._waiting:
                    return Process(sim, self._cross_write_tail(
                        initiator, host, res, path, dst_dom, addr, data,
                        wire))
            sleep = sim.sleep
            for resource, hold in pre_pairs:
                req = _grant_inline(resource)
                sleep(hold).callbacks.append(
                    lambda _ev, r=resource, q=req: r.release(q))
            arrival = self._cross_arrival(initiator, host, res, path, cut,
                                          sim._now + fill)
            return (self._send(dst_dom, arrival,
                               self._write_payload(initiator, res, addr,
                                                   data, wire))
                    or _TICKET)
        plan = self._occupy_plans.get((path, wire))
        if plan is None:
            plan = self._build_occupy_plan(path, wire)
            self._occupy_plans[(path, wire)] = plan
        fill = 0
        if plan:
            resources, _holds, fill, groups = plan
            for resource in resources:
                if len(resource._holders) >= resource.capacity \
                        or resource._waiting:
                    return Process(sim, self._write_tail(
                        initiator, host, res, path, addr, data, wire))
            # staticcheck: ignore[hotpath-alloc] per-call grant list, no reuse possible
            acquired = [_grant_inline(resource) for resource in resources]
            sleep = sim.sleep
            for hold, idxs in groups:
                sleep(hold).callbacks.append(
                    lambda _ev, a=acquired, r=resources, ix=idxs:
                        _release_group(r, a, ix))
        cfg = self.config
        latency = fill + self.cluster.hop_latency(path)
        if res.crossings:
            latency += res.crossings * cfg.ntb_translation_ns
        faults = self.faults
        if faults is not None:
            latency += faults.tlp_delay_ns(host.name, res.host.name)
        if res.kind == "mem":
            latency += cfg.memory_write_latency_ns
        else:
            latency += cfg.device_mmio_write_ns
        now = sim._now
        arrival = now + latency
        key = (initiator, res.host)
        prior = self._posted_clamp.get(key, 0)
        if arrival < prior:
            arrival = prior
        self._posted_clamp[key] = arrival
        self.inflight += 1
        ev = Event.__new__(Event)
        ev.sim = sim
        ev.callbacks = [lambda _ev, r=res, d=data, a=addr:
                        self._finish_local_write(r, d, a)]
        ev._value = None
        ev._ok = True
        ev._processed = False
        ev._defused = False
        sim._push(ev, arrival - now, NORMAL)
        return ev

    def read(self, initiator: Node, host: Host, addr: int, length: int):
        """Non-posted memory read (generator; returns the data bytes).

        Charges the full round trip: request leg, target service,
        completion leg with data serialization — "the longer the path
        between a device and the memory it reads from, the higher the
        request-completion latency becomes" (paper Sec. V).
        """
        # hot-path
        if length <= 0:
            raise ValueError("read length must be positive")
        try:
            res = self.resolve(host, addr, length)
        except NtbLinkDown as down:
            yield from self._read_timeout(down.point, addr)
        sim = self.sim
        cfg = self.config
        faults = self.faults
        if faults is not None:
            point = (faults.link_blocked(host.name, res.host.name)
                     or faults.tlp_dropped(sim.rng, host.name,
                                           res.host.name))
            if point is not None:
                yield from self._read_timeout(point, addr)
        path = self.cluster.path(initiator, res.node)
        self.reads += 1
        self.read_bytes += length

        # Request leg (headers only).
        wire = self._read_req_wire.get(length)
        if wire is None:
            wire = read_request_cost(length, cfg).bytes_on_wire
            self._read_req_wire[length] = wire

        b = self.boundary
        if b is not None:
            nd = b.node_domain
            dst_dom = nd.get(res.node.name)
            src_dom = nd.get(initiator.name)
            if dst_dom is not None and src_dom is not None \
                    and dst_dom != src_dom:
                data = yield from self._cross_read_tail(
                    initiator, host, res, path, src_dom, dst_dom, addr,
                    length, wire)
                return data

        self.inflight += 1
        try:
            yield from self._occupy(path, wire)
            req_latency = self.cluster.hop_latency(path)
            if res.crossings:
                req_latency += res.crossings * cfg.ntb_translation_ns
            if faults is not None:
                req_latency += faults.tlp_delay_ns(host.name, res.host.name)
            yield sim.sleep(req_latency)

            # Target service + data fetch.
            if res.kind == "mem":
                yield sim.sleep(cfg.memory_read_latency_ns)
                data = res.memory.read(res.addr, length)
            else:
                yield sim.sleep(cfg.device_mmio_read_ns)
                data = res.bar.function.mmio_read(res.bar, res.offset,
                                                  length)
                if len(data) != length:
                    raise AddressError(
                        f"{res.bar.function.name} returned {len(data)} "
                        f"bytes for a {length}-byte read")

            # Completion leg (data flows back).
            rpath = tuple(reversed(path))
            wire = self._cpl_wire.get(length)
            if wire is None:
                wire = completion_cost(length, cfg).bytes_on_wire
                self._cpl_wire[length] = wire
            yield from self._occupy(rpath, wire)
            cpl_latency = self.cluster.hop_latency(rpath)
            yield sim.sleep(cpl_latency)
        finally:
            self.inflight -= 1
        if self._trace:
            self.tracer.emit("pcie", "read-complete", addr=addr,
                             size=length, crossings=res.crossings)
        return data

    def _cross_read_tail(self, initiator: Node, host: Host,
                         res: Resolution, path: tuple, src_dom: str,
                         dst_dom: str, addr: int, length: int, wire: int):
        """Source-domain half of a cross-domain read: occupy the
        source-side request links, send the request to the destination
        domain (which models its own occupancy, services the target and
        sends the completion back), then block on the completion."""
        sim = self.sim
        cfg = self.config
        self.inflight += 1
        try:
            cut = self._cut_of(path, dst_dom)
            pre_pairs, _suf, fill = self._cross_plan(path, wire, cut)
            yield from self._occupy_part(pre_pairs, fill)
            pre, suf = self.cluster.hop_latency_split(path, cut)
            req_latency = pre + suf
            if res.crossings:
                req_latency += res.crossings * cfg.ntb_translation_ns
            faults = self.faults
            if faults is not None:
                req_latency += faults.tlp_delay_ns(host.name,
                                                   res.host.name)
            self._read_seq += 1
            req_id = self._read_seq
            pending = Event(sim)
            self._pending_reads[req_id] = pending
            if res.kind == "mem":
                final = res.addr
            else:
                bar = res.bar
                final = (bar.function.name, bar.index, res.offset)
            self._send(dst_dom, sim._now + req_latency,
                       ("R", initiator.name, res.node.name, res.kind,
                        res.host.name, final, length, src_dom, req_id))
            data = yield pending
        finally:
            self.inflight -= 1
        if self._trace:
            self.tracer.emit("pcie", "read-complete", addr=addr,
                             size=length, crossings=res.crossings)
        return data

    def _serve_read(self, payload: tuple):
        """Destination-domain half of a cross-domain read (spawned on
        request arrival): model the request's destination-side link
        occupancy, service the target, occupy the completion's
        source-side links and send the completion back."""
        (_tag, initiator_name, node_name, res_kind, host_name, final,
         length, src_dom, req_id) = payload
        sim = self.sim
        cfg = self.config
        cluster = self.cluster
        initiator = cluster.nodes[initiator_name]
        node = cluster.nodes[node_name]
        path = cluster.path(initiator, node)
        wire = self._read_req_wire.get(length)
        if wire is None:
            wire = read_request_cost(length, cfg).bytes_on_wire
            self._read_req_wire[length] = wire
        cut = self._cut_of(path, self.boundary.node_domain[node_name])
        _pre, suf_pairs, _fill = self._cross_plan(path, wire, cut)
        yield from self._occupy_tail(suf_pairs)

        # Target service + data fetch.
        if res_kind == "mem":
            yield sim.sleep(cfg.memory_read_latency_ns)
            data = cluster.hosts[host_name].memory.read(final, length)
        else:
            yield sim.sleep(cfg.device_mmio_read_ns)
            fn_name, bar_idx, offset = final
            fn = self._function(host_name, fn_name)
            data = fn.mmio_read(fn.bars[bar_idx], offset, length)
            if len(data) != length:
                raise AddressError(
                    f"{fn.name} returned {len(data)} bytes "
                    f"for a {length}-byte read")

        # Completion leg: this side's links are its source side.
        rpath = tuple(reversed(path))
        rcut = self._cut_of(rpath, src_dom)
        cwire = self._cpl_wire.get(length)
        if cwire is None:
            cwire = completion_cost(length, cfg).bytes_on_wire
            self._cpl_wire[length] = cwire
        cpre_pairs, _csuf, cfill = self._cross_plan(rpath, cwire, rcut)
        yield from self._occupy_part(cpre_pairs, cfill)
        cpre, csuf = cluster.hop_latency_split(rpath, rcut)
        self._send(src_dom, sim._now + cpre + csuf,
                   ("C", node_name, initiator_name, length, req_id, data))
        self.inflight -= 1

    # -- cross-domain message application ---------------------------------------

    def _apply(self, env: tuple) -> None:
        """Apply a cross-domain envelope at its effective instant (runs
        as the delivery event's callback)."""
        payload = env[4]
        tag = payload[0]
        if tag == "W":
            self._apply_write(payload)
        elif tag == "R":
            # The service coroutine belongs to the target's domain.
            sim = self.sim
            prev = sim._domain
            sim._domain = self.boundary.node_domain.get(payload[2], prev)
            try:
                Process(sim, self._serve_read(payload))
            finally:
                sim._domain = prev
        else:
            self._apply_read_cpl(payload)

    def _apply_write(self, payload: tuple) -> None:
        """Destination-domain half of a cross-domain posted write:
        occupy the destination-side links (inline when free) and apply
        the write.  Contended links delay the apply past the nominal
        arrival — store-and-forward queueing at the domain boundary."""
        (_tag, initiator_name, node_name, res_kind, host_name, final,
         data, wire, crossings, addr) = payload
        cluster = self.cluster
        path = cluster.path(cluster.nodes[initiator_name],
                            cluster.nodes[node_name])
        dst_dom = self.boundary.node_domain[node_name]
        cut = self._cut_of(path, dst_dom)
        _pre, suf_pairs, _fill = self._cross_plan(path, wire, cut)
        sim = self.sim
        for resource, _hold in suf_pairs:
            if len(resource._holders) >= resource.capacity \
                    or resource._waiting:
                prev = sim._domain
                sim._domain = dst_dom
                try:
                    Process(sim, self._deliver_write_slow(
                        suf_pairs, res_kind, host_name, final, data,
                        crossings, addr))
                finally:
                    sim._domain = prev
                return
        sleep = sim.sleep
        for resource, hold in suf_pairs:
            req = _grant_inline(resource)
            sleep(hold).callbacks.append(
                lambda _ev, r=resource, q=req: r.release(q))
        self._finish_cross_write(res_kind, host_name, final, data,
                                 crossings, addr, dst_dom)

    def _deliver_write_slow(self, suf_pairs: tuple, res_kind: str,
                            host_name: str, final, data: bytes,
                            crossings: int, addr: int):
        yield from self._occupy_tail(suf_pairs)
        # Running inside a domain-tagged process: no extra wrap needed.
        self._finish_cross_write(res_kind, host_name, final, data,
                                 crossings, addr, None)

    def _finish_cross_write(self, res_kind: str, host_name: str, final,
                            data: bytes, crossings: int, addr: int,
                            dst_dom: str | None) -> None:
        self.inflight -= 1
        if res_kind == "mem":
            self.cluster.hosts[host_name].memory.write(final, data)
            shown = final
        else:
            fn_name, bar_idx, offset = final
            fn = self._function(host_name, fn_name)
            bar = fn.bars[bar_idx]
            if dst_dom is not None:
                sim = self.sim
                prev = sim._domain
                sim._domain = dst_dom
                try:
                    fn.mmio_write(bar, offset, data)
                finally:
                    sim._domain = prev
            else:
                fn.mmio_write(bar, offset, data)
            shown = offset
        if self._trace:
            self.tracer.emit("pcie", "write-delivered", addr=addr,
                             final=shown, size=len(data),
                             crossings=crossings)

    def _apply_read_cpl(self, payload: tuple) -> None:
        """Initiator-domain half of a read completion: occupy the
        destination-side completion links and wake the waiting reader."""
        (_tag, node_name, initiator_name, length, req_id, data) = payload
        cluster = self.cluster
        rpath = tuple(reversed(cluster.path(cluster.nodes[initiator_name],
                                            cluster.nodes[node_name])))
        src_dom = self.boundary.node_domain[initiator_name]
        rcut = self._cut_of(rpath, src_dom)
        cwire = self._cpl_wire.get(length)
        if cwire is None:
            cwire = completion_cost(length, self.config).bytes_on_wire
            self._cpl_wire[length] = cwire
        _pre, csuf_pairs, _fill = self._cross_plan(rpath, cwire, rcut)
        sim = self.sim
        for resource, _hold in csuf_pairs:
            if len(resource._holders) >= resource.capacity \
                    or resource._waiting:
                prev = sim._domain
                sim._domain = src_dom
                try:
                    Process(sim, self._read_cpl_slow(csuf_pairs, req_id,
                                                     data))
                finally:
                    sim._domain = prev
                return
        sleep = sim.sleep
        for resource, hold in csuf_pairs:
            req = _grant_inline(resource)
            sleep(hold).callbacks.append(
                lambda _ev, r=resource, q=req: r.release(q))
        self._finish_read(req_id, data)

    def _read_cpl_slow(self, csuf_pairs: tuple, req_id: int, data: bytes):
        yield from self._occupy_tail(csuf_pairs)
        self._finish_read(req_id, data)

    def _finish_read(self, req_id: int, data: bytes) -> None:
        self.inflight -= 1
        self._pending_reads.pop(req_id).succeed(data)

    # -- cross-domain plumbing ---------------------------------------------------

    def _occupy_part(self, pairs: tuple, fill: int):
        """Occupy one side of a cut path, charging the full path's
        pipe-fill time (the initiating side always pays the fill; the
        receiving side's links are occupied retroactively on arrival)."""
        acquired = []
        append = acquired.append
        for resource, _hold in pairs:
            if len(resource._holders) < resource.capacity \
                    and not resource._waiting:
                append(_grant_inline(resource))
            else:
                req = resource.request()
                append(req)
                yield req
        sleep = self.sim.sleep
        for i, (resource, hold) in enumerate(pairs):
            sleep(hold).callbacks.append(
                lambda _ev, r=resource, q=acquired[i]: r.release(q))
        yield sleep(fill)

    def _occupy_tail(self, pairs: tuple):
        """Occupy the receiving side's links on message arrival.  No
        fill charge — the nominal arrival instant already includes the
        full-path latency; only contention can add delay here."""
        acquired = []
        append = acquired.append
        for resource, _hold in pairs:
            if len(resource._holders) < resource.capacity \
                    and not resource._waiting:
                append(_grant_inline(resource))
            else:
                req = resource.request()
                append(req)
                yield req
        sleep = self.sim.sleep
        for i, (resource, hold) in enumerate(pairs):
            sleep(hold).callbacks.append(
                lambda _ev, r=resource, q=acquired[i]: r.release(q))

    def _cut_of(self, path: tuple, dst_dom: str) -> int:
        """Index of the first node on the path inside the destination
        domain — the boundary where source-side modelling hands over."""
        key = (path, dst_dom)
        cut = self._cut_cache.get(key)
        if cut is None:
            nd = self.boundary.node_domain
            cut = -1
            for i, node in enumerate(path):
                if nd.get(node.name) == dst_dom:
                    cut = i
                    break
            if cut <= 0:
                raise RuntimeError(
                    f"no destination-domain cut on path "
                    f"{[n.name for n in path]} -> {dst_dom!r}")
            self._cut_cache[key] = cut
        return cut

    def _cross_plan(self, path: tuple, wire: int, cut: int) -> tuple:
        """Split occupancy plan of a cut path: ``(source-side pairs,
        destination-side pairs, fill)`` where each pair is
        ``(resource, hold_ns)`` in canonical acquisition order within
        its side.  Link i feeds ``path[i+1]``, so it belongs to the
        destination side iff ``i >= cut - 1``."""
        key = (path, wire, cut)
        plan = self._cross_plans.get(key)
        if plan is None:
            trips = self.cluster.links_on(path)
            if not trips or wire <= 0:
                plan = ((), (), 0)
            else:
                pre = []
                suf = []
                fill = 0
                for i, (link, a, b) in enumerate(trips):
                    hold = serialize_ns(wire, link.bandwidth)
                    if hold > fill:
                        fill = hold
                    pair = (link.resource(a, b), hold)
                    if i < cut - 1:
                        pre.append(pair)
                    else:
                        suf.append(pair)
                pre.sort(key=lambda p: p[0].order)
                suf.sort(key=lambda p: p[0].order)
                plan = (tuple(pre), tuple(suf), fill)
            self._cross_plans[key] = plan
        return plan

    def _function(self, host_name: str, fn_name: str):
        """Resolve a PCIe function by (host, name) — message targets
        carry names, not object references."""
        key = (host_name, fn_name)
        fn = self._fn_index.get(key)
        if fn is None:
            for candidate in self.cluster.hosts[host_name].functions:
                if candidate.name == fn_name:
                    fn = candidate
                    break
            else:
                raise AddressError(
                    f"no function {fn_name!r} on host {host_name!r}")
            self._fn_index[key] = fn
        return fn

    def _write_payload(self, initiator: Node, res: Resolution, addr: int,
                       data: bytes, wire: int) -> tuple:
        if res.kind == "mem":
            final = res.addr
        else:
            bar = res.bar
            final = (bar.function.name, bar.index, res.offset)
        return ("W", initiator.name, res.node.name, res.kind,
                res.host.name, final, data, wire, res.crossings, addr)

    def _send(self, dst_dom: str, t_eff: int, payload: tuple):
        """Route a cross-domain message.  When this replica owns the
        destination domain the envelope self-delivers (returning the
        delivery event); otherwise it joins the per-(src, dst) ordered
        channel for the next barrier exchange (returning None)."""
        b = self.boundary
        sim = self.sim
        env = b.stamp(dst_dom, t_eff, sim._now, payload)
        if dst_dom in b.owned:
            return self._deliver(env)
        b.enqueue(dst_dom, env, sim._now)
        return None

    def _deliver(self, env: tuple) -> Event:
        """Schedule an envelope's application at its effective instant.
        URGENT priority: message application precedes same-instant
        normal events regardless of local queue contents, so apply
        order does not depend on which replica executed the send."""
        self.inflight += 1
        sim = self.sim
        ev = Event.__new__(Event)
        ev.sim = sim
        ev.callbacks = [lambda _ev, e=env: self._apply(e)]
        ev._value = None
        ev._ok = True
        ev._processed = False
        ev._defused = False
        sim._push(ev, env[0] - sim._now, URGENT)
        return ev

    def _read_timeout(self, point: str, addr: int) -> t.Generator:
        """Non-posted request into a severed/lossy path: the completion
        never arrives, so the initiator sits out its completion timeout
        and then sees the failure."""
        self.timed_out_reads += 1
        yield self.sim.timeout(self.config.completion_timeout_ns)
        self.tracer.emit("fault", "read-timeout", point=point, addr=addr)
        raise FabricFaultError(point, addr)

    # -- conveniences -----------------------------------------------------------

    def read_u32(self, initiator: Node, host: Host, addr: int):
        data = yield from self.read(initiator, host, addr, 4)
        return int.from_bytes(data, "little")

    def write_u32(self, initiator: Node, host: Host, addr: int,
                  value: int) -> Process:
        return self.post_write(initiator, host, addr,
                               (value & 0xFFFF_FFFF).to_bytes(4, "little"))
